#!/usr/bin/env python3
"""Four-coloring the map of Australia (Section 5.4, Listing 7).

The Verilog verifier below checks a proposed coloring: each region gets
a 2-bit color, and ``valid`` is true exactly when every pair of adjacent
regions differs.  Pinning ``valid := true`` and running backward makes
the annealer *produce* colorings -- and because annealing samples the
solution space, repeated reads return many different valid colorings
(the paper's point that quantum computers are fundamentally stochastic).

This example also runs the classical MiniZinc/Chuffed-style baseline of
Section 6.2 on the paper's Listing 8 model.

Run:  python examples/map_coloring.py
"""

from repro import VerilogAnnealerCompiler
from repro.solvers.csp import CSPSolver, parse_minizinc

LISTING_7 = """
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
   input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
   output valid;

   assign valid = WA != NT && WA != SA && NT != SA && NT !=
       QLD && SA != QLD && SA != NSW && SA != VIC && QLD
       != NSW && NSW != VIC && NSW != ACT;
endmodule
"""

LISTING_8 = """
var 1..4: NSW;
var 1..4: QLD;
var 1..4: SA;
var 1..4: VIC;
var 1..4: WA;
var 1..4: NT;
var 1..4: ACT;
constraint WA != NT;
constraint WA != SA;
constraint NT != SA;
constraint NT != QLD;
constraint SA != QLD;
constraint SA != NSW;
constraint SA != VIC;
constraint QLD != NSW;
constraint NSW != VIC;
constraint NSW != ACT;
solve satisfy;
"""

REGIONS = ["NSW", "QLD", "SA", "VIC", "WA", "NT", "ACT"]
ADJACENT = [
    ("WA", "NT"), ("WA", "SA"), ("NT", "SA"), ("NT", "QLD"),
    ("SA", "QLD"), ("SA", "NSW"), ("SA", "VIC"), ("QLD", "NSW"),
    ("NSW", "VIC"), ("NSW", "ACT"),
]


def coloring_is_valid(colors) -> bool:
    return all(colors[a] != colors[b] for a, b in ADJACENT)


def main() -> None:
    compiler = VerilogAnnealerCompiler(seed=42)
    program = compiler.compile(LISTING_7)
    stats = program.statistics()
    print("Compilation (cf. paper Section 6.1):")
    print(f"  Verilog lines      : {stats['verilog_lines']}")
    print(f"  EDIF lines         : {stats['edif_lines']}")
    print(f"  QMASM lines        : {stats['qmasm_lines']}")
    print(f"  logical variables  : {stats['logical_variables']}")

    # ------------------------------------------------------------------
    # Backward on the simulated annealer: sample many valid colorings.
    # ------------------------------------------------------------------
    result = compiler.run(
        program, pins=["valid := true"], solver="sa", num_reads=400
    )
    colorings = set()
    for solution in result.valid_solutions:
        colors = {r: solution.value_of(r) for r in REGIONS}
        if coloring_is_valid(colors):
            colorings.add(tuple(colors[r] for r in REGIONS))
    print(f"\nAnnealer sampled {len(colorings)} distinct valid 4-colorings "
          f"in 400 reads, e.g.:")
    for sample in sorted(colorings)[:3]:
        print("  " + ", ".join(f"{r}={c}" for r, c in zip(REGIONS, sample)))

    # ------------------------------------------------------------------
    # The classical baseline (MiniZinc Listing 8 + our Chuffed stand-in).
    # ------------------------------------------------------------------
    model = parse_minizinc(LISTING_8)
    solver = CSPSolver()
    solution = solver.solve(model)
    print("\nClassical CSP baseline (Listing 8):")
    print("  " + ", ".join(f"{r}={solution[r]}" for r in REGIONS))
    print(f"  (deterministic: re-solving returns the same coloring; "
          f"{solver.count_solutions(model)} total solutions exist)")


if __name__ == "__main__":
    main()
