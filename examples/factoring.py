#!/usr/bin/env python3
"""Factoring integers by running a multiplier backward (Section 5.3).

The best classical factoring algorithms rely on sophisticated number
theory.  With this compiler, factoring is trivial to *program*: express
C = A x B in Verilog (the paper's Listing 6), pin C, and let the
annealer solve for A and B.  The same code multiplies (pin A and B) and
even divides (pin C and A).

Run:  python examples/factoring.py
"""

from repro import VerilogAnnealerCompiler

LISTING_6 = """
module mult (A, B, C);
   input [3:0] A;
   input [3:0] B;
   output[7:0] C;
   assign C = A * B;
endmodule
"""


def main() -> None:
    compiler = VerilogAnnealerCompiler(seed=5)
    program = compiler.compile(LISTING_6)
    stats = program.statistics()
    print(f"Compiled 4x4 multiplier: {stats['num_cells']} cells, "
          f"{stats['logical_variables']} logical variables")

    # ------------------------------------------------------------------
    # Backward: factor 143 (the paper's example).  Expect exactly the
    # two solutions {A=11, B=13} and {A=13, B=11}.
    # ------------------------------------------------------------------
    print("\n=== Factor C = 143 (pin C[7:0] := 10001111) ===")
    result = compiler.run(
        program,
        pins=["C[7:0] := 10001111"],
        solver="sa",
        num_reads=600,
    )
    factorizations = set()
    for solution in result.valid_solutions:
        a, b = solution.value_of("A"), solution.value_of("B")
        if a * b == 143:
            factorizations.add((a, b))
    for a, b in sorted(factorizations):
        print(f"  {a} x {b} = 143")

    # ------------------------------------------------------------------
    # Forward: multiply 13 x 11 by pinning both inputs.
    # ------------------------------------------------------------------
    print("\n=== Multiply: A := 1101 (13), B := 1011 (11) ===")
    result = compiler.run(
        program,
        pins=["A[3:0] := 1101", "B[3:0] := 1011"],
        solver="sa",
        num_reads=200,
    )
    best = result.valid_solutions[0]
    print(f"  C = {best.value_of('C')} (expected 143)")

    # ------------------------------------------------------------------
    # Divide: 143 / 13 by pinning the product and one factor.
    # ------------------------------------------------------------------
    print("\n=== Divide: C := 10001111 (143), A := 1101 (13) ===")
    result = compiler.run(
        program,
        pins=["C[7:0] := 10001111", "A[3:0] := 1101"],
        solver="sa",
        num_reads=300,
    )
    best = result.valid_solutions[0]
    print(f"  B = {best.value_of('B')} (expected 11)")

    # ------------------------------------------------------------------
    # Every answer is cheap to verify: NP solutions check in polynomial
    # time by running the circuit forward on a classical simulator.
    # ------------------------------------------------------------------
    simulator = program.simulator()
    check = simulator.evaluate({"A": 11, "B": 13})
    print(f"\nClassical forward check: 11 x 13 = {check['C']}")


if __name__ == "__main__":
    main()
