#!/usr/bin/env python3
"""Circuit satisfiability run backward (Section 5.2, Figure 4).

The Verilog below (the paper's Listing 5) *verifies* a proposed
solution to the CLRS circuit-SAT instance: given x1..x3 it computes the
circuit's output.  Running it backward -- pinning the output y to True
-- makes the annealer find the satisfying inputs.  The paper reports
the unique satisfying assignment a=1, b=1, c=0.

Run:  python examples/circuit_sat.py
"""

from repro import VerilogAnnealerCompiler

LISTING_5 = """
module circsat (a, b, c, y);
    input a, b, c;
    output y;
    wire [1:10] x;

    assign x[1] = a;
    assign x[2] = b;
    assign x[3] = c;
    assign x[4] = ~x[3];
    assign x[5] = x[1] | x[2];
    assign x[6] = ~x[4];
    assign x[7] = x[1] & x[2] & x[4];
    assign x[8] = x[5] | x[6];
    assign x[9] = x[6] | x[7];
    assign x[10] = x[8] & x[9] & x[7];
    assign y = x[10];
endmodule
"""


def main() -> None:
    compiler = VerilogAnnealerCompiler(seed=7)
    program = compiler.compile(LISTING_5)
    print(f"circsat: {program.statistics()['logical_variables']} logical variables")

    # Backward: y := true, solve for a, b, c -- on the simulated 2000Q.
    result = compiler.run(
        program,
        pins=["y := true"],
        solver="dwave",
        num_reads=200,
    )
    print("\nSatisfying assignments found by the annealer:")
    seen = set()
    for solution in result.valid_solutions:
        key = (solution.value_of("a"), solution.value_of("b"), solution.value_of("c"))
        if key not in seen:
            seen.add(key)
            a, b, c = key
            print(f"  a={a} b={b} c={c} (tally {solution.num_occurrences})")

    # Because circsat is in NP, each proposal is checked in polynomial
    # time by evaluating the circuit forward.
    simulator = program.simulator()
    print("\nForward verification of each proposal:")
    for a, b, c in sorted(seen):
        y = simulator.evaluate({"a": a, "b": b, "c": c})["y"]
        verdict = "satisfies" if y else "REJECTED"
        print(f"  ({a}, {b}, {c}) -> y={y}  {verdict}")

    # Ground truth by exhaustive enumeration (8 cases):
    truth = [
        (a, b, c)
        for a in (0, 1)
        for b in (0, 1)
        for c in (0, 1)
        if simulator.evaluate({"a": a, "b": b, "c": c})["y"]
    ]
    print(f"\nExhaustive ground truth: {truth} (paper: a=1, b=1, c=0)")


if __name__ == "__main__":
    main()
