#!/usr/bin/env python3
"""Sequential logic via time unrolling (Section 4.3.3, Listing 3).

Equation (2) is a pure function, but Verilog programs can be stateful.
The paper's solution: statically unroll the program over discrete time
steps, with each flip-flop's D at step t wired to its Q at step t+1 --
trading the time dimension for a second spatial dimension at a heavy
qubit cost.

This example compiles the paper's 6-bit counter (Listing 3), unrolls it
over 4 time steps, runs it forward, and then runs it *backward*: given
only the final count, the annealer reconstructs which cycles pulsed
``inc``.

Run:  python examples/sequential_counter.py
"""

from repro import VerilogAnnealerCompiler

LISTING_3 = """
module count (clk, inc, reset, out);
    input clk;
    input inc;
    input reset;
    output [5:0] out;
    reg [5:0] var;

    always @(posedge clk)
      if (reset)
        var <= 0;
      else
        if (inc)
          var <= var + 1;

    assign out = var;
endmodule
"""

STEPS = 4


def main() -> None:
    compiler = VerilogAnnealerCompiler(seed=13)
    # initial_state=0 ties every flip-flop's t=0 value to ground.
    program = compiler.compile(LISTING_3, unroll_steps=STEPS, initial_state=0)
    stats = program.statistics()
    print(f"Counter unrolled over {STEPS} steps: {stats['num_cells']} cells, "
          f"{stats['logical_variables']} logical variables")
    print("(the paper: trading time for space 'exacts a heavy toll in "
          "qubit count')\n")

    # ------------------------------------------------------------------
    # Forward: inc on cycles 0, 1, 3 (reset held low).
    # ------------------------------------------------------------------
    pins = []
    pulses = {0: 1, 1: 1, 2: 0, 3: 1}
    for step, value in pulses.items():
        pins.append(f"inc@{step} := {value}")
        pins.append(f"reset@{step} := 0")
    result = compiler.run(program, pins=pins, solver="sa", num_reads=300)
    best = result.valid_solutions[0]
    print("Forward run (inc pulses on cycles 0, 1, 3):")
    for step in range(STEPS):
        print(f"  out@{step} = {best.value_of(f'out@{step}')}")

    # ------------------------------------------------------------------
    # Backward: pin the count visible at the last step and solve for
    # the inc sequence that produced it.
    # ------------------------------------------------------------------
    backward_pins = [f"reset@{t} := 0" for t in range(STEPS)]
    backward_pins.append(f"out@{STEPS - 1}[5:0] := 2")  # count reached 2
    result = compiler.run(
        program, pins=backward_pins, solver="sa", num_reads=400
    )
    print(f"\nBackward run (out@{STEPS - 1} pinned to 2): "
          "inc sequences the annealer found:")
    sequences = set()
    for solution in result.valid_solutions:
        seq = tuple(solution.value_of(f"inc@{t}") for t in range(STEPS))
        # out@3 shows the state *before* cycle 3's increment, so only
        # the first three inc values determine it.
        if sum(seq[: STEPS - 1]) == 2:
            sequences.add(seq)
    for seq in sorted(sequences):
        print(f"  inc = {seq}")


if __name__ == "__main__":
    main()
