// Map coloring of Australia's states/territories (paper Listing 7).
//
// Each region gets a 2-bit color; `valid` is 1 iff no two adjacent
// regions share a color.  Compile and anneal with `valid` pinned true
// to sample proper 4-colorings:
//
//   python -m repro run examples/map_coloring.v \
//       --pin 'valid := true' --solver sa --num-reads 400
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
   input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
   output valid;

   assign valid = WA != NT && WA != SA && NT != SA && NT !=
       QLD && SA != QLD && SA != NSW && SA != VIC && QLD
       != NSW && NSW != VIC && NSW != ACT;
endmodule
