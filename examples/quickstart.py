#!/usr/bin/env python3
"""Quickstart: compile and run the paper's Figure 2 example.

The Verilog module below (Figure 2(a) of the paper) outputs a+b when s
is 1 and a-b when s is 0.  We compile it through the full pipeline
(Verilog -> netlist -> EDIF -> QMASM -> Ising model) and then exercise
the key idea of the paper: the same compiled artifact runs *forward*
(pin inputs, read outputs) and *backward* (pin outputs, solve for
inputs).

Run:  python examples/quickstart.py
"""

from repro import VerilogAnnealerCompiler

FIGURE_2A = """
// Figure 2(a): add or subtract, depending on s.
module circuit (s, a, b, c);
    input s, a, b;
    output [1:0] c;
    assign c = s ? a+b : a-b;
endmodule
"""


def main() -> None:
    compiler = VerilogAnnealerCompiler(seed=2019)
    program = compiler.compile(FIGURE_2A)

    print("=== Compilation artifacts ===")
    for key, value in program.statistics().items():
        print(f"  {key}: {value}")

    print("\n=== Generated QMASM (excerpt) ===")
    for line in program.qmasm_source.splitlines()[:12]:
        print(f"  {line}")
    print("  ...")

    # ------------------------------------------------------------------
    # Forward: compute c = a + b with s = 1, a = 1, b = 1.
    # ------------------------------------------------------------------
    result = compiler.run(
        program,
        pins=["s := 1", "a := 1", "b := 1"],
        solver="exact",  # 16 logical variables: exhaustive is instant
    )
    best = result.valid_solutions[0]
    print("\n=== Forward run: s=1, a=1, b=1 ===")
    print(f"  c = {best.value_of('c'):02b}  (expected 10: 1+1=2)")

    # ------------------------------------------------------------------
    # Backward: pin the *output* c = 01 with s = 0 (subtraction) and let
    # the annealer solve for inputs a, b with a - b = 1.
    # ------------------------------------------------------------------
    result = compiler.run(
        program,
        pins=["s := 0", "c[1:0] := 01"],
        solver="exact",
    )
    print("\n=== Backward run: s=0, c=01 -> solve for a, b ===")
    for solution in result.valid_solutions:
        a, b = solution.value_of("a"), solution.value_of("b")
        print(f"  a={a} b={b}  (check: {a}-{b} = {(a - b) % 4:02b})")

    # ------------------------------------------------------------------
    # The same program on the simulated D-Wave 2000Q, with minor
    # embedding, coefficient scaling, control noise, and QPU timing.
    # ------------------------------------------------------------------
    result = compiler.run(
        program,
        pins=["s := 1", "a := 1", "b := 1"],
        solver="dwave",
        num_reads=100,
    )
    best = result.valid_solutions[0]
    print("\n=== Simulated D-Wave 2000Q run ===")
    print(f"  c = {best.value_of('c'):02b} "
          f"(tally {best.num_occurrences}/{result.sampleset.total_reads()})")
    print(f"  logical variables : {result.num_logical_variables()}")
    print(f"  physical qubits   : {result.num_physical_qubits()}")
    timing = result.info["timing"]
    print(f"  QPU access time   : {timing['qpu_access_time_us'] / 1000:.1f} ms")


if __name__ == "__main__":
    main()
