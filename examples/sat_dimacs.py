#!/usr/bin/env python3
"""SAT from a DIMACS CNF file, solved on the annealer.

The circuit-SAT showcase of Section 5.2 generalizes: any CNF formula in
the standard DIMACS format becomes a Verilog verifier (one input bit per
variable, ``valid`` = the formula), and running it backward searches for
a satisfying assignment.  This mechanizes the paper's claim that NP
verifiers are "generally simple-to-write programs" -- here they are
*generated*.

Run:  python examples/sat_dimacs.py
"""

from repro import VerilogAnnealerCompiler
from repro.core.workloads import dimacs_verilog, parse_dimacs

# A pigeonhole-flavored satisfiable instance over 8 variables.
DIMACS = """
c 8 variables, 12 clauses
p cnf 8 12
1 2 0
-1 -2 0
3 4 0
-3 -4 0
5 6 0
-5 -6 0
7 8 0
-7 -8 0
-1 -3 -5 0
2 4 6 0
-2 -4 -7 0
1 3 8 0
"""


def clause_satisfied(clause, assignment):
    return any(
        assignment[abs(l) - 1] == (1 if l > 0 else 0) for l in clause
    )


def main() -> None:
    num_variables, clauses = parse_dimacs(DIMACS)
    print(f"DIMACS instance: {num_variables} variables, {len(clauses)} clauses")

    source = dimacs_verilog(DIMACS)
    print("\nGenerated verifier (excerpt):")
    for line in source.splitlines()[:6]:
        print(f"  {line}")
    print("  ...")

    compiler = VerilogAnnealerCompiler(seed=11)
    program = compiler.compile(source)
    stats = program.statistics()
    print(f"\nCompiled: {stats['num_cells']} cells, "
          f"{stats['logical_variables']} logical variables")

    result = compiler.run(
        program, pins=["valid := true"], solver="sa", num_reads=300
    )
    witnesses = set()
    for solution in result.valid_solutions:
        x = solution.value_of("x")
        assignment = [(x >> i) & 1 for i in range(num_variables)]
        if all(clause_satisfied(c, assignment) for c in clauses):
            witnesses.add(x)

    print(f"\n{len(witnesses)} distinct satisfying assignment(s) sampled; "
          "first few:")
    for x in sorted(witnesses)[:4]:
        bits = "".join(str((x >> i) & 1) for i in range(num_variables))
        print(f"  x = {bits} (LSB first)")

    # Polynomial-time verification through the compiled circuit itself.
    simulator = program.simulator()
    assert all(simulator.evaluate({"x": x})["valid"] for x in witnesses)
    print("\nAll witnesses verified forward through the circuit.")


if __name__ == "__main__":
    main()
