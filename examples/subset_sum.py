#!/usr/bin/env python3
"""Subset sum: another NP verifier run backward (Section 5.1's recipe).

The paper's methodology generalizes beyond its three showcases: *any*
NP problem whose verifier fits in Verilog becomes annealer-solvable.
Here: given weights {11, 5, 19, 7, 3, 14}, is there a subset summing to
exactly 29?  The Verilog below only *checks* a proposed subset; pinning
``valid := true`` makes the annealer find one.

Also demonstrated: the paper's caveat that an unsatisfiable instance
makes the annealer "return an invalid solution", which the polynomial-
time forward check then rejects.

Run:  python examples/subset_sum.py
"""

from repro import VerilogAnnealerCompiler

WEIGHTS = [11, 5, 19, 7, 3, 14]
TARGET = 29

VERIFIER = f"""
module subset_sum (sel, valid);
    input [5:0] sel;
    output valid;
    wire [7:0] total;

    assign total = (sel[0] ? 8'd{WEIGHTS[0]} : 8'd0)
                 + (sel[1] ? 8'd{WEIGHTS[1]} : 8'd0)
                 + (sel[2] ? 8'd{WEIGHTS[2]} : 8'd0)
                 + (sel[3] ? 8'd{WEIGHTS[3]} : 8'd0)
                 + (sel[4] ? 8'd{WEIGHTS[4]} : 8'd0)
                 + (sel[5] ? 8'd{WEIGHTS[5]} : 8'd0);
    assign valid = total == 8'd{TARGET};
endmodule
"""


def subset_of(selection: int):
    return [w for i, w in enumerate(WEIGHTS) if (selection >> i) & 1]


def main() -> None:
    compiler = VerilogAnnealerCompiler(seed=17)
    program = compiler.compile(VERIFIER)
    stats = program.statistics()
    print(f"Verifier: {stats['num_cells']} cells, "
          f"{stats['logical_variables']} logical variables")

    # ------------------------------------------------------------------
    # Backward: find subsets summing to TARGET.
    # ------------------------------------------------------------------
    result = compiler.run(
        program, pins=["valid := true"], solver="sa", num_reads=500
    )
    print(f"\nSubsets of {WEIGHTS} summing to {TARGET}:")
    seen = set()
    for solution in result.valid_solutions:
        selection = solution.value_of("sel")
        subset = subset_of(selection)
        if sum(subset) == TARGET and selection not in seen:
            seen.add(selection)
            print(f"  {subset} (sel = {selection:06b})")

    # Polynomial-time verification, as always.
    simulator = program.simulator()
    for selection in seen:
        assert simulator.evaluate({"sel": selection})["valid"] == 1

    # ------------------------------------------------------------------
    # An unsatisfiable target: the annealer still returns *something*,
    # but the forward check rejects it (Section 5.2's discard step).
    # ------------------------------------------------------------------
    impossible = 2  # no subset of the weights sums to 2
    unsat = VERIFIER.replace(f"8'd{TARGET};", f"8'd{impossible};")
    unsat_program = compiler.compile(unsat)
    result = compiler.run(
        unsat_program, pins=["valid := true"], solver="sa", num_reads=300
    )
    unsat_simulator = unsat_program.simulator()
    accepted = [
        s.value_of("sel")
        for s in result.valid_solutions
        if unsat_simulator.evaluate({"sel": s.value_of("sel")})["valid"]
    ]
    print(f"\nImpossible target {impossible}: "
          f"{len(result.solutions)} proposals returned, "
          f"{len(accepted)} survive the forward check (expected 0)")


if __name__ == "__main__":
    main()
