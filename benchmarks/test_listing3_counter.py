"""L3 -- Listing 3: sequential logic via time unrolling (Section 4.3.3).

Measures the paper's "heavy toll in qubit count": unrolling the 6-bit
counter over T time steps multiplies the logical variable count roughly
linearly in T, and validates forward/backward execution of the unrolled
program.
"""

import pytest

from benchmarks.conftest import LISTING_3_COUNTER


def test_listing3_unroll_cost_scaling(benchmark, compiler):
    """Variables vs unroll depth: the time-for-space trade."""

    def compile_at_depths():
        sizes = {}
        for steps in (1, 2, 4):
            program = compiler.compile(
                LISTING_3_COUNTER, unroll_steps=steps, initial_state=0
            )
            sizes[steps] = program.statistics()["logical_variables"]
        return sizes

    sizes = benchmark.pedantic(compile_at_depths, rounds=1, iterations=1)
    # Roughly linear growth (each step replicates the whole program).
    assert sizes[2] > 1.5 * sizes[1]
    assert sizes[4] > 1.5 * sizes[2]
    benchmark.extra_info["variables_by_steps"] = sizes
    benchmark.extra_info["paper"] = (
        "unrolling replicates the entire program per time step"
    )


def test_listing3_forward_execution(benchmark, compiler):
    program = compiler.compile(
        LISTING_3_COUNTER, unroll_steps=3, initial_state=0
    )
    pins = []
    for step, (inc, reset) in enumerate([(1, 0), (0, 0), (1, 0)]):
        pins += [f"inc@{step} := {inc}", f"reset@{step} := {reset}"]

    def solve():
        return compiler.run(program, pins=pins, solver="sa", num_reads=150)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    best = result.valid_solutions[0]
    trace = [best.value_of(f"out@{t}") for t in range(3)]
    assert trace == [0, 1, 1]
    benchmark.extra_info["trace"] = trace


def test_listing3_backward_execution(benchmark, compiler):
    """Given the final count, solve for the inc pulses."""
    program = compiler.compile(
        LISTING_3_COUNTER, unroll_steps=3, initial_state=0
    )
    pins = [f"reset@{t} := 0" for t in range(3)] + ["out@2[5:0] := 2"]

    def solve():
        return compiler.run(program, pins=pins, solver="sa", num_reads=300)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    sequences = {
        tuple(s.value_of(f"inc@{t}") for t in range(2))
        for s in result.valid_solutions
    }
    # out@2 counts increments on cycles 0 and 1: both must be 1.
    assert (1, 1) in sequences
    benchmark.extra_info["inc_sequences"] = sorted(map(str, sequences))
