"""F2 -- Figure 2: end-to-end transformation of the mux-add-sub circuit.

Figure 2(a) is Verilog; Figure 2(b) is a hardware-specific quadratic
pseudo-Boolean function whose minima are exactly the valid (s, a, b, c)
relations.  This benchmark runs the full pipeline (Verilog -> EDIF ->
QMASM -> logical Hamiltonian -> minor embedding onto Chimera -> physical
Hamiltonian) and checks the paper's three example points:

  minimized at {s=0, a=1, b=0, c=01} and {s=1, a=1, b=1, c=10},
  not at {s=1, a=0, b=0, c=11}.
"""

import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import embed_ising, find_embedding, source_graph_of
from repro.hardware.scaling import check_ranges, scale_to_hardware
from repro.solvers.exact import ExactSolver

from benchmarks.conftest import FIGURE_2A


@pytest.fixture(scope="module")
def compiled(compiler):
    return compiler.compile(FIGURE_2A)


def test_fig2_compile_pipeline(benchmark, compiler):
    program = benchmark(compiler.compile, FIGURE_2A)
    stats = program.statistics()
    benchmark.extra_info["verilog_lines"] = stats["verilog_lines"]
    benchmark.extra_info["edif_lines"] = stats["edif_lines"]
    benchmark.extra_info["qmasm_lines"] = stats["qmasm_lines"]
    benchmark.extra_info["logical_variables"] = stats["logical_variables"]
    assert stats["logical_variables"] >= 6  # s, a, b, c[0], c[1] + internals


def test_fig2_relation_minima(benchmark, compiler, compiled):
    def solve():
        return compiler.run(compiled, solver="exact", num_reads=1 << 16)

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    ground_energy = result.solutions[0].energy
    ground = {
        (int(s.values["s"]), int(s.values["a"]), int(s.values["b"]),
         s.value_of("c"))
        for s in result.solutions
        if s.energy == pytest.approx(ground_energy)
    }
    assert (0, 1, 0, 0b01) in ground  # paper example 1
    assert (1, 1, 1, 0b10) in ground  # paper example 2
    assert (1, 0, 0, 0b11) not in ground  # paper's invalid example
    assert len(ground) == 8  # one c per (s, a, b)
    benchmark.extra_info["ground_relations"] = sorted(map(str, ground))


def test_fig2_physical_hamiltonian(benchmark, compiled):
    """Figure 2(b): the hardware-specific instantiation -- embedded onto
    Chimera with coefficients inside the machine's ranges."""
    logical, _ = compiled.logical.to_ising()
    target = chimera_graph(16)

    def lower():
        embedding = find_embedding(
            source_graph_of(logical), target, seed=11
        )
        physical = embed_ising(logical, embedding, target)
        scaled, factor = scale_to_hardware(physical)
        return embedding, scaled, factor

    embedding, scaled, factor = benchmark.pedantic(lower, rounds=1, iterations=1)
    check_ranges(scaled)
    for (u, v), coupling in scaled.quadratic.items():
        if coupling:
            assert target.has_edge(u, v)
    benchmark.extra_info["logical_variables"] = len(logical)
    benchmark.extra_info["physical_qubits"] = embedding.total_qubits()
    benchmark.extra_info["scale_factor"] = factor
    benchmark.extra_info["paper"] = (
        "Figure 2(b) maps s,a,b,c onto physical qubits with chains "
        "(c[0] on two qubits in the paper's example)"
    )
