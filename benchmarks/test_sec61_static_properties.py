"""S61 -- Section 6.1: static properties of the map-coloring compilation.

The paper reports, for Listing 7:

  - 6 lines of Verilog -> 123 lines of EDIF -> 736 lines of QMASM
    (excluding the 232-line standard-cell library);
  - a logical quadratic pseudo-Boolean function of 74 variables;
  - 369 +/- 26 physical qubits over 25 compilations (randomized
    embedder) versus the hand-coded unary encoding's 28 logical
    variables and ~88 qubits;
  - term growth from 312 (logical) to 963 +/- 53 (physical).

We regenerate every number with our own pipeline.  Absolute values
differ (different synthesizer and embedder) but the paper's
relationships must hold: a few Verilog lines explode into hundreds of
QMASM lines; the Verilog flow needs ~2-3x the hand-coded encoding's
logical variables; the sparse topology multiplies qubits several-fold
beyond logical variables; and the embedder's randomness makes the qubit
count vary run to run.

Set REPRO_BENCH_EMBEDDINGS to change the number of embeddings sampled
(default 5; the paper used 25).
"""

import os
import statistics

import pytest

from repro.core.mapcolor import unary_map_coloring_model
from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import embed_ising, find_embedding, source_graph_of
from repro.qmasm.stdcell import stdcell_source

NUM_EMBEDDINGS = int(os.environ.get("REPRO_BENCH_EMBEDDINGS", "5"))

PAPER = {
    "verilog_lines": 6,
    "edif_lines": 123,
    "qmasm_lines": 736,
    "stdcell_lines": 232,
    "logical_variables": 74,
    "logical_terms": 312,
    "physical_qubits": (369, 26),
    "physical_terms": (963, 53),
    "handcoded_logical": 28,
    "handcoded_qubits": 88,
}


def test_sec61_lowering_line_counts(benchmark, compiler, australia_program):
    def collect():
        stats = australia_program.statistics()
        stats["stdcell_lines"] = len(
            [l for l in stdcell_source().splitlines() if l.strip()]
        )
        return stats

    stats = benchmark(collect)
    # Relationships, not absolutes: every lowering step adds lines.
    assert stats["verilog_lines"] <= 8
    assert stats["edif_lines"] > 10 * stats["verilog_lines"]
    assert stats["qmasm_lines"] > stats["verilog_lines"] * 10
    benchmark.extra_info["paper"] = {
        k: PAPER[k]
        for k in ("verilog_lines", "edif_lines", "qmasm_lines", "stdcell_lines")
    }
    benchmark.extra_info["measured"] = {
        k: stats[k]
        for k in ("verilog_lines", "edif_lines", "qmasm_lines", "stdcell_lines")
    }


def test_sec61_logical_size(benchmark, australia_program):
    def measure():
        model, _ = australia_program.logical.to_ising(apply_pins=False)
        return len(model), model.num_terms()

    variables, terms = benchmark(measure)
    # Paper: 74 variables, 312 terms.  Ours must be the same scale and
    # satisfy the paper's headline ratio: ~2-3x the 28-variable
    # hand-coded encoding.
    assert 50 <= variables <= 110
    assert 2 * PAPER["handcoded_logical"] <= variables <= 4 * PAPER["handcoded_logical"]
    assert terms > variables
    benchmark.extra_info["paper_variables"] = PAPER["logical_variables"]
    benchmark.extra_info["measured_variables"] = variables
    benchmark.extra_info["paper_terms"] = PAPER["logical_terms"]
    benchmark.extra_info["measured_terms"] = terms


def test_sec61_physical_qubits_over_embeddings(benchmark, australia_program):
    """The 369 +/- 26 row: qubit count across randomized embeddings."""
    logical, _ = australia_program.logical.to_ising(apply_pins=False)
    source = source_graph_of(logical)
    target = chimera_graph(16)

    def embed_many():
        qubits, terms = [], []
        for seed in range(NUM_EMBEDDINGS):
            embedding = find_embedding(source, target, seed=seed)
            physical = embed_ising(logical, embedding, target)
            qubits.append(embedding.total_qubits())
            terms.append(physical.num_terms())
        return qubits, terms

    qubits, terms = benchmark.pedantic(embed_many, rounds=1, iterations=1)
    mean_qubits = statistics.mean(qubits)
    spread = statistics.pstdev(qubits)
    mean_terms = statistics.mean(terms)

    # Shape checks against the paper:
    # (1) physical >> logical (the sparse-topology tax);
    assert mean_qubits > 2 * len(logical)
    # (2) far more than the hand-coded encoding's ~88 qubits;
    assert mean_qubits > PAPER["handcoded_qubits"]
    # (3) run-to-run variance from the randomized embedder;
    assert spread > 0
    # (4) term growth from logical to physical.
    assert mean_terms > logical.num_terms()

    benchmark.extra_info["paper_qubits"] = "369 +/- 26 over 25 compilations"
    benchmark.extra_info["measured_qubits"] = (
        f"{mean_qubits:.0f} +/- {spread:.0f} over {NUM_EMBEDDINGS} compilations"
    )
    benchmark.extra_info["paper_physical_terms"] = "963 +/- 53"
    benchmark.extra_info["measured_physical_terms"] = f"{mean_terms:.0f}"
    benchmark.extra_info["qubit_counts"] = qubits


def test_sec61_handcoded_unary_encoding(benchmark):
    """The comparison row: 4 colors x 7 regions = 28 logical variables,
    embedded in far fewer qubits than the Verilog flow."""

    def build_and_embed():
        model = unary_map_coloring_model()
        target = chimera_graph(16)
        best = None
        for seed in range(4):
            embedding = find_embedding(source_graph_of(model), target, seed=seed)
            if best is None or embedding.total_qubits() < best.total_qubits():
                best = embedding
        return model, best

    model, embedding = benchmark.pedantic(build_and_embed, rounds=1, iterations=1)
    assert len(model) == PAPER["handcoded_logical"]  # exactly 28
    # The paper's pencil-and-paper analysis places it in 88 qubits; a
    # generic heuristic embedder pays more but stays far below the
    # Verilog flow's ~550+ qubits.
    assert embedding.total_qubits() < 400
    benchmark.extra_info["paper_logical"] = PAPER["handcoded_logical"]
    benchmark.extra_info["measured_logical"] = len(model)
    benchmark.extra_info["paper_qubits"] = PAPER["handcoded_qubits"]
    benchmark.extra_info["measured_qubits"] = embedding.total_qubits()


def test_sec61_overhead_ratios(benchmark, australia_program):
    """The paper's bottom line: 2.6x logical and ~4x physical overhead
    for the convenience of writing 6 lines of Verilog."""
    logical, _ = australia_program.logical.to_ising(apply_pins=False)
    target = chimera_graph(16)

    def ratios():
        handcoded = unary_map_coloring_model()
        verilog_emb = find_embedding(
            source_graph_of(logical), target, seed=1
        )
        hand_emb = find_embedding(
            source_graph_of(handcoded), target, seed=1
        )
        return (
            len(logical) / len(handcoded),
            verilog_emb.total_qubits() / hand_emb.total_qubits(),
        )

    logical_ratio, physical_ratio = benchmark.pedantic(
        ratios, rounds=1, iterations=1
    )
    # Paper: 2.6x logical (74/28), 4.2x physical (369/88).
    assert 1.5 <= logical_ratio <= 4.0
    assert physical_ratio > 1.5
    benchmark.extra_info["paper_logical_ratio"] = round(74 / 28, 2)
    benchmark.extra_info["measured_logical_ratio"] = round(logical_ratio, 2)
    benchmark.extra_info["paper_physical_ratio"] = round(369 / 88, 2)
    benchmark.extra_info["measured_physical_ratio"] = round(physical_ratio, 2)
