"""T5 -- Table 5: the standard-cell library.

Two parts:

1. Verification: every printed cell Hamiltonian is minimized exactly on
   its truth table's valid rows (the defining property of Table 5).
2. Regeneration: the penalty synthesizer re-derives working Hamiltonians
   for the cells from their truth tables alone, with the ancilla counts
   the paper reports (none for the basic gates, one for XOR/XNOR/MUX).
"""

import pytest

from repro.ising.cells import CELL_LIBRARY
from repro.ising.penalty import synthesize_penalty, verify_penalty

ALL_CELLS = sorted(CELL_LIBRARY)


def test_table5_verify_entire_library(benchmark):
    def verify_all():
        return {name: CELL_LIBRARY[name].verify() for name in ALL_CELLS}

    results = benchmark(verify_all)
    assert all(results.values()), results
    benchmark.extra_info["cells_verified"] = len(results)
    benchmark.extra_info["paper"] = "every Table 5 cell minimized on valid rows"


@pytest.mark.parametrize(
    "name,expected_ancillas",
    [("AND", 0), ("OR", 0), ("NAND", 0), ("NOR", 0), ("NOT", 0),
     ("XOR", 1), ("XNOR", 1), ("MUX", 1)],
)
def test_table5_regenerate_cell(benchmark, name, expected_ancillas):
    spec = CELL_LIBRARY[name]

    def rows():
        out = []
        import itertools

        for bits in itertools.product((False, True), repeat=len(spec.inputs)):
            out.append((bool(spec.function(*bits)),) + bits)
        return out

    valid_rows = rows()

    def synthesize():
        return synthesize_penalty(
            valid_rows,
            [spec.output] + list(spec.inputs),
            max_ancillas=max(expected_ancillas, 1),
        )

    penalty = benchmark(synthesize)
    assert len(penalty.ancillas) == expected_ancillas
    assert verify_penalty(penalty, valid_rows)
    benchmark.extra_info["gap"] = penalty.gap
    benchmark.extra_info["ancillas"] = len(penalty.ancillas)


def test_table5_gap_chosen_for_robustness(benchmark):
    """Table 5's functions 'maximize the gap between the H of all valid
    inputs and the minimal H of an invalid input'.  Check the library
    gaps are at or near the LP-optimal gap for the same ranges."""

    def gaps():
        out = {}
        for name in ("AND", "OR", "NAND", "NOR"):
            spec = CELL_LIBRARY[name]
            model = spec.hamiltonian()
            energies = sorted(
                {round(model.energy(dict(zip(spec.ports, row))), 9)
                 for row in _all_rows(spec)}
            )
            ground = energies[0]
            first_excited = min(
                e for e in energies if e > ground + 1e-9
            )
            out[name] = first_excited - ground
        return out

    measured = benchmark(gaps)
    for name, gap in measured.items():
        assert gap == pytest.approx(2.0), name  # LP optimum for these ranges
    benchmark.extra_info["measured_gaps"] = measured


def _all_rows(spec):
    import itertools

    return itertools.product((-1, 1), repeat=len(spec.ports))
