"""F4 -- Figure 4 / Listing 5: circuit satisfiability run backward.

The CLRS circuit of Figure 4 has exactly one satisfying assignment.
Pinning y := true and annealing must return a=1, b=1, c=0 (Section 5.2),
and the result must verify in polynomial time by forward evaluation.
"""

import pytest

from benchmarks.conftest import LISTING_5_CIRCSAT


@pytest.fixture(scope="module")
def circsat(compiler):
    return compiler.compile(LISTING_5_CIRCSAT)


def test_fig4_backward_on_annealer(benchmark, compiler, circsat):
    def solve():
        return compiler.run(
            circsat, pins=["y := true"], solver="dwave", num_reads=150
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    answers = {
        (s.value_of("a"), s.value_of("b"), s.value_of("c"))
        for s in result.valid_solutions
    }
    assert (1, 1, 0) in answers
    benchmark.extra_info["paper"] = "a and b True, c False"
    benchmark.extra_info["measured_answers"] = sorted(map(str, answers))
    benchmark.extra_info["physical_qubits"] = result.num_physical_qubits()


def test_fig4_forward_verification(benchmark, circsat):
    """By the definition of NP, proposals check in polynomial time."""
    simulator = circsat.simulator()

    def verify_all():
        return [
            (a, b, c, simulator.evaluate({"a": a, "b": b, "c": c})["y"])
            for a in (0, 1) for b in (0, 1) for c in (0, 1)
        ]

    table = benchmark(verify_all)
    satisfying = [(a, b, c) for a, b, c, y in table if y]
    assert satisfying == [(1, 1, 0)]
    benchmark.extra_info["satisfying_assignments"] = satisfying


def test_fig4_unsatisfiable_circuit_returns_invalid(benchmark, compiler):
    """'If the circuit were not satisfiable, the quantum annealer would
    return an invalid solution' -- which the forward check rejects."""
    unsat = """
    module unsat (a, y);
        input a;
        output y;
        assign y = a & ~a;
    endmodule
    """
    program = compiler.compile(unsat)

    def solve():
        return compiler.run(
            program, pins=["y := true"], solver="exact", num_reads=8
        )

    result = benchmark(solve)
    # Every returned sample violates either the pin or a gate assert.
    assert result.valid_solutions == [] or all(
        s.values.get("y") is not True for s in result.valid_solutions
    )
