"""Disabled-tracer overhead: instrumentation must be (nearly) free.

The observability layer (repro.core.trace) promises zero overhead when
disabled -- the default state of every production anneal.  This
benchmark quantifies that promise two ways:

* **microbenchmark** -- the per-call cost of a disabled ``span()`` /
  ``counter().inc()`` round trip, which bounds the total added cost
  (the hot paths make a handful of such calls per *run*, never per
  sweep);
* **end to end** -- the map-coloring anneal (the PR-3 baseline
  workload) timed with instrumentation present-but-disabled must stay
  within 2% of the pure solver time, measured as the instrumentation
  calls' share of the anneal.

Set ``REPRO_BENCH_SMOKE=1`` for a scaled-down run; smoke mode skips
the percentage floor (CI jitter must never gate a merge) but still
exercises every path.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/test_observability_overhead.py -s -q
"""

from __future__ import annotations

import os
import time

from repro.core import trace
from repro.core.mapcolor import unary_map_coloring_model
from repro.solvers.neal import SimulatedAnnealingSampler

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
NUM_READS = 50 if SMOKE else 400
NUM_SWEEPS = 16 if SMOKE else 64
REPEATS = 1 if SMOKE else 3
#: The acceptance bound: disabled instrumentation under 2% of solve time.
OVERHEAD_CEILING = 0.02
#: Disabled calls the instrumented hot path makes per anneal (span +
#: attrs in the stage wrapper, observe_sample's single enabled() check,
#: a few cache counters) -- a generous overestimate.
CALLS_PER_RUN = 100


def _disabled_call_cost_s(iterations: int = 20000) -> float:
    """Per-iteration cost of one disabled span + counter + event round."""
    assert not trace.enabled()
    best = float("inf")
    for _ in range(max(1, REPEATS)):
        start = time.perf_counter()
        for _ in range(iterations):
            with trace.span("bench.noop", attr=1):
                pass
            trace.metrics().counter("bench.noop").inc()
            trace.event("bench.noop")
        best = min(best, time.perf_counter() - start)
    return best / iterations


def _anneal_time_s() -> float:
    model = unary_map_coloring_model()
    best = float("inf")
    for _ in range(REPEATS):
        sampler = SimulatedAnnealingSampler(seed=0)
        start = time.perf_counter()
        sampler.sample(model, num_reads=NUM_READS, num_sweeps=NUM_SWEEPS)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_instrumentation_under_two_percent():
    assert not trace.enabled(), "benchmark requires the disabled default"
    before = trace.span_allocations()
    call_s = _disabled_call_cost_s()
    anneal_s = _anneal_time_s()
    assert trace.span_allocations() == before, (
        "disabled path allocated span records"
    )

    overhead_s = CALLS_PER_RUN * call_s
    share = overhead_s / anneal_s
    print(
        f"\ndisabled-call cost: {call_s * 1e9:.0f} ns/round, "
        f"anneal: {anneal_s * 1e3:.1f} ms, "
        f"overhead share ({CALLS_PER_RUN} calls/run): {share * 100:.4f}%"
    )
    if not SMOKE:
        assert share < OVERHEAD_CEILING, (
            f"disabled instrumentation costs {share * 100:.2f}% of the "
            f"anneal (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        )
