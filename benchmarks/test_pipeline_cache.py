"""Pipeline caches on the serving path: repeat runs of Listing 7.

A service answering map-coloring queries compiles the Listing 7 design
once and runs it per request.  The second ``compile`` must be a
compilation-cache hit (no stage re-runs) and the second ``run`` must be
an embedding-cache hit (minor embedding -- the dominant execution-side
cost -- is skipped).  CI determinism: we assert on the *cache hits*
recorded in the stats, never on wall time; the per-stage timings are
reported as ``extra_info`` for humans.
"""

import pytest

from repro import VerilogAnnealerCompiler
from benchmarks.conftest import (
    AUSTRALIA_REGIONS,
    LISTING_7_AUSTRALIA,
    coloring_is_valid,
)


@pytest.fixture(scope="module")
def caching_compiler():
    """A dedicated compiler so this module observes its own caches."""
    return VerilogAnnealerCompiler(seed=2019)


def test_second_compile_hits_compilation_cache(benchmark, caching_compiler):
    def compile_twice():
        first = caching_compiler.compile(LISTING_7_AUSTRALIA)
        second = caching_compiler.compile(LISTING_7_AUSTRALIA)
        return first, second

    first, second = benchmark.pedantic(compile_twice, rounds=1, iterations=1)
    assert second is first  # memoized, no stage re-ran
    assert caching_compiler.compile_cache.stats.hits >= 1
    benchmark.extra_info["cold_compile_s"] = round(first.stats.total_time_s(), 4)
    benchmark.extra_info["compile_cache_hits"] = (
        caching_compiler.compile_cache.stats.hits
    )


def test_second_run_hits_embedding_cache(benchmark, caching_compiler):
    program = caching_compiler.compile(LISTING_7_AUSTRALIA)

    def run_twice():
        cold = caching_compiler.run(
            program, pins=["valid := true"], solver="dwave", num_reads=50
        )
        warm = caching_compiler.run(
            program, pins=["valid := true"], solver="dwave", num_reads=50
        )
        return cold, warm

    cold, warm = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    # The paper's Section 6.1 embedding is the expensive step; the warm
    # run must get it from the cache.
    assert cold.info["embedding_cache"] == "miss"
    assert warm.info["embedding_cache"] == "hit"
    assert warm.stats["find_embedding"].cached
    assert warm.embedding.chains == cold.embedding.chains

    # Both runs still solve the problem.
    for result in (cold, warm):
        valid = [
            s for s in result.valid_solutions
            if coloring_is_valid(
                {r: s.value_of(r) for r in AUSTRALIA_REGIONS}
            )
        ]
        assert valid, "no valid coloring returned"

    cold_embed_s = cold.stats["find_embedding"].wall_time_s
    warm_embed_s = warm.stats["find_embedding"].wall_time_s
    benchmark.extra_info["cold_find_embedding_s"] = round(cold_embed_s, 4)
    benchmark.extra_info["warm_find_embedding_s"] = round(warm_embed_s, 4)
    benchmark.extra_info["physical_qubits"] = cold.num_physical_qubits()
