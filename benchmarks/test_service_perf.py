"""Annealing-service load test: throughput, latency, and cache warmth.

Drives an in-process :class:`~repro.service.app.AnnealingServer` (real
HTTP over a loopback socket, real worker pool) through a cold/warm
workload and records the serving numbers:

* **requests/s** -- sequential ``GET /healthz`` round-trips, the raw
  HTTP + dispatch overhead floor;
* **cold p50/p99** -- end-to-end submit->done latency for distinct
  designs (every job compiles, embeds, and samples);
* **warm p50/p99** -- the same designs resubmitted, now served from the
  shared content-addressed caches (compilation skipped, straight to
  sampling);
* **cache hit ratio** -- the compile cache's measured ratio after the
  workload, cross-checked against the ``service.cache_warm`` counter.
* **recovery** -- journal-replay cost after a simulated mid-load crash:
  a state dir holding finished jobs plus orphaned (acknowledged, never
  finished) accepts is recovered by a fresh service; the gate is hard
  on completeness (100% of acknowledged jobs must reach ``done``) and
  trajectory-style on replay time per job.

Results are persisted to ``BENCH_service.json`` at the repo root in the
tracked-trajectory style of ``BENCH_kernels.json``: the committed file
is a regression baseline -- the warm-over-cold speedup may drop at most
20% below the stored ratio before the gate fails, while improvements
pass and refresh the file.  Absolute latencies are machine-specific and
never gate.

The acceptance criterion rides here too: at full scale the warm p50
must be **measurably below** the cold p50 (at most 80% of it) -- the
whole point of sharing caches across requests.

Set ``REPRO_BENCH_SMOKE=1`` for a scaled-down run (2 designs, fewer
reads) that still writes the JSON and checks warm/cold sanity but skips
every timing gate.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/test_service_perf.py -s -q
"""

from __future__ import annotations

import faulthandler
import json
import os
import statistics
import threading
import time
import urllib.request
from pathlib import Path

from repro.service.app import AnnealingServer, ServiceConfig

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
NUM_DESIGNS = 2 if SMOKE else 8
#: Compile-heavy, sample-light: a wide multiplier costs hundreds of
#: milliseconds to lower (elaborate -> techmap -> EDIF -> QMASM ->
#: assemble) while a few short anneals cost tens -- so the workload
#: exposes exactly what the shared compilation cache buys a warm job.
MULT_WIDTH = 6 if SMOKE else 12
NUM_READS = 4
NUM_SWEEPS = 4
HEALTH_PINGS = 20 if SMOKE else 200
#: Full-scale acceptance: warm p50 at most this fraction of cold p50.
WARM_P50_CEILING = 0.8
#: Trajectory band vs the committed warm-over-cold speedup.
REGRESSION_TOLERANCE = 0.20
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: A distinct design per index: the tag comment changes the content
#: hash (distinct cache entries) while keeping the compile/embed/sample
#: workload identical across designs, so cold latencies are comparable.
MULT_TEMPLATE = """
// service-load-test design {tag}
module mult (A, B, C);
   input [{w1}:0] A;
   input [{w1}:0] B;
   output [{w2}:0] C;
   assign C = A * B;
endmodule
"""


def _design(tag):
    return MULT_TEMPLATE.format(tag=tag, w1=MULT_WIDTH - 1, w2=2 * MULT_WIDTH - 1)


def _client(base_url):
    def request(method, path, payload=None, timeout_s=60.0):
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        req = urllib.request.Request(
            base_url + path,
            data=data,
            headers={"Content-Type": "application/json", "X-Tenant": "bench"},
            method=method,
        )
        with urllib.request.urlopen(req, timeout=timeout_s) as reply:
            return json.loads(reply.read().decode("utf-8"))

    return request


def _submit_and_wait(request, design_index):
    """One job end-to-end; returns the client-observed latency."""
    payload = {
        "source": _design(design_index),
        "solver": "sa",
        "num_reads": NUM_READS,
        "num_sweeps": NUM_SWEEPS,
        "seed": 1000 + design_index,
    }
    start = time.perf_counter()
    submitted = request("POST", "/jobs", payload)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        snapshot = request("GET", f"/jobs/{submitted['id']}")
        if snapshot["state"] in ("done", "error", "timeout"):
            break
        time.sleep(0.005)
    latency = time.perf_counter() - start
    assert snapshot["state"] == "done", f"job failed: {snapshot.get('error')}"
    return latency, snapshot


def _percentile(values, q):
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, int(round(q * (len(ranked) - 1)))))
    return ranked[index]


def _read_results():
    """The current BENCH_service.json contents (empty when absent/bad)."""
    if not RESULT_PATH.exists():
        return {}
    try:
        return json.loads(RESULT_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def _load_baseline():
    if SMOKE:
        return None
    baseline = _read_results()
    if baseline.get("smoke") or "warm_speedup_p50" not in baseline:
        return None
    return baseline


def test_service_throughput_and_cache_warmth():
    faulthandler.dump_traceback_later(600.0, exit=True)
    server = AnnealingServer(
        ServiceConfig(port=0, workers=2, rate_limit_per_s=None)
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    request = _client(server.url)
    try:
        assert request("GET", "/healthz")["status"] == "ok"

        # Raw HTTP floor: sequential healthz round-trips.
        ping_start = time.perf_counter()
        for _ in range(HEALTH_PINGS):
            request("GET", "/healthz")
        ping_elapsed = time.perf_counter() - ping_start
        requests_per_s = HEALTH_PINGS / ping_elapsed

        cold = [_submit_and_wait(request, i) for i in range(NUM_DESIGNS)]
        warm = [_submit_and_wait(request, i) for i in range(NUM_DESIGNS)]
        cold_latencies = [latency for latency, _ in cold]
        warm_latencies = [latency for latency, _ in warm]

        assert all(not snap["cache_warm"] for _, snap in cold)
        assert all(snap["cache_warm"] for _, snap in warm)

        metrics = request("GET", "/metrics?format=json")
        counters = metrics["counters"]
        hit_ratio = metrics["derived"]["cache.compile.hit_ratio"]
    finally:
        clean = server.shutdown_service(drain=True, timeout_s=30.0)
        faulthandler.cancel_dump_traceback_later()
    assert clean, "benchmark server did not shut down cleanly"

    cold_p50 = statistics.median(cold_latencies)
    warm_p50 = statistics.median(warm_latencies)
    cold_p99 = _percentile(cold_latencies, 0.99)
    warm_p99 = _percentile(warm_latencies, 0.99)
    warm_speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")

    assert counters["service.cache_warm"] == NUM_DESIGNS
    assert counters["service.cache_cold"] == NUM_DESIGNS
    # Every warm job hit the compile cache: the measured ratio is the
    # warm half of the workload.
    assert hit_ratio >= 0.5 - 1e-9

    baseline = _load_baseline()
    existing = _read_results()
    payload = {
        "benchmark": "service_perf",
        "version": 1,
        "smoke": SMOKE,
        "workload": {
            "designs": NUM_DESIGNS,
            "mult_width": MULT_WIDTH,
            "num_reads": NUM_READS,
            "num_sweeps": NUM_SWEEPS,
            "workers": 2,
            "health_pings": HEALTH_PINGS,
        },
        "requests_per_s": requests_per_s,
        "cold": {
            "p50_s": cold_p50,
            "p99_s": cold_p99,
            "latencies_s": cold_latencies,
        },
        "warm": {
            "p50_s": warm_p50,
            "p99_s": warm_p99,
            "latencies_s": warm_latencies,
        },
        "warm_speedup_p50": warm_speedup,
        "compile_cache_hit_ratio": hit_ratio,
        "cache_warm_jobs": counters["service.cache_warm"],
    }
    # Preserve the recovery section (written by its own benchmark).
    if "recovery" in existing:
        payload["recovery"] = existing["recovery"]
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nservice_perf: {requests_per_s:.0f} req/s (healthz), "
        f"cold p50={cold_p50 * 1000:.0f}ms p99={cold_p99 * 1000:.0f}ms, "
        f"warm p50={warm_p50 * 1000:.0f}ms p99={warm_p99 * 1000:.0f}ms, "
        f"warm speedup={warm_speedup:.2f}x, hit_ratio={hit_ratio:.2f}"
    )

    if SMOKE:
        # Smoke still proves warmth is plumbed, but never gates timing.
        return

    # Acceptance: the warm path must be measurably faster than cold.
    assert warm_p50 <= cold_p50 * WARM_P50_CEILING, (
        f"warm p50 {warm_p50:.3f}s not measurably below cold p50 "
        f"{cold_p50:.3f}s (ceiling {WARM_P50_CEILING:.0%})"
    )

    # Trajectory gate: ratios only, with the standard 20% band.
    if baseline is not None:
        floor = baseline["warm_speedup_p50"] * (1.0 - REGRESSION_TOLERANCE)
        assert warm_speedup >= floor, (
            f"warm-over-cold speedup regressed: {warm_speedup:.2f}x vs "
            f"committed {baseline['warm_speedup_p50']:.2f}x (floor "
            f"{floor:.2f}x) -- investigate before refreshing "
            f"BENCH_service.json"
        )


# ----------------------------------------------------------------------
# Recovery benchmark: journal replay after a simulated mid-load crash.
# ----------------------------------------------------------------------
#: Jobs that finished (journaled terminal) before the "crash".
RECOVERY_TERMINAL_JOBS = 1 if SMOKE else 4
#: Jobs acknowledged (journaled accept) but never finished: the orphans
#: recovery must re-enqueue and complete.
RECOVERY_ORPHAN_JOBS = 2 if SMOKE else 8
#: Replay time is dominated by journal parse + store rebuild, which is
#: cheap and noisy at this scale -- the band is deliberately wide (the
#: hard gate is completeness, not speed).
RECOVERY_REGRESSION_FACTOR = 5.0

RECOVERY_PAYLOAD = {
    "source": "A -1\nA B -5\n",
    "language": "qmasm",
    "solver": "exact",
    "pins": ["A := true"],
}


def _await_terminal_job(job, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if job.is_terminal():
            return job.snapshot()
        time.sleep(0.01)
    raise AssertionError(f"job {job.id} did not finish within {timeout_s}s")


def test_recovery_replay_cost_and_completeness(tmp_path):
    import dataclasses

    from repro.service.app import AnnealingService
    from repro.service.jobs import JobRequest
    from repro.service.journal import JobJournal

    faulthandler.dump_traceback_later(600.0, exit=True)
    state_dir = str(tmp_path / "state")
    acknowledged = []

    # Phase 1: a real journaled service completes some jobs cleanly.
    service = AnnealingService(
        ServiceConfig(port=0, workers=2, rate_limit_per_s=None, state_dir=state_dir)
    )
    service.start()
    try:
        for index in range(RECOVERY_TERMINAL_JOBS):
            payload = dict(RECOVERY_PAYLOAD, seed=500 + index)
            job, _ = service.submit(payload)
            snapshot = _await_terminal_job(job)
            assert snapshot["state"] == "done"
            acknowledged.append(job.id)
    finally:
        assert service.shutdown(drain=True, timeout_s=60.0)

    # Phase 2: the "crash": orphaned accepts -- acknowledged jobs whose
    # process died before any worker finished them.  Appending real
    # accept records to the same journal reproduces exactly what a
    # SIGKILL between the fsynced 202 and the terminal leaves behind.
    journal = JobJournal(state_dir)
    for index in range(RECOVERY_ORPHAN_JOBS):
        payload = dict(RECOVERY_PAYLOAD, seed=900 + index)
        request = JobRequest.from_payload(payload)
        job_id = f"job-{100 + index:06d}-0badc0de"
        journal.accept(job_id, "bench", dataclasses.asdict(request), 100.0 + index)
        acknowledged.append(job_id)
    journal.close()

    # Phase 3: restart against the same state dir; time the replay and
    # hold the service to 100% of its acknowledgements.
    start = time.perf_counter()
    restarted = AnnealingService(
        ServiceConfig(port=0, workers=2, rate_limit_per_s=None, state_dir=state_dir)
    )
    restarted.start()
    try:
        startup_s = time.perf_counter() - start
        report = restarted.recovery_report
        assert report is not None
        total = RECOVERY_TERMINAL_JOBS + RECOVERY_ORPHAN_JOBS
        assert report.recovered_jobs == total
        assert report.terminal_jobs == RECOVERY_TERMINAL_JOBS
        assert report.requeued_jobs == RECOVERY_ORPHAN_JOBS
        assert report.quarantined_jobs == 0

        # Hard gate: every acknowledged job reaches done.
        completed = 0
        for job_id in acknowledged:
            job = restarted.store.get(job_id)
            assert job is not None, f"acknowledged job {job_id} was lost"
            snapshot = _await_terminal_job(job, timeout_s=120.0)
            assert snapshot["state"] == "done", (
                f"acknowledged job {job_id} ended {snapshot['state']}: "
                f"{snapshot.get('error')}"
            )
            completed += 1
        assert completed == total
        replay_s = report.replay_s
    finally:
        clean = restarted.shutdown(drain=True, timeout_s=60.0)
        faulthandler.cancel_dump_traceback_later()
    assert clean, "recovered service did not shut down cleanly"

    replay_ms_per_job = replay_s * 1000.0 / total
    results = _read_results()
    previous = results.get("recovery") if not SMOKE else None
    results["recovery"] = {
        "smoke": SMOKE,
        "terminal_jobs": RECOVERY_TERMINAL_JOBS,
        "orphan_jobs": RECOVERY_ORPHAN_JOBS,
        "recovered_jobs": total,
        "completed_jobs": completed,
        "replay_s": replay_s,
        "replay_ms_per_job": replay_ms_per_job,
        "startup_s": startup_s,
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"\nservice_recovery: {total} jobs recovered "
        f"({RECOVERY_ORPHAN_JOBS} requeued) in {replay_s * 1000:.1f}ms "
        f"({replay_ms_per_job:.2f}ms/job), 100% completed"
    )

    if SMOKE:
        return
    # Trajectory gate: wide band on replay cost per job (completeness
    # above is the hard gate; this only catches order-of-magnitude
    # regressions in the replay path).
    if (
        previous
        and not previous.get("smoke")
        and previous.get("replay_ms_per_job")
    ):
        ceiling = previous["replay_ms_per_job"] * RECOVERY_REGRESSION_FACTOR
        assert replay_ms_per_job <= ceiling, (
            f"journal replay regressed: {replay_ms_per_job:.2f}ms/job vs "
            f"committed {previous['replay_ms_per_job']:.2f}ms/job "
            f"(ceiling {ceiling:.2f}) -- investigate before refreshing "
            f"BENCH_service.json"
        )
