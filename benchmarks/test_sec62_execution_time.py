"""S62 -- Section 6.2: per-solution execution time, annealer vs Chuffed.

The paper measured 1,000,000 anneals of 20 us apiece on a D-Wave 2000Q
(734 us per solution, including network and queuing overheads) against
100,000 runs of the Listing 8 MiniZinc model under Chuffed (1798 us per
solution), concluding "the performance of our approach is not
necessarily worse than that of a classical solver", with the caveat
that Chuffed guarantees correctness and returns the same solution every
time while the annealer samples the space.

We regenerate both columns:

  - annealer per-solution time = modeled QPU time (the machine's 2000Q
    timing model: anneal + readout + delay per read, amortized
    programming) divided by the measured fraction of reads that return
    a distinct valid coloring;
  - Chuffed stand-in per-solution time = wall time of our
    propagation+backtracking solver on the Listing 8 model.

Shape checks: both land within a couple of orders of magnitude of each
other; the CSP solver is deterministic; the annealer samples many
distinct colorings.
"""

import time

import pytest

from repro.solvers.csp import CSPSolver, parse_minizinc

from benchmarks.conftest import (
    AUSTRALIA_REGIONS,
    LISTING_8_MINIZINC,
    coloring_is_valid,
)

PAPER_DWAVE_US_PER_SOLUTION = 734.0
PAPER_CHUFFED_US_PER_SOLUTION = 1798.0


def test_sec62_annealer_per_solution_time(benchmark, compiler, australia_program):
    def run_on_machine():
        result = compiler.run(
            australia_program,
            pins=["valid := true"],
            solver="dwave",
            num_reads=100,
            annealing_time_us=20.0,
        )
        valid_reads = 0
        distinct = set()
        for solution in result.valid_solutions:
            colors = {r: solution.value_of(r) for r in AUSTRALIA_REGIONS}
            if coloring_is_valid(colors):
                valid_reads += solution.num_occurrences
                distinct.add(tuple(colors[r] for r in AUSTRALIA_REGIONS))
        timing = result.info["timing"]
        return timing, valid_reads, distinct, result

    timing, valid_reads, distinct, result = benchmark.pedantic(
        run_on_machine, rounds=1, iterations=1
    )
    assert valid_reads > 0, "no valid coloring in 100 reads"
    per_solution_us = timing["qpu_access_time_us"] / valid_reads
    # Same order as the paper's 734 us within generous bounds: the
    # figure depends on success rate and overhead modeling.
    assert 50 <= per_solution_us <= 50_000
    # The annealer *samples*: many distinct colorings, not one.
    assert len(distinct) > 1
    benchmark.extra_info["paper_us_per_solution"] = PAPER_DWAVE_US_PER_SOLUTION
    benchmark.extra_info["measured_us_per_solution"] = round(per_solution_us, 1)
    benchmark.extra_info["valid_reads"] = valid_reads
    benchmark.extra_info["distinct_colorings"] = len(distinct)
    benchmark.extra_info["chain_break_fraction"] = round(
        result.info.get("chain_break_fraction", 0.0), 4
    )


def test_sec62_chuffed_per_solution_time(benchmark):
    model = parse_minizinc(LISTING_8_MINIZINC)
    solver = CSPSolver()

    def solve_once():
        return solver.solve(model)

    solution = benchmark(solve_once)
    assert solution is not None
    mean_us = benchmark.stats.stats.mean * 1e6
    benchmark.extra_info["paper_us_per_solution"] = PAPER_CHUFFED_US_PER_SOLUTION
    benchmark.extra_info["measured_us_per_solution"] = round(mean_us, 1)


def test_sec62_csp_is_deterministic_annealer_is_not(
    benchmark, compiler, australia_program
):
    """The qualitative half of the comparison."""

    def compare():
        model = parse_minizinc(LISTING_8_MINIZINC)
        csp_solutions = {
            tuple(sorted(CSPSolver().solve(model).items())) for _ in range(5)
        }
        annealer_colorings = set()
        result = compiler.run(
            australia_program, pins=["valid := true"], solver="sa",
            num_reads=200,
        )
        for solution in result.valid_solutions:
            colors = {r: solution.value_of(r) for r in AUSTRALIA_REGIONS}
            if coloring_is_valid(colors):
                annealer_colorings.add(tuple(sorted(colors.items())))
        return csp_solutions, annealer_colorings

    csp_solutions, annealer_colorings = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert len(csp_solutions) == 1  # "returns the same solution every time"
    assert len(annealer_colorings) > 5  # "samples from the space of solutions"
    benchmark.extra_info["csp_distinct"] = len(csp_solutions)
    benchmark.extra_info["annealer_distinct"] = len(annealer_colorings)
