"""T4 -- Table 4: verifying the XOR gate Hamiltonian over all 16 rows.

The paper's Table 4 evaluates the augmented XOR system on every
(Y, A, B, a) assignment: the four augmented valid rows sit at k = -4 for
the Section 4.3.2 solution; the Table 5 library uses a rescaled variant
with k = -2 and the same structure.  This benchmark regenerates the full
16-row table for both and checks the =k / >k pattern.
"""

import itertools

import pytest

from repro.ising.cells import CELL_LIBRARY
from repro.ising.model import IsingModel

#: Section 4.3.2's explicit XOR solution (k = -4).
SECTION_432_XOR = IsingModel(
    {"Y": -1.0, "A": 1.0, "B": -1.0, "a": 2.0},
    {
        ("Y", "A"): -1.0,
        ("Y", "B"): 1.0,
        ("Y", "a"): -2.0,
        ("A", "B"): -1.0,
        ("A", "a"): 2.0,
        ("B", "a"): -2.0,
    },
)

#: Table 3's augmentation: (Y, A, B) -> ancilla.
TABLE_3 = {
    (-1, -1, -1): -1,
    (1, -1, 1): 1,
    (1, 1, -1): -1,
    (-1, 1, 1): -1,
}


def _full_table(model, names):
    return {
        spins: model.energy(dict(zip(names, spins)))
        for spins in itertools.product((-1, 1), repeat=4)
    }


def test_table4_section432_solution(benchmark):
    table = benchmark(_full_table, SECTION_432_XOR, ("Y", "A", "B", "a"))
    k = -4.0
    for (y, a, b, anc), energy in table.items():
        if TABLE_3.get((y, a, b)) == anc:
            assert energy == pytest.approx(k), (y, a, b, anc)
        else:
            assert energy > k + 1e-9, (y, a, b, anc)
    valid_count = sum(
        1 for row, e in table.items() if e == pytest.approx(k)
    )
    assert valid_count == 4  # augmentation leaves 4 valid rows
    benchmark.extra_info["paper_k"] = k
    benchmark.extra_info["valid_rows"] = valid_count


def test_table4_library_xor_same_pattern(benchmark):
    spec = CELL_LIBRARY["XOR"]
    model = spec.hamiltonian()
    table = benchmark(_full_table, model, ("Y", "A", "B", "$anc1"))
    k = min(table.values())
    minima = {row for row, e in table.items() if e == pytest.approx(k)}
    # Exactly four minima, one per XOR truth-table row.
    assert len(minima) == 4
    assert {(y, a, b) for y, a, b, _ in minima} == set(TABLE_3)
    benchmark.extra_info["measured_k"] = k
    benchmark.extra_info["paper"] = "4 valid rows at k, 12 rows strictly above"
