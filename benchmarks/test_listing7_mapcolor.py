"""L7 -- Listing 7: four-coloring the map of Australia (Section 5.4).

Pinning valid := true and running backward yields proper colorings; and,
because annealing samples the solution space, repeated reads return many
*different* valid colorings -- the behaviour the paper contrasts with a
deterministic classical solver.
"""

import pytest

from benchmarks.conftest import (
    AUSTRALIA_REGIONS,
    coloring_is_valid,
)


def test_listing7_backward_coloring(benchmark, compiler, australia_program):
    def solve():
        return compiler.run(
            australia_program,
            pins=["valid := true"],
            solver="sa",
            num_reads=400,
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    colorings = set()
    for solution in result.valid_solutions:
        colors = {r: solution.value_of(r) for r in AUSTRALIA_REGIONS}
        if coloring_is_valid(colors):
            colorings.add(tuple(colors[r] for r in AUSTRALIA_REGIONS))
    assert len(colorings) >= 5
    benchmark.extra_info["paper"] = (
        "returns a valid coloring, e.g. ACT=2 NSW=0 NT=1 QLD=3 SA=2 VIC=3 WA=3"
    )
    benchmark.extra_info["distinct_valid_colorings"] = len(colorings)


def test_listing7_sampling_diversity(benchmark, compiler, australia_program):
    """Thousands of anneals both amortize overhead and raise the chance
    of a correct solution (Section 5.4); each run samples the space."""

    def two_runs():
        results = []
        for seed_pins in (["valid := true"], ["valid := true"]):
            result = compiler.run(
                australia_program, pins=seed_pins, solver="sa", num_reads=150
            )
            colorings = {
                tuple(s.value_of(r) for r in AUSTRALIA_REGIONS)
                for s in result.valid_solutions
            }
            results.append(colorings)
        return results

    first, second = benchmark.pedantic(two_runs, rounds=1, iterations=1)
    # Stochastic sampler: the two runs see overlapping but not identical
    # solution sets (unlike the CSP baseline, which repeats one answer).
    assert first and second
    assert first != second or len(first) > 10
    benchmark.extra_info["run1_distinct"] = len(first)
    benchmark.extra_info["run2_distinct"] = len(second)


def test_listing7_forward_validation(benchmark, australia_program):
    """The verifier circuit agrees with the adjacency definition."""
    simulator = australia_program.simulator()

    def spot_check():
        agree = 0
        import random

        rng = random.Random(0)
        for _ in range(200):
            colors = {r: rng.randrange(4) for r in AUSTRALIA_REGIONS}
            expected = coloring_is_valid(colors)
            measured = bool(simulator.evaluate(colors)["valid"])
            agree += int(expected == measured)
        return agree

    agree = benchmark(spot_check)
    assert agree == 200
