"""Ablation: annealing time vs solution quality (Section 2).

"The user-specified annealing time ranges from 1-2000 us, which may be
shorter than what the adiabatic theorem requires to minimize H with
near-certainty."  On the simulated machine, anneal time buys sweeps;
this study measures the ground-state probability of an embedded gate
network across the legal annealing-time range.
"""

import numpy as np

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import (
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.cells import cell_hamiltonian, wire_hamiltonian
from repro.solvers.machine import DWaveSimulator, MachineProperties


def test_anneal_time_vs_ground_probability(benchmark):
    logical = cell_hamiltonian("XOR", "g1.")
    logical.update(cell_hamiltonian("MUX", "g2."))
    logical.update(wire_hamiltonian("g1.Y", "g2.S"))
    ground, _ = logical.ground_states()

    machine = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0),
        seed=0,
    )
    embedding = find_embedding(
        source_graph_of(logical), machine.working_graph, seed=1
    )
    physical = embed_ising(logical, embedding, machine.working_graph)
    scaled, _ = scale_to_hardware(physical)

    def sweep():
        rates = {}
        for anneal_us in (1.0, 5.0, 20.0, 100.0):
            samples = machine.sample_ising(
                scaled, num_reads=60, annealing_time_us=anneal_us,
                apply_noise=False,
            )
            unembedded = unembed_sampleset(samples, embedding, logical)
            rates[anneal_us] = float(
                np.mean(np.abs(unembedded.energies - ground) < 1e-6)
            )
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Longer anneals must not hurt, and the longest must clearly beat
    # the 1 us minimum (which is far too fast for this network).
    assert rates[100.0] >= rates[1.0]
    assert rates[100.0] > 0.3
    benchmark.extra_info["p_ground_by_anneal_us"] = rates
    benchmark.extra_info["paper"] = (
        "1-2000 us may be shorter than the adiabatic theorem requires"
    )
