"""Ablation: problem scale vs the 2048-qubit budget (Sections 2 / 5.1).

"With at most 2048 qubits for code plus data, it is clearly infeasible
to compile large Verilog programs to a current-generation quantum
annealer."  This study quantifies that: logical variables and physical
qubits as the factoring multiplier widens, and where the C16 budget
runs out.
"""

import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import find_embedding, source_graph_of


def _multiplier(width: int) -> str:
    return f"""
    module mult (A, B, C);
       input [{width - 1}:0] A;
       input [{width - 1}:0] B;
       output[{2 * width - 1}:0] C;
       assign C = A * B;
    endmodule
    """


def test_multiplier_width_scaling(benchmark, compiler):
    def measure():
        rows = {}
        for width in (2, 3, 4, 6, 8):
            program = compiler.compile(_multiplier(width))
            stats = program.statistics()
            rows[width] = {
                "cells": stats["num_cells"],
                "logical_variables": stats["logical_variables"],
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # An array multiplier grows ~quadratically with operand width.
    assert rows[8]["logical_variables"] > 3 * rows[4]["logical_variables"]
    assert rows[4]["logical_variables"] > 2 * rows[2]["logical_variables"]
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["paper"] = (
        "qubit scarcity bounds the factoring width (Section 5.3 uses 4x4)"
    )


def test_physical_budget_on_c16(benchmark, compiler):
    """Embed widening multipliers until the C16 budget bites."""
    target = chimera_graph(16)

    def measure():
        rows = {}
        for width in (2, 4):
            program = compiler.compile(_multiplier(width))
            logical, _ = program.logical.to_ising(apply_pins=False)
            embedding = find_embedding(
                source_graph_of(logical), target, seed=0
            )
            rows[width] = {
                "logical": len(logical),
                "physical": embedding.total_qubits(),
                "fraction_of_2048": round(
                    embedding.total_qubits() / 2048, 3
                ),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The paper's 4x4 multiplier must comfortably fit the 2000Q.
    assert rows[4]["physical"] < 2048
    # Physical cost grows superlinearly with width (denser interaction
    # graphs need longer chains).
    growth = rows[4]["physical"] / rows[2]["physical"]
    assert growth > 2.0
    benchmark.extra_info["rows"] = rows
