"""Ablation: gap-maximized cell Hamiltonians vs minimal-gap ones.

Table 5's coefficients were "chosen to honor the hardware-imposed
coefficient ranges while maximizing the gap between the H of all valid
inputs and the minimal H of an invalid input.  Empirically, this tends
to lead to more robust output on D-Wave hardware."  We synthesize a
small-gap AND variant and compare ground-state hit rates under the
machine's control noise.
"""

import numpy as np

from repro.ising.cells import CELL_LIBRARY
from repro.ising.penalty import synthesize_penalty, truth_table_of
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import embed_ising, find_embedding, source_graph_of, unembed_sampleset
from repro.hardware.scaling import scale_to_hardware


def _small_gap_and():
    """An AND penalty that is feasible but whose gap is artificially
    small: synthesize at full gap, then mix toward a flat model."""
    rows = truth_table_of(lambda a, b: a and b, 2)
    penalty = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=0)
    return penalty.model.scaled(0.15)  # gap 2.0 -> 0.3


def test_gap_vs_noise_robustness(benchmark):
    properties = MachineProperties(
        cells=4, dropout_fraction=0.0, noise_h=0.06, noise_j=0.05
    )
    machine = DWaveSimulator(properties=properties, seed=1)
    target = machine.working_graph

    def hit_rate(logical):
        ground, _ = logical.ground_states()
        embedding = find_embedding(source_graph_of(logical), target, seed=2)
        physical = embed_ising(logical, embedding, target)
        # NOTE: deliberately *no* rescaling up to full range -- the gap
        # difference is the variable under test.
        samples = machine.sample_ising(
            physical, num_reads=80, annealing_time_us=20.0
        )
        unembedded = unembed_sampleset(samples, embedding, logical)
        return float(np.mean(np.abs(unembedded.energies - ground) < 1e-6))

    def compare():
        return {
            "table5_gap": hit_rate(CELL_LIBRARY["AND"].hamiltonian()),
            "small_gap": hit_rate(_small_gap_and()),
        }

    rates = benchmark.pedantic(compare, rounds=1, iterations=1)
    # The gap-maximized cell must be at least as robust under noise.
    assert rates["table5_gap"] >= rates["small_gap"]
    benchmark.extra_info["hit_rates"] = rates
    benchmark.extra_info["paper"] = (
        "maximized gap 'tends to lead to more robust output'"
    )
