"""Ablation: anneal count vs probability of a correct solution.

Section 5.4: "it is common to perform a large number of anneals (say,
thousands) per run, both to amortize startup overhead and to increase
the likelihood of encountering a correct solution.  Remember, all
quantum computers are fundamentally stochastic devices."  This ablation
measures P(at least one correct factorization of 143) as a function of
the read count, plus the amortization of the fixed programming time.
"""

from benchmarks.conftest import LISTING_6_MULT


def test_reads_vs_success_probability(benchmark, compiler):
    program = compiler.compile(LISTING_6_MULT)

    def measure():
        # Draw one large run, then bootstrap smaller read counts from it
        # by splitting the sample stream.
        result = compiler.run(
            program, pins=["C[7:0] := 10001111"], solver="sa", num_reads=600
        )
        correct_flags = []
        for sample in result.sampleset:
            full = result.logical.expand_sample(
                sample.assignment, result.representative
            )
            from repro.ising.model import spin_to_bool

            def value_of(base):
                total = 0
                for name, spin in full.items():
                    if name.startswith(f"{base}["):
                        index = int(name[len(base) + 1:-1])
                        total |= int(spin_to_bool(spin)) << index
                return total

            a, b = value_of("A"), value_of("B")
            correct_flags.append(a * b == 143)
        rates = {}
        for reads in (10, 50, 200, 600):
            chunk = correct_flags[:reads]
            rates[reads] = sum(chunk) / len(chunk)
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    # More reads -> (weakly) greater chance that at least one read was
    # correct; with 600 reads a correct factorization must appear.
    assert any(rates[600 if r == 600 else r] > 0 for r in rates)
    assert rates[600] > 0
    benchmark.extra_info["per_read_success_rate"] = rates
    benchmark.extra_info["paper"] = (
        "thousands of anneals per run amortize overhead and raise the "
        "likelihood of a correct solution"
    )


def test_programming_time_amortization(benchmark, compiler):
    """The fixed ~10 ms programming cost shrinks per solution as reads
    grow -- the 'amortize startup overhead' half of the claim."""
    from repro.solvers.machine import MachineProperties

    props = MachineProperties()

    def per_read_overhead():
        rows = {}
        for reads in (10, 100, 1000, 10000):
            per_sample = 20.0 + props.readout_time_us + props.delay_time_us
            total = props.programming_time_us + reads * per_sample
            rows[reads] = total / reads
        return rows

    rows = benchmark(per_read_overhead)
    assert rows[10000] < rows[10] / 4
    benchmark.extra_info["qpu_time_per_read_us"] = rows
