"""Ablation: chain strength for embedded problems.

QMASM defaults the chain coupling to twice the largest literal J.  Too
weak and chains break (majority vote guesses); too strong and, after
range scaling, the logical problem's energy gaps shrink toward the
noise floor.  This ablation sweeps the multiplier and records the
chain-break fraction and ground-state rate on an embedded gate network.
"""

import numpy as np
import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import (
    default_chain_strength,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.cells import cell_hamiltonian, wire_hamiltonian
from repro.solvers.neal import SimulatedAnnealingSampler


def _gate_network():
    """A small adder-ish network: two XORs and an AND chained together."""
    model = cell_hamiltonian("XOR", "g1.")
    model.update(cell_hamiltonian("AND", "g2."))
    model.update(cell_hamiltonian("XOR", "g3."))
    model.update(wire_hamiltonian("g1.Y", "g2.A"))
    model.update(wire_hamiltonian("g2.Y", "g3.A"))
    return model


def test_chain_strength_sweep(benchmark):
    logical = _gate_network()
    ground_energy, _ = logical.ground_states()
    target = chimera_graph(8)
    embedding = find_embedding(source_graph_of(logical), target, seed=3)
    base = default_chain_strength(logical)
    sampler = SimulatedAnnealingSampler(seed=0)

    def sweep():
        rows = {}
        for multiplier in (0.25, 0.5, 1.0, 2.0, 4.0):
            physical = embed_ising(
                logical, embedding, target,
                chain_strength=base * multiplier,
            )
            scaled, _ = scale_to_hardware(physical)
            samples = sampler.sample(scaled, num_reads=60, num_sweeps=300)
            unembedded = unembed_sampleset(samples, embedding, logical)
            rows[multiplier] = {
                "chain_break_fraction": unembedded.info["chain_break_fraction"],
                "p_ground": float(
                    np.mean(np.abs(unembedded.energies - ground_energy) < 1e-6)
                ),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Weak chains break more often than strong chains.
    assert (
        rows[0.25]["chain_break_fraction"]
        >= rows[4.0]["chain_break_fraction"]
    )
    # The default (1.0x) must actually solve the problem.
    assert rows[1.0]["p_ground"] > 0.2
    benchmark.extra_info["sweep"] = {str(k): v for k, v in rows.items()}
    benchmark.extra_info["qmasm_default"] = "2 x max |J| (multiplier 1.0)"
