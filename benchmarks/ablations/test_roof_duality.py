"""Ablation: roof-duality qubit elision on/off (Section 4.4).

qmasm optionally "uses SAPI's implementation of roof duality to elide
qubits whose final value can be determined a priori."  The more of a
program's inputs are pinned, the more of the circuit is determined and
the more qubits the presolve removes.
"""

from repro.ising.roofduality import fix_variables

from benchmarks.conftest import LISTING_5_CIRCSAT


def test_roof_duality_elision_vs_pinning(benchmark, compiler):
    """How many qubits the presolve elides depends on how strongly the
    program is pinned.  Roof duality is a *relaxation*: balanced
    XOR-style gadgets (the ancilla cells) admit fractional optima, so
    even fully-pinned circuits keep some undetermined variables -- the
    realistic behaviour of qmasm -O, which elides some, not all."""
    program = compiler.compile(LISTING_5_CIRCSAT)

    def measure():
        rows = {}
        for label, pins, strength in (
            ("no pins", [], None),
            ("inputs pinned (default strength)", ["a := 1", "b := 1", "c := 0"], None),
            ("inputs pinned (strong)", ["a := 1", "b := 1", "c := 0"], 8.0),
        ):
            model, _ = compiler.runner._to_logical(
                program.logical, pins
            ).to_ising(pin_strength=strength)
            fixed = fix_variables(model)
            rows[label] = {"variables": len(model), "fixed": len(fixed)}
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Nothing is determined a priori without pins (the bare program is a
    # symmetric relation), and strong pins elide at least the pinned
    # inputs plus whatever propagates through un-balanced gates.
    assert rows["no pins"]["fixed"] == 0
    strong = rows["inputs pinned (strong)"]["fixed"]
    assert strong >= 3
    assert strong >= rows["inputs pinned (default strength)"]["fixed"]
    benchmark.extra_info["rows"] = rows


def test_roof_duality_correctness_cost(benchmark, compiler):
    """Elision must not change the answers (checked) -- this records the
    runtime cost of the presolve itself."""
    program = compiler.compile(LISTING_5_CIRCSAT)

    def run_with_elision():
        return compiler.run(
            program,
            pins=["y := true"],
            solver="exact",
            use_roof_duality=True,
        )

    result = benchmark(run_with_elision)
    best = result.valid_solutions[0]
    assert (best.value_of("a"), best.value_of("b"), best.value_of("c")) == (1, 1, 0)
    benchmark.extra_info["fixed_variables"] = result.info["roof_duality_fixed"]
