"""Ablation: the compiled Hamiltonians are solver-agnostic (Section 2).

"The compilation approach we present in this paper is as applicable to
classical annealers such as Hitachi's simulated quantum annealer ... as
it is to quantum annealers.  In fact, the generated H can be minimized
in software on conventional computers."  This study runs the same
compiled program through every backend -- exhaustive enumeration,
simulated annealing, path-integral simulated *quantum* annealing, tabu
search, and qbsolv decomposition -- and checks they agree on the ground
states.
"""

import pytest

from benchmarks.conftest import LISTING_5_CIRCSAT

SOLVERS = ["exact", "sa", "sqa", "tabu", "qbsolv"]


def test_every_backend_agrees_on_circsat(benchmark, compiler):
    program = compiler.compile(LISTING_5_CIRCSAT)

    def run_all():
        results = {}
        for solver in SOLVERS:
            result = compiler.run(
                program, pins=["y := true"], solver=solver, num_reads=40
            )
            answers = {
                (s.value_of("a"), s.value_of("b"), s.value_of("c"))
                for s in result.valid_solutions
            }
            results[solver] = answers
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for solver, answers in results.items():
        assert (1, 1, 0) in answers, f"{solver} missed the satisfying assignment"
    benchmark.extra_info["answers"] = {
        k: sorted(map(str, v)) for k, v in results.items()
    }
    benchmark.extra_info["paper"] = (
        "generated H is minimizable by any annealer, quantum or classical"
    )


def test_backends_agree_on_ground_energy(benchmark, compiler):
    """All heuristics reach the exact solver's minimum energy."""
    program = compiler.compile(LISTING_5_CIRCSAT)
    logical, _ = program.logical.to_ising(apply_pins=False)

    def energies():
        from repro.solvers.exact import ExactSolver
        from repro.solvers.neal import SimulatedAnnealingSampler
        from repro.solvers.sqa import PathIntegralAnnealer
        from repro.solvers.tabu import TabuSampler

        truth = ExactSolver(max_variables=20).ground_states(logical).first.energy
        return {
            "exact": truth,
            "sa": SimulatedAnnealingSampler(seed=0)
            .sample(logical, num_reads=20, num_sweeps=500)
            .first.energy,
            "sqa": PathIntegralAnnealer(seed=0)
            .sample(logical, num_reads=6, num_sweeps=400)
            .first.energy,
            "tabu": TabuSampler(seed=0)
            .sample(logical, num_reads=6, max_iter=1500)
            .first.energy,
        }

    measured = benchmark.pedantic(energies, rounds=1, iterations=1)
    truth = measured["exact"]
    for solver, energy in measured.items():
        assert energy == pytest.approx(truth), solver
    benchmark.extra_info["ground_energy"] = truth
