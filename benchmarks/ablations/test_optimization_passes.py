"""Ablation: logic optimization and techmap on/off.

With "at most 2048 qubits for code plus data ... wasting qubits would be
unacceptable" (Section 4.1).  This ablation measures what the ABC-role
optimizer and the compound-cell techmap buy on the paper's workloads:
cell counts and logical variable counts with each pass disabled.
"""

from benchmarks.conftest import LISTING_5_CIRCSAT, LISTING_6_MULT, LISTING_7_AUSTRALIA


def _variables(compiler, source, **options):
    program = compiler.compile(source, **options)
    stats = program.statistics()
    return stats["num_cells"], stats["logical_variables"]


def test_optimizer_ablation(benchmark, compiler):
    def measure():
        rows = {}
        for name, source in (
            ("circsat", LISTING_5_CIRCSAT),
            ("mult", LISTING_6_MULT),
            ("australia", LISTING_7_AUSTRALIA),
        ):
            raw_cells, raw_vars = _variables(
                compiler, source, run_optimizer=False, run_techmap=False
            )
            opt_cells, opt_vars = _variables(
                compiler, source, run_techmap=False
            )
            full_cells, full_vars = _variables(compiler, source)
            rows[name] = {
                "unoptimized": (raw_cells, raw_vars),
                "optimized": (opt_cells, opt_vars),
                "optimized+techmap": (full_cells, full_vars),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, row in rows.items():
        # Optimization never grows the circuit, and the full pipeline
        # never uses more logical variables than the raw lowering.
        assert row["optimized"][0] <= row["unoptimized"][0], name
        assert row["optimized+techmap"][1] <= row["unoptimized"][1], name
    benchmark.extra_info["rows"] = {
        k: {s: list(v) for s, v in row.items()} for k, row in rows.items()
    }


def test_techmap_variable_savings_on_compound_logic(benchmark, compiler):
    """Logic shaped like AOI/OAI benefits most from compound cells."""
    source = """
    module aoi_ish (a, b, c, d, y);
        input a, b, c, d;
        output y;
        assign y = ~((a & b) | (c & d));
    endmodule
    """

    def measure():
        _, without = _variables(compiler, source, run_techmap=False)
        _, with_map = _variables(compiler, source)
        return without, with_map

    without, with_map = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert with_map <= without
    benchmark.extra_info["variables_without_techmap"] = without
    benchmark.extra_info["variables_with_techmap"] = with_map
