"""T2 -- Table 2: the AND gate's system of inequalities.

Regenerates Table 2 by solving the system with our LP-based synthesizer
(the paper used MiniZinc) and evaluating the resulting H on all eight
truth-table rows: valid rows must all equal k, invalid rows must exceed
it.  Also verifies the paper's printed example solution (k = -3 with
H = 2Y - A - B - 2YA - 2YB + AB).
"""

import itertools

import pytest

from repro.ising.model import IsingModel
from repro.ising.penalty import synthesize_penalty, truth_table_of

AND_ROWS = truth_table_of(lambda a, b: a and b, 2)

#: The example solution column printed in Table 2.
PAPER_EXAMPLE = IsingModel(
    {"Y": 2.0, "A": -1.0, "B": -1.0},
    {("Y", "A"): -2.0, ("Y", "B"): -2.0, ("A", "B"): 1.0},
)
PAPER_K = -3.0


def _synthesize():
    return synthesize_penalty(
        AND_ROWS, ["Y", "A", "B"], max_ancillas=0,
        h_range=(-2.0, 2.0), j_range=(-2.0, 2.0),
    )


def test_table2_system_solved_by_lp(benchmark):
    penalty = benchmark(_synthesize)
    model = penalty.model
    valid = set(AND_ROWS_SPINS)
    column = {}
    for spins in itertools.product((-1, 1), repeat=3):
        energy = model.energy(dict(zip(("Y", "A", "B"), spins)))
        column[spins] = energy
        if spins in valid:
            assert energy == pytest.approx(penalty.ground_energy)
        else:
            assert energy > penalty.ground_energy + 1e-9
    benchmark.extra_info["k"] = penalty.ground_energy
    benchmark.extra_info["gap"] = penalty.gap
    benchmark.extra_info["paper"] = "k = -3, example gap rows {1, 9, 1, 1}"


AND_ROWS_SPINS = [
    tuple(1 if b else -1 for b in row) for row in AND_ROWS
]


def test_table2_paper_example_column(benchmark):
    """The 'Example' column of Table 2, evaluated verbatim."""

    def evaluate():
        return {
            spins: PAPER_EXAMPLE.energy(dict(zip(("Y", "A", "B"), spins)))
            for spins in itertools.product((-1, 1), repeat=3)
        }

    column = benchmark(evaluate)
    # Table 2's Example column, in (Y, A, B) order:
    assert column[(-1, -1, -1)] == pytest.approx(PAPER_K)
    assert column[(-1, -1, 1)] == pytest.approx(PAPER_K)
    assert column[(-1, 1, -1)] == pytest.approx(PAPER_K)
    assert column[(-1, 1, 1)] == pytest.approx(1.0)
    assert column[(1, -1, -1)] == pytest.approx(9.0)
    assert column[(1, -1, 1)] == pytest.approx(1.0)
    assert column[(1, 1, -1)] == pytest.approx(1.0)
    assert column[(1, 1, 1)] == pytest.approx(PAPER_K)
    benchmark.extra_info["measured_column"] = {
        str(k): v for k, v in column.items()
    }
