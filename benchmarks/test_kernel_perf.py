"""Sweep-kernel performance: dense vs sparse on a C16-embedded problem.

The paper's methodology (Section 5.4) amortizes overhead over thousands
of reads, which only pays if each read is cheap.  This benchmark anneals
the Section 6 map-coloring Hamiltonian, minor-embedded onto a pristine
Chimera C16 (the 2000Q working graph, degree <= 6), at 1000 reads and
times the dense sweep kernel -- the pre-kernel-refactor cost model,
where every flip updates all n local-field columns -- against the sparse
CSR kernel that updates only the flipped qubit's neighbors.

Results are persisted to ``BENCH_kernels.json`` at the repo root so
future changes can regress against them; the two kernels' samples are
also asserted bit-identical at full scale (the exactness criterion).

Set ``REPRO_BENCH_SMOKE=1`` to run a scaled-down model (C4, 50 reads);
smoke runs still write the JSON and check exactness but skip the
speedup floor, so CI timing jitter can never gate a merge.

Reproduce the numbers with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_perf.py -s -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.mapcolor import unary_map_coloring_model
from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import embed_ising, find_embedding, source_graph_of
from repro.solvers import kernels
from repro.solvers.neal import SimulatedAnnealingSampler

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
# Smoke keeps the same logical problem but embeds into a C8 (a C4 is too
# small for the 28-variable coloring graph) with a fraction of the reads.
CELLS = 8 if SMOKE else 16
NUM_READS = 50 if SMOKE else 1000
NUM_SWEEPS = 8 if SMOKE else 32
REPEATS = 1 if SMOKE else 3
SPEEDUP_FLOOR = 5.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _embedded_mapcolor_model():
    """The Australia map-coloring Hamiltonian on Chimera qubits."""
    logical = unary_map_coloring_model()
    target = chimera_graph(CELLS)
    embedding = find_embedding(
        source_graph_of(logical), target, seed=0, tries=4
    )
    return logical, embed_ising(logical, embedding, target)


def _time_kernel(model, kernel):
    """Best-of-REPEATS wall time for a fixed-seed anneal on one kernel."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        sampler = SimulatedAnnealingSampler(seed=0)
        start = time.perf_counter()
        result = sampler.sample(
            model, num_reads=NUM_READS, num_sweeps=NUM_SWEEPS, kernel=kernel
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def test_sparse_kernel_speedup_on_embedded_mapcolor():
    logical, physical = _embedded_mapcolor_model()
    order, _, indptr, indices, _ = physical.to_csr()
    n = len(order)
    nnz = len(indices)

    dense_s, dense = _time_kernel(physical, kernels.DENSE)
    sparse_s, sparse = _time_kernel(physical, kernels.SPARSE)

    # Exactness at scale: the kernels must be sample-for-sample
    # interchangeable, not merely statistically equivalent.
    np.testing.assert_array_equal(dense.records, sparse.records)
    np.testing.assert_array_equal(dense.energies, sparse.energies)

    speedup = dense_s / sparse_s if sparse_s > 0 else float("inf")
    payload = {
        "benchmark": "kernel_perf",
        "smoke": SMOKE,
        "problem": {
            "name": "australia-map-coloring",
            "logical_variables": len(logical),
            "chimera_cells": CELLS,
            "physical_qubits": n,
            "csr_stored_entries": nnz,
            "density": nnz / float(n * n),
            "max_degree": int(np.max(np.diff(indptr))),
        },
        "num_reads": NUM_READS,
        "num_sweeps": NUM_SWEEPS,
        "repeats": REPEATS,
        "dense_s": dense_s,
        "sparse_s": sparse_s,
        "speedup": speedup,
        "auto_kernel": kernels.choose_kernel(n, nnz),
        "samples_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nkernel_perf: n={n} nnz={nnz} reads={NUM_READS} "
        f"dense={dense_s:.3f}s sparse={sparse_s:.3f}s speedup={speedup:.1f}x"
    )

    # The embedded problem must auto-select the sparse kernel.
    assert kernels.choose_kernel(n, nnz) == kernels.SPARSE
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"sparse kernel speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x acceptance floor (dense {dense_s:.3f}s, "
            f"sparse {sparse_s:.3f}s)"
        )
