"""Sweep-kernel performance: the three-tier lineup plus batching.

The paper's methodology (Section 5.4) amortizes overhead over thousands
of reads, which only pays if each read is cheap.  This benchmark anneals
the Section 6 map-coloring Hamiltonian, minor-embedded onto a pristine
Chimera C16 (the 2000Q working graph, degree <= 6), at 1000 reads and
times every runnable kernel tier:

* ``dense``  -- the pre-kernel-refactor cost model (every flip updates
  all n local-field columns);
* ``sparse`` -- the CSR neighbor-list kernel (flip cost O(deg));
* ``jit``    -- the numba fused sweep loop, when numba is installed
  (the JSON records ``null`` timings and ``numba_available: false``
  otherwise, so the committed trajectory shows which tiers ran).

A second benchmark times cross-problem batching: 8 small independent
problems annealed sequentially vs. packed into one
:class:`~repro.solvers.batch.BatchedSweepJob` invocation.

Results are persisted to ``BENCH_kernels.json`` at the repo root.  The
committed file doubles as a **regression baseline**: when it holds
full-scale numbers, the run compares its relative speedups against the
stored ones with a 20% tolerance band -- a regression beyond the band
fails the test, while improvements pass and auto-refresh the file (the
absolute wall times are machine-specific, so only ratios gate).  All
tiers' samples are also asserted bit-identical at full scale (the
exactness criterion).

Set ``REPRO_BENCH_SMOKE=1`` to run a scaled-down model (C8, 50 reads);
smoke runs still write the JSON and check exactness but skip every
timing gate, so CI jitter can never block a merge.

Reproduce the numbers with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_perf.py -s -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.mapcolor import unary_map_coloring_model
from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import embed_ising, find_embedding, source_graph_of
from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.batch import BatchedSweepJob
from repro.solvers.neal import SimulatedAnnealingSampler

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
# Smoke keeps the same logical problem but embeds into a C8 (a C4 is too
# small for the 28-variable coloring graph) with a fraction of the reads.
CELLS = 8 if SMOKE else 16
NUM_READS = 50 if SMOKE else 1000
NUM_SWEEPS = 8 if SMOKE else 32
REPEATS = 1 if SMOKE else 3
#: Acceptance floors on this machine's own ratios.
SPARSE_SPEEDUP_FLOOR = 5.0  # sparse vs dense
JIT_SPEEDUP_FLOOR = 3.0  # jit vs sparse, when numba runs
BATCH_GAIN_FLOOR = 2.0  # packed vs sequential dispatch
#: Regression band vs the committed baseline's ratios: a new ratio may
#: drop to 80% of the stored one before the gate trips.
REGRESSION_TOLERANCE = 0.20
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

BATCH_PROBLEMS = 8
BATCH_VARIABLES = 16 if SMOKE else 48
BATCH_READS = 10 if SMOKE else 25
BATCH_SWEEPS = 8 if SMOKE else 64


def _embedded_mapcolor_model():
    """The Australia map-coloring Hamiltonian on Chimera qubits."""
    logical = unary_map_coloring_model()
    target = chimera_graph(CELLS)
    embedding = find_embedding(
        source_graph_of(logical), target, seed=0, tries=4
    )
    return logical, embed_ising(logical, embedding, target)


def _time_kernel(model, kernel):
    """Best-of-REPEATS wall time for a fixed-seed anneal on one kernel."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        sampler = SimulatedAnnealingSampler(seed=0)
        start = time.perf_counter()
        result = sampler.sample(
            model, num_reads=NUM_READS, num_sweeps=NUM_SWEEPS, kernel=kernel
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _small_problems():
    """BATCH_PROBLEMS independent ring models, service-traffic sized."""
    problems = []
    for p in range(BATCH_PROBLEMS):
        rng = np.random.default_rng(100 + p)
        model = IsingModel()
        n = BATCH_VARIABLES
        for i in range(n):
            model.add_variable(i, float(rng.normal(0, 0.5)))
            model.add_interaction(
                i, (i + 1) % n, float(rng.choice([-1.0, 1.0]))
            )
        problems.append(model)
    return problems


def _load_baseline():
    """The committed baseline, when it can gate: full-scale, new schema."""
    if SMOKE or not RESULT_PATH.exists():
        return None
    try:
        baseline = json.loads(RESULT_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if baseline.get("smoke") or "tiers" not in baseline:
        return None
    return baseline


def _gate_ratio(name, new, old):
    """Fail on a regression beyond the band; improvements always pass."""
    if old is None or new is None:
        return
    floor = old * (1.0 - REGRESSION_TOLERANCE)
    assert new >= floor, (
        f"{name} regressed: {new:.2f}x vs committed baseline {old:.2f}x "
        f"(tolerance floor {floor:.2f}x) -- investigate before refreshing "
        f"BENCH_kernels.json"
    )


def test_kernel_tiers_speedup_on_embedded_mapcolor():
    logical, physical = _embedded_mapcolor_model()
    order, _, indptr, indices, _ = physical.to_csr()
    n = len(order)
    nnz = len(indices)
    numba_available = kernels.jit_available()

    timings = {}
    results = {}
    for tier in kernels.available_kernels():
        timings[tier], results[tier] = _time_kernel(physical, tier)

    # Exactness at scale: every runnable tier must be sample-for-sample
    # interchangeable, not merely statistically equivalent.
    reference = results[kernels.DENSE]
    for tier, result in results.items():
        np.testing.assert_array_equal(reference.records, result.records)
        np.testing.assert_array_equal(reference.energies, result.energies)

    sparse_speedup = (
        timings[kernels.DENSE] / timings[kernels.SPARSE]
        if timings[kernels.SPARSE] > 0
        else float("inf")
    )
    jit_speedup = None
    if numba_available and timings.get(kernels.JIT):
        jit_speedup = timings[kernels.SPARSE] / timings[kernels.JIT]

    # --- cross-problem batching ------------------------------------
    problems = _small_problems()
    sequential_start = time.perf_counter()
    for p, model in enumerate(problems):
        SimulatedAnnealingSampler(seed=100 + p).sample(
            model, num_reads=BATCH_READS, num_sweeps=BATCH_SWEEPS
        )
    sequential_s = time.perf_counter() - sequential_start
    job = BatchedSweepJob(seed=100)
    for model in problems:
        job.add(model, num_reads=BATCH_READS)
    batched_start = time.perf_counter()
    job.run(num_sweeps=BATCH_SWEEPS)
    batched_s = time.perf_counter() - batched_start
    batch_gain = sequential_s / batched_s if batched_s > 0 else float("inf")

    baseline = _load_baseline()
    payload = {
        "benchmark": "kernel_perf",
        "version": 2,
        "smoke": SMOKE,
        "numba_available": numba_available,
        "problem": {
            "name": "australia-map-coloring",
            "logical_variables": len(logical),
            "chimera_cells": CELLS,
            "physical_qubits": n,
            "csr_stored_entries": nnz,
            "density": nnz / float(n * n),
            "max_degree": int(np.max(np.diff(indptr))),
        },
        "num_reads": NUM_READS,
        "num_sweeps": NUM_SWEEPS,
        "repeats": REPEATS,
        "tiers": {
            kernels.DENSE: timings[kernels.DENSE],
            kernels.SPARSE: timings[kernels.SPARSE],
            kernels.JIT: timings.get(kernels.JIT),
        },
        "speedup_sparse_over_dense": sparse_speedup,
        "speedup_jit_over_sparse": jit_speedup,
        "auto_kernel": kernels.choose_kernel(n, nnz, num_reads=NUM_READS),
        "samples_identical": True,
        "batched": {
            "problems": BATCH_PROBLEMS,
            "variables": BATCH_VARIABLES,
            "num_reads": BATCH_READS,
            "num_sweeps": BATCH_SWEEPS,
            "sequential_s": sequential_s,
            "batched_s": batched_s,
            "throughput_gain": batch_gain,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    jit_txt = f"{timings[kernels.JIT]:.3f}s" if kernels.JIT in timings else "n/a"
    print(
        f"\nkernel_perf: n={n} nnz={nnz} reads={NUM_READS} "
        f"dense={timings[kernels.DENSE]:.3f}s "
        f"sparse={timings[kernels.SPARSE]:.3f}s jit={jit_txt} "
        f"sparse_speedup={sparse_speedup:.1f}x "
        f"batch_gain={batch_gain:.1f}x"
    )

    # The embedded problem must auto-select the fast sparse-adjacency
    # tier for wide read batches: jit with numba, sparse without.
    expected = kernels.JIT if numba_available else kernels.SPARSE
    assert kernels.choose_kernel(n, nnz, num_reads=NUM_READS) == expected
    if SMOKE:
        return

    # Absolute floors on this machine.
    assert sparse_speedup >= SPARSE_SPEEDUP_FLOOR, (
        f"sparse kernel speedup {sparse_speedup:.2f}x below the "
        f"{SPARSE_SPEEDUP_FLOOR}x acceptance floor"
    )
    if jit_speedup is not None:
        assert jit_speedup >= JIT_SPEEDUP_FLOOR, (
            f"jit kernel speedup {jit_speedup:.2f}x over sparse below "
            f"the {JIT_SPEEDUP_FLOOR}x acceptance floor"
        )
    assert batch_gain >= BATCH_GAIN_FLOOR, (
        f"batched throughput gain {batch_gain:.2f}x below the "
        f"{BATCH_GAIN_FLOOR}x acceptance floor "
        f"(sequential {sequential_s:.3f}s, batched {batched_s:.3f}s)"
    )

    # Trajectory gate vs the committed baseline (ratios only -- wall
    # times are machine-specific).  Improvements refreshed the file
    # above; regressions beyond the band fail here.
    if baseline is not None:
        _gate_ratio(
            "sparse-over-dense speedup",
            sparse_speedup,
            baseline.get("speedup_sparse_over_dense"),
        )
        _gate_ratio(
            "jit-over-sparse speedup",
            jit_speedup,
            baseline.get("speedup_jit_over_sparse"),
        )
        _gate_ratio(
            "batched throughput gain",
            batch_gain,
            (baseline.get("batched") or {}).get("throughput_gain"),
        )
