"""F3 -- Figure 3: the digital circuit and EDIF netlist for Figure 2(a).

The paper's Figure 3 shows the synthesized circuit and an excerpt of
"the 112-line EDIF netlist".  This benchmark synthesizes the same
module, emits EDIF, checks the netlist scale is the same order as the
paper's, and validates the structural features the excerpt shows (an
XOR cell interface with ports A, B, Y; input port `a` fanning out to
two gate inputs).
"""

import re

from repro.edif.reader import read_edif
from repro.edif.sexp import parse_sexp
from repro.synth.simulate import NetlistSimulator

from benchmarks.conftest import FIGURE_2A


def test_fig3_edif_generation(benchmark, compiler):
    program = benchmark(compiler.compile, FIGURE_2A)
    lines = len(program.edif_text.splitlines())
    # Paper: 112 lines (Yosys formatting); ours differs in pretty-printing
    # but must be the same order of magnitude.
    assert 50 <= lines <= 400
    benchmark.extra_info["paper_edif_lines"] = 112
    benchmark.extra_info["measured_edif_lines"] = lines
    benchmark.extra_info["cells"] = program.netlist.cell_histogram()


def test_fig3_excerpt_features(benchmark, compiler):
    program = compiler.compile(FIGURE_2A)

    def parse():
        return parse_sexp(program.edif_text), read_edif(program.edif_text)

    document, netlist = benchmark(parse)
    flat = re.sub(r"\s+", " ", program.edif_text)
    # First stanza of the excerpt: an XOR cell with inputs A, B, output Y.
    assert "(cell XOR" in flat
    assert "(port A (direction INPUT))" in flat
    assert "(port Y (direction OUTPUT))" in flat
    # Second stanza: input port a fans out to at least two gate inputs.
    a_net = netlist.ports["a"].bits[0]
    readers = [
        (cell.name, port)
        for cell in netlist.cells.values()
        for port, net in cell.connections.items()
        if net == a_net and port != cell.output_port
    ]
    assert len(readers) >= 2
    benchmark.extra_info["a_fanout"] = len(readers)


def test_fig3_netlist_is_faithful(benchmark, compiler):
    """The EDIF round-trips into a circuit equivalent to the source."""
    program = compiler.compile(FIGURE_2A)

    def roundtrip():
        return read_edif(program.edif_text)

    netlist = benchmark(roundtrip)
    sim = NetlistSimulator(netlist)
    reference = program.simulator()
    for s in (0, 1):
        for a in (0, 1):
            for b in (0, 1):
                inputs = {"s": s, "a": a, "b": b}
                assert sim.evaluate(inputs) == reference.evaluate(inputs)
