"""Fleet chaos: throughput and quality while machines die under load.

The sharded decomposer (:class:`repro.solvers.shard.ShardSolver`)
promises that losing machines degrades *throughput*, never *answers*:
orphaned shards are re-dispatched deterministically, so a fleet with
crashed members still completes 100% of its shards and still stitches
down to the planted optimum.  This benchmark drives a 4-machine
heterogeneous fleet (Chimera, Pegasus, and Zephyr chips side by side)
over a planted problem ~4x one chip's logical capacity while crashing
0, 1, and 2 machines at dispatch time, recording for each scenario the
reads/second, the stitched energy against the planted optimum, and the
fleet's re-dispatch/quarantine bookkeeping.

Gates (all scenarios):

* shard completion is exactly 1.0 -- a crash may orphan a shard but
  the round must re-place it on a surviving machine;
* the stitched energy lands within 2% of the planted optimum.

The crash seed comes from ``REPRO_FAULT_SEED`` (CI runs a matrix of
them); results are persisted to ``BENCH_fleet.json`` at the repo root.
Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the chips (C2/P2/Z2) and
the read count so CI finishes in seconds.

Reproduce the numbers with::

    PYTHONPATH=src python -m pytest benchmarks/test_fleet_chaos.py -s -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ising.model import IsingModel
from repro.solvers.shard import ShardSolver

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))
SIZE = 2 if SMOKE else 4
#: Four machines, three topology families: re-dispatch must cope with
#: per-class embeddings, not just identical spares.
FLEET = f"C{SIZE},C{SIZE},P{SIZE},Z{SIZE}"
NUM_READS = 2 if SMOKE else 4
NUM_READS_PER_SHARD = 8 if SMOKE else 25
CAPACITY_MULTIPLE = 4
#: Crash on the very first dispatch: the machine never serves a shard,
#: so every shard placed on it is orphaned and must be re-dispatched.
SCENARIOS = (
    ("lost_0", None),
    ("lost_1", "machine_crash=1:1"),
    ("lost_2", "machine_crash=1:1+2:1"),
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


def _planted_model(n: int, seed: int):
    """A planted-optimum instance shaped like a compiled netlist."""
    rng = np.random.default_rng(seed)
    planted = rng.choice([-1, 1], size=n)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -0.25 * float(planted[i]))
    for i in range(n - 1):
        model.add_interaction(i, i + 1, -float(planted[i] * planted[i + 1]))
    for _ in range(n // 2):
        i, j = rng.choice(n, size=2, replace=False)
        model.add_interaction(int(i), int(j), -float(planted[i] * planted[j]))
    ground = model.energy({i: int(planted[i]) for i in range(n)})
    return model, ground


def _solver(faults: str | None) -> ShardSolver:
    spec = faults if faults is None else f"{faults},seed={FAULT_SEED}"
    return ShardSolver(
        fleet=FLEET,
        seed=3,
        num_reads_per_shard=NUM_READS_PER_SHARD,
        faults=spec,
    )


def test_fleet_chaos_matrix():
    probe = _solver(None)
    capacity = probe.chip_qubits // 4  # the Section 6.1 chain-cost ratio
    n = capacity * CAPACITY_MULTIPLE
    model, ground = _planted_model(n, seed=n)

    rows = []
    for name, faults in SCENARIOS:
        start = time.perf_counter()
        result = _solver(faults).sample(
            model, num_reads=NUM_READS, max_workers=1
        )
        elapsed = time.perf_counter() - start
        info = result.info
        best = float(result.first.energy)
        fleet = info["fleet"]
        rows.append({
            "scenario": name,
            "faults": faults,
            "machines_lost": len(fleet["crashed"]),
            "reads": info["num_reads"],
            "seconds": round(elapsed, 4),
            "reads_per_second": round(info["num_reads"] / elapsed, 4),
            "shards_dispatched": info["shards_dispatched"],
            "shard_completion": info["shard_completion"],
            "redispatches": info["redispatches"],
            "quarantined": fleet["quarantined"],
            "crashed": fleet["crashed"],
            "stitched_energy": best,
            "planted_energy": float(ground),
            "energy_gap": round(best - ground, 6),
            "reached_ground": bool(abs(best - ground) < 1e-9),
        })
        print(
            f"{name}: crashed={fleet['crashed']} "
            f"redispatches={info['redispatches']} "
            f"completion={info['shard_completion']:.2f} "
            f"{rows[-1]['reads_per_second']:.2f} reads/s "
            f"gap={rows[-1]['energy_gap']:g}"
        )

    payload = {
        "benchmark": "fleet_chaos",
        "smoke": SMOKE,
        "fault_seed": FAULT_SEED,
        "fleet": {
            "spec": FLEET,
            "machines": len(probe.fleet),
            "chip_qubits": probe.chip_qubits,
            "chip_logical_capacity": capacity,
            "num_reads_per_shard": NUM_READS_PER_SHARD,
        },
        "problem": {
            "logical_variables": n,
            "capacity_multiple": CAPACITY_MULTIPLE,
        },
        "results": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")

    # Gate 1: losing machines must never lose shards.  Every dispatched
    # shard completes (on its original machine or a re-dispatch target).
    for row in rows:
        assert row["shard_completion"] == 1.0, row
    # Gate 2: the crash scenarios actually lost the machines they claim.
    assert [r["machines_lost"] for r in rows] == [0, 1, 2]
    assert rows[1]["redispatches"] >= 1
    assert rows[2]["redispatches"] >= 2
    # Gate 3: quality floor -- degraded fleets still stitch to (or
    # within a whisker of) the planted optimum.
    for row in rows:
        assert row["energy_gap"] <= abs(row["planted_energy"]) * 0.02, row
