"""L6 -- Listing 6: factoring by running a multiplier backward.

Reproduces the paper's Section 5.3 results: pinning
C[7:0] := 10001111 (143) returns exactly the factorizations
{A=11, B=13} and {A=13, B=11}; pinning A and B multiplies; pinning C and
A divides.
"""

import pytest

from benchmarks.conftest import LISTING_6_MULT


@pytest.fixture(scope="module")
def mult(compiler):
    return compiler.compile(LISTING_6_MULT)


def test_listing6_factor_143(benchmark, compiler, mult):
    def solve():
        return compiler.run(
            mult, pins=["C[7:0] := 10001111"], solver="sa", num_reads=800
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    factorizations = {
        (s.value_of("A"), s.value_of("B"))
        for s in result.valid_solutions
        if s.value_of("A") * s.value_of("B") == 143
    }
    assert factorizations == {(11, 13), (13, 11)}
    benchmark.extra_info["paper"] = "two unique solutions: {A=11,B=13}, {A=13,B=11}"
    benchmark.extra_info["measured"] = sorted(map(str, factorizations))


def test_listing6_multiply(benchmark, compiler, mult):
    def solve():
        return compiler.run(
            mult,
            pins=["A[3:0] := 1101", "B[3:0] := 1011"],
            solver="sa",
            num_reads=300,
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.valid_solutions[0].value_of("C") == 143
    benchmark.extra_info["C"] = result.valid_solutions[0].value_of("C")


def test_listing6_divide(benchmark, compiler, mult):
    def solve():
        return compiler.run(
            mult,
            pins=["C[7:0] := 10001111", "A[3:0] := 1101"],
            solver="sa",
            num_reads=500,
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert result.valid_solutions[0].value_of("B") == 11
    benchmark.extra_info["B"] = result.valid_solutions[0].value_of("B")


def test_listing6_other_semiprimes(benchmark, compiler, mult):
    """Generalization: factor several semiprimes with the same program."""
    semiprimes = {15: {(3, 5), (5, 3)}, 77: {(7, 11), (11, 7)},
                  143: {(11, 13), (13, 11)}}

    def solve_all():
        found = {}
        for value in semiprimes:
            result = compiler.run(
                mult, pins=[f"C[7:0] := {value}"], solver="sa", num_reads=600
            )
            found[value] = {
                (s.value_of("A"), s.value_of("B"))
                for s in result.valid_solutions
                if s.value_of("A") * s.value_of("B") == value
                and s.value_of("A") > 1 and s.value_of("B") > 1
            }
        return found

    found = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    for value, expected in semiprimes.items():
        assert found[value] & expected, f"no factorization of {value} found"
    benchmark.extra_info["factored"] = {
        str(k): sorted(map(str, v)) for k, v in found.items()
    }
