"""T1 -- Table 1: a two-ended net as a quadratic pseudo-Boolean function.

Regenerates the paper's Table 1: for H(sigma_A, sigma_Y) = -sigma_A
sigma_Y, the rows (-1,-1) and (+1,+1) are minima and the mixed rows are
not -- a net is an equality bias.  Also checks the fan-out form given in
Section 4.3.1 (one output driving four inputs).
"""

from repro.ising.cells import wire_hamiltonian
from repro.ising.model import IsingModel, SPIN_FALSE, SPIN_TRUE


def _table1_rows():
    model = wire_hamiltonian("A", "Y")
    rows = []
    for sa in (SPIN_FALSE, SPIN_TRUE):
        for sy in (SPIN_FALSE, SPIN_TRUE):
            energy = model.energy({"A": sa, "Y": sy})
            rows.append((sa, sy, energy))
    minimum = min(e for _, _, e in rows)
    return rows, minimum


def test_table1_two_ended_net(benchmark):
    rows, minimum = benchmark(_table1_rows)
    # Paper's Table 1: -1 on agreeing rows, +1 on disagreeing rows.
    table = {(sa, sy): e for sa, sy, e in rows}
    assert table[(-1, -1)] == table[(1, 1)] == -1.0
    assert table[(-1, 1)] == table[(1, -1)] == +1.0
    minima = [(sa, sy) for sa, sy, e in rows if e == minimum]
    assert minima == [(-1, -1), (1, 1)]
    benchmark.extra_info["paper"] = "minima exactly at sigma_A == sigma_Y"
    benchmark.extra_info["measured_table"] = {
        f"A={sa} Y={sy}": e for sa, sy, e in rows
    }


def test_table1_fanout_net(benchmark):
    """Section 4.3.1's fan-out: Y driving A, B, C, D."""

    def build_and_solve():
        model = IsingModel()
        for sink in "ABCD":
            model.update(wire_hamiltonian("Y", sink))
        return model.ground_states()

    _, states = benchmark(build_and_solve)
    assert len(states) == 2
    for state in states:
        assert len({state[v] for v in "YABCD"}) == 1  # all equal
    benchmark.extra_info["ground_states"] = len(states)
