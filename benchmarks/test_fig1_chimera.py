"""F1 -- Figure 1: the Chimera topology of a D-Wave 2000Q.

Regenerates the structure Figure 1 illustrates: the upper-left 2x2
array of unit cells (K_{4,4} internal couplers, vertical qubits linked
north-south, horizontal east-west) and the full C16 with its nominal
2048 qubits.
"""

import networkx as nx

from repro.hardware.chimera import ChimeraCoordinates, chimera_graph


def test_fig1_2x2_fragment(benchmark):
    graph = benchmark(chimera_graph, 2)
    coords = ChimeraCoordinates(2)
    assert graph.number_of_nodes() == 32
    # Internal: 4 cells x 16 K44 edges; external: 4 N-S + 4 E-W per
    # neighboring cell pair (2 pairs each direction).
    assert graph.number_of_edges() == 4 * 16 + 2 * 4 + 2 * 4
    # Figure 1's wiring pattern.
    assert graph.has_edge(coords.linear((0, 0, 0, 0)), coords.linear((1, 0, 0, 0)))
    assert graph.has_edge(coords.linear((0, 0, 1, 0)), coords.linear((0, 1, 1, 0)))
    assert nx.is_bipartite(graph)


def test_fig1_c16_full_machine(benchmark):
    graph = benchmark(chimera_graph, 16)
    assert graph.number_of_nodes() == 2048  # "N <= 2048" (Section 2)
    assert graph.number_of_edges() == 16 * 16 * 16 + 2 * 16 * 15 * 4
    degrees = [d for _, d in graph.degree()]
    assert max(degrees) == 6
    benchmark.extra_info["paper"] = "D-Wave 2000Q: C16, nominal 2048 qubits"
    benchmark.extra_info["measured_qubits"] = graph.number_of_nodes()
    benchmark.extra_info["measured_couplers"] = graph.number_of_edges()
