"""T3 -- Table 3: augmenting the XOR truth table with one ancilla.

The plain XOR system of inequalities is unsolvable; the paper reports
that adding a single ancilla column makes it solvable, and that 8 of the
16 possible augmentations work.  This benchmark enumerates all 16
single-ancilla augmentations of XOR's four valid rows and counts the
solvable ones.
"""

import itertools

from repro.ising.penalty import (
    PenaltySynthesisError,
    _solve_system,
    synthesize_penalty,
    truth_table_of,
)

XOR_ROWS = [
    tuple(1 if b else -1 for b in row)
    for row in truth_table_of(lambda a, b: a != b, 2)
]


def _count_solvable_augmentations():
    solvable = []
    for ancilla_column in itertools.product((-1, 1), repeat=4):
        augmented = [
            row + (anc,) for row, anc in zip(XOR_ROWS, ancilla_column)
        ]
        if len(set(augmented)) != 4:
            continue
        solution = _solve_system(
            augmented, 4, h_range=(-2.0, 2.0), j_range=(-1.0, 1.0),
            min_gap=1e-3,
        )
        if solution is not None:
            solvable.append(ancilla_column)
    return solvable


def test_table3_eight_workable_augmentations(benchmark):
    solvable = benchmark(_count_solvable_augmentations)
    # "Table 3 presents one of the eight possible ways to augment the
    # truth table for XOR."
    assert len(solvable) == 8
    # Table 3's specific augmentation: rows (Y,A,B) = FFF,TFT,TTF,FTT
    # get ancilla F,T,F,F.  In our row order (output first, inputs
    # counting up: FFF, TFT, TTF, FTT) that is (-1, +1, -1, -1).
    assert (-1, 1, -1, -1) in solvable
    benchmark.extra_info["paper"] = "8 of 16 augmentations solvable"
    benchmark.extra_info["measured_solvable"] = len(solvable)


def test_table3_constant_ancilla_never_works(benchmark):
    """A constant ancilla column adds no degrees of freedom."""

    def check():
        out = []
        for constant in (-1, 1):
            augmented = [row + (constant,) for row in XOR_ROWS]
            out.append(
                _solve_system(
                    augmented, 4, (-2.0, 2.0), (-1.0, 1.0), 1e-3
                )
            )
        return out

    results = benchmark(check)
    assert results == [None, None]


def test_table3_synthesizer_finds_augmentation_automatically(benchmark):
    penalty = benchmark(
        lambda: synthesize_penalty(
            truth_table_of(lambda a, b: a != b, 2),
            ["Y", "A", "B"],
            max_ancillas=1,
        )
    )
    assert len(penalty.ancillas) == 1
    assert len(penalty.augmentation) == 4
    benchmark.extra_info["chosen_augmentation"] = [
        anc[0] for anc in penalty.augmentation
    ]
    benchmark.extra_info["gap"] = penalty.gap
