"""Sharded-decomposition scaling: past the C16 ceiling on a fleet.

The paper's toolchain targets one 2000Q: a C16 working graph embeds at
most a few hundred logical variables (Section 6.1 measures ~3.7
physical qubits per logical variable), so larger netlists simply do not
fit.  This benchmark drives :class:`repro.solvers.shard.ShardSolver`
over planted-ground-state problems from well under one chip's capacity
to several times it, recording for each size the shard count, wall time
(serial vs pooled dispatch), and the stitched incumbent's energy
against the planted optimum.

Results are persisted to ``BENCH_decompose.json`` at the repo root.
Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the fleet's chips and the
problem ladder so CI finishes in seconds; smoke still asserts the
serial/pooled bit-identity and the quality floor on the largest
problem, but skips nothing timing-gated -- there is no speedup
assertion at all, because pool wins depend on core count.

Reproduce the numbers with::

    PYTHONPATH=src python -m pytest benchmarks/test_decompose_perf.py -s -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ising.model import IsingModel
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.shard import ShardSolver

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: The fleet's chip: smoke uses C2 (32 qubits) so the ladder tops out
#: quickly; the full run uses C4 chips against problems up to ~6x their
#: logical capacity.
CELLS = 2 if SMOKE else 4
MACHINES = 4
#: Problem sizes as multiples of one chip's logical-variable capacity.
CAPACITY_MULTIPLES = (0.5, 2, 6) if SMOKE else (0.5, 1, 2, 4, 6)
NUM_READS_PER_SHARD = 8 if SMOKE else 25
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_decompose.json"

C16_QUBITS = 2048
#: Section 6.1's measured physical-per-logical ratio on Chimera.
CHAIN_COST = 4


def _planted_model(n: int, seed: int):
    """A planted-optimum instance shaped like a compiled netlist."""
    rng = np.random.default_rng(seed)
    planted = rng.choice([-1, 1], size=n)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -0.25 * float(planted[i]))
    for i in range(n - 1):
        model.add_interaction(i, i + 1, -float(planted[i] * planted[i + 1]))
    for _ in range(n // 2):
        i, j = rng.choice(n, size=2, replace=False)
        model.add_interaction(int(i), int(j), -float(planted[i] * planted[j]))
    ground = model.energy({i: int(planted[i]) for i in range(n)})
    return model, ground


def _solver(seed: int = 3) -> ShardSolver:
    return ShardSolver(
        properties=MachineProperties(cells=CELLS, dropout_fraction=0.0),
        machines=MACHINES,
        seed=seed,
        num_reads_per_shard=NUM_READS_PER_SHARD,
    )


def test_sharded_decomposition_scaling():
    chip = DWaveSimulator(
        properties=MachineProperties(cells=CELLS, dropout_fraction=0.0)
    )
    capacity = chip.num_qubits // CHAIN_COST
    rows = []
    for multiple in CAPACITY_MULTIPLES:
        n = max(4, int(capacity * multiple))
        model, ground = _planted_model(n, seed=n)

        start = time.perf_counter()
        serial = _solver().sample(model, num_reads=1, max_workers=1)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        pooled = _solver().sample(model, num_reads=1, max_workers=MACHINES)
        pooled_s = time.perf_counter() - start

        # Exactness: dispatch order must never change the answer.
        np.testing.assert_array_equal(serial.records, pooled.records)

        best = float(serial.first.energy)
        rows.append({
            "logical_variables": n,
            "capacity_multiple": round(n / capacity, 2),
            "c16_capacity_multiple": round(
                n / (C16_QUBITS // CHAIN_COST), 4
            ),
            "shards": serial.info["shards"],
            "rounds": serial.info["rounds"],
            "serial_seconds": round(serial_s, 4),
            "pooled_seconds": round(pooled_s, 4),
            "stitched_energy": best,
            "planted_energy": float(ground),
            "energy_gap": round(best - ground, 6),
            "reached_ground": bool(abs(best - ground) < 1e-9),
        })
        print(
            f"n={n:4d} ({n / capacity:.1f}x chip) shards={rows[-1]['shards']:2d} "
            f"serial={serial_s:6.2f}s pooled={pooled_s:6.2f}s "
            f"gap={rows[-1]['energy_gap']:g}"
        )

    payload = {
        "benchmark": "decompose_perf",
        "smoke": SMOKE,
        "fleet": {
            "machines": MACHINES,
            "chimera_cells": CELLS,
            "chip_qubits": chip.num_qubits,
            "chip_logical_capacity": capacity,
            "chain_cost_model": CHAIN_COST,
            "c16_logical_capacity": C16_QUBITS // CHAIN_COST,
            "num_reads_per_shard": NUM_READS_PER_SHARD,
        },
        "results": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")

    # Quality floor: the over-capacity problems must stitch down to (or
    # within a whisker of) the planted optimum -- decomposition that
    # fans out but cannot land the ground state is not breaking any
    # ceiling, just burning machines.
    over_capacity = [r for r in rows if r["capacity_multiple"] >= 2]
    assert over_capacity, "ladder must exercise the over-capacity regime"
    assert any(r["reached_ground"] for r in over_capacity)
    largest = rows[-1]
    assert largest["energy_gap"] <= abs(largest["planted_energy"]) * 0.02
