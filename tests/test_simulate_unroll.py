"""Tests for the netlist simulator and sequential time unrolling."""

import pytest

from repro.synth.lowering import CircuitBuilder
from repro.synth.netlist import Netlist, NetlistError, PortDirection
from repro.synth.simulate import NetlistSimulator, SimulationError
from repro.synth.unroll import unroll


def _counter_netlist(width: int = 3) -> Netlist:
    """inc ? count+1 : count, registered; out = count."""
    nl = Netlist("counter")
    builder = CircuitBuilder(nl)
    clk, inc = nl.new_net(), nl.new_net()
    nl.add_port("clk", PortDirection.INPUT, [clk])
    nl.add_port("inc", PortDirection.INPUT, [inc])
    state = nl.new_nets(width)
    one = builder.constant(1, width)
    plus, _ = builder.add(state, one)
    next_state = builder.mux_vec(inc, state, plus)
    for q, d in zip(state, next_state):
        nl.add_cell("DFF_P", {"D": d, "Q": q})
    nl.add_port("out", PortDirection.OUTPUT, state)
    return nl


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
def test_missing_input_rejected():
    nl = _counter_netlist()
    sim = NetlistSimulator(nl)
    with pytest.raises(SimulationError):
        sim.evaluate({"clk": 0})


def test_unknown_input_rejected():
    nl = _counter_netlist()
    sim = NetlistSimulator(nl)
    with pytest.raises(SimulationError):
        sim.evaluate({"clk": 0, "inc": 0, "bogus": 1})


def test_oversized_value_rejected():
    nl = _counter_netlist()
    sim = NetlistSimulator(nl)
    with pytest.raises(SimulationError):
        sim.evaluate({"clk": 0, "inc": 2})


def test_negative_values_wrap():
    nl = Netlist("t")
    bits = nl.new_nets(4)
    nl.add_port("x", PortDirection.INPUT, bits)
    nl.add_port("y", PortDirection.OUTPUT, bits)
    sim = NetlistSimulator(nl)
    assert sim.evaluate({"x": -1})["y"] == 15


def test_sequential_step_semantics():
    sim = NetlistSimulator(_counter_netlist())
    outputs = sim.run([{"clk": 0, "inc": 1}] * 4 + [{"clk": 0, "inc": 0}] * 2)
    assert [o["out"] for o in outputs] == [0, 1, 2, 3, 4, 4]


def test_counter_wraps_at_width():
    sim = NetlistSimulator(_counter_netlist(width=2))
    outputs = sim.run([{"clk": 0, "inc": 1}] * 6)
    assert [o["out"] for o in outputs] == [0, 1, 2, 3, 0, 1]


def test_reset_restores_initial_state():
    sim = NetlistSimulator(_counter_netlist())
    sim.run([{"clk": 0, "inc": 1}] * 3)
    sim.reset()
    assert sim.step({"clk": 0, "inc": 0})["out"] == 0


def test_reset_to_ones():
    sim = NetlistSimulator(_counter_netlist())
    sim.reset(initial_state=True)
    assert sim.step({"clk": 0, "inc": 0})["out"] == 7


def test_evaluate_does_not_clock():
    sim = NetlistSimulator(_counter_netlist())
    for _ in range(3):
        assert sim.evaluate({"clk": 0, "inc": 1})["out"] == 0  # state frozen


# ----------------------------------------------------------------------
# Unrolling (Section 4.3.3)
# ----------------------------------------------------------------------
def test_unroll_matches_step_simulation():
    nl = _counter_netlist()
    steps = 5
    unrolled = unroll(nl, steps, initial_value=0)
    assert not unrolled.has_sequential()

    sequence = [1, 1, 0, 1, 1]
    reference = NetlistSimulator(nl).run(
        [{"clk": 0, "inc": inc} for inc in sequence]
    )
    flat_inputs = {f"inc@{t}": inc for t, inc in enumerate(sequence)}
    flat = NetlistSimulator(unrolled).evaluate(flat_inputs)
    for t in range(steps):
        assert flat[f"out@{t}"] == reference[t]["out"]


def test_unroll_exposes_initial_state_as_inputs():
    nl = _counter_netlist(width=2)
    unrolled = unroll(nl, 2, initial_value=None)
    init_ports = [p for p in unrolled.ports if p.endswith("@init")]
    assert len(init_ports) == 2  # one per flip-flop
    sim = NetlistSimulator(unrolled)
    inputs = {"inc@0": 0, "inc@1": 0}
    inputs.update({p: 1 for p in init_ports})
    assert sim.evaluate(inputs)["out@0"] == 3  # started from all-ones


def test_unroll_initial_value_one():
    unrolled = unroll(_counter_netlist(width=2), 1, initial_value=1)
    sim = NetlistSimulator(unrolled)
    assert sim.evaluate({"inc@0": 0})["out@0"] == 3


def test_unroll_drops_clock_port():
    unrolled = unroll(_counter_netlist(), 2, initial_value=0)
    assert not any(name.startswith("clk") for name in unrolled.ports)


def test_unroll_explicit_clock_names():
    nl = Netlist("t")
    tick = nl.new_net()
    d = nl.new_net()
    nl.add_port("tick", PortDirection.INPUT, [tick])
    nl.add_port("d", PortDirection.INPUT, [d])
    q = nl.new_net()
    nl.add_cell("DFF_P", {"D": d, "Q": q})
    nl.add_port("q", PortDirection.OUTPUT, [q])
    unrolled = unroll(nl, 2, clock_ports=["tick"], initial_value=0)
    assert "tick@0" not in unrolled.ports
    assert "d@0" in unrolled.ports


def test_unroll_cell_and_qubit_cost_grows_linearly():
    """The paper: unrolling 'exacts a heavy toll in qubit count'."""
    nl = _counter_netlist()
    sizes = [unroll(nl, t, initial_value=0).num_cells() for t in (1, 2, 4)]
    assert sizes[1] >= 2 * sizes[0] - 2
    assert sizes[2] >= 2 * sizes[1] - 2


def test_unroll_combinational_circuit_passthrough():
    nl = Netlist("comb")
    a = nl.new_net()
    y = nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_cell("NOT", {"A": a, "Y": y})
    nl.add_port("y", PortDirection.OUTPUT, [y])
    unrolled = unroll(nl, 1)
    sim = NetlistSimulator(unrolled)
    assert sim.evaluate({"a@0": 1})["y@0"] == 0


def test_unroll_validation():
    nl = _counter_netlist()
    with pytest.raises(NetlistError):
        unroll(nl, 0)
    with pytest.raises(NetlistError):
        unroll(nl, 2, clock_ports=["nope"])
    with pytest.raises(NetlistError):
        unroll(nl, 2, initial_value=7)
