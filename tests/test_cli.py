"""Tests for the verilog2qmasm command-line interface."""

import pytest

from repro.core.cli import main
from tests.conftest import FIGURE_2A, LISTING_5_CIRCSAT


@pytest.fixture()
def verilog_file(tmp_path):
    path = tmp_path / "circuit.v"
    path.write_text(FIGURE_2A)
    return str(path)


def test_emit_qmasm_default(verilog_file, capsys):
    assert main([verilog_file]) == 0
    out = capsys.readouterr().out
    assert "!include <stdcell>" in out
    assert "!use_macro" in out


def test_emit_edif(verilog_file, capsys):
    assert main([verilog_file, "--emit", "edif"]) == 0
    assert "(edif" in capsys.readouterr().out


def test_emit_stats(verilog_file, capsys):
    assert main([verilog_file, "--emit", "stats"]) == 0
    out = capsys.readouterr().out
    assert "logical variables" in out
    assert "Verilog lines     : 5" in out


def test_emit_qubo(verilog_file, capsys):
    assert main([verilog_file, "--emit", "qubo"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].startswith("c ")
    assert any(line.startswith("p qubo") for line in out.splitlines())
    from repro.qmasm.qubo_format import read_qubo_file

    model = read_qubo_file(out)
    assert len(model) > 5


def test_run_forward(verilog_file, capsys):
    code = main(
        [
            verilog_file, "--run", "--solver", "exact", "--seed", "0",
            "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Solution #1" in out
    assert "c[1] = 1" in out
    assert "c[0] = 0" in out


def test_run_backward(tmp_path, capsys):
    path = tmp_path / "circsat.v"
    path.write_text(LISTING_5_CIRCSAT)
    code = main(
        [str(path), "--run", "--solver", "exact", "--seed", "0",
         "--pin", "y := true"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "a = 1" in out and "b = 1" in out and "c = 0" in out


def test_roof_duality_flag(verilog_file, capsys):
    code = main(
        [
            verilog_file, "--run", "--solver", "exact", "-O",
            "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
        ]
    )
    assert code == 0


def test_bad_source_reports_error(tmp_path, capsys):
    path = tmp_path / "broken.v"
    path.write_text("module broken (x; endmodule")
    assert main([str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(FIGURE_2A))
    assert main(["-"]) == 0
    assert "!use_macro" in capsys.readouterr().out


def test_sequential_needs_steps(tmp_path, capsys):
    from tests.conftest import LISTING_3_COUNTER

    path = tmp_path / "count.v"
    path.write_text(LISTING_3_COUNTER)
    assert main([str(path)]) == 1
    assert main([str(path), "--steps", "2"]) == 0


# ----------------------------------------------------------------------
# Structured --pin diagnostics (exit 2, one-line errors)
# ----------------------------------------------------------------------
def test_malformed_pin_exits_2_with_diagnostic(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "exact", "--pin", "garbage"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: --pin 'garbage':")
    assert err.count("\n") == 1  # one line, not a traceback
    assert "Traceback" not in err


def test_unknown_pin_variable_exits_2_and_lists_known(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "exact",
         "--pin", "nosuch := true"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: --pin 'nosuch := true':")
    assert "unknown variable(s) nosuch" in err
    assert "known:" in err and "s" in err
    assert "Traceback" not in err


# ----------------------------------------------------------------------
# Certification and deadline exit codes
# ----------------------------------------------------------------------
def test_certify_clean_run_exits_0(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "sa", "--seed", "0",
         "--num-reads", "10", "--certify"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "certificate: certified" in out


def test_certify_flags_injected_corruption_exit_3(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "dwave", "--seed", "7",
         "--num-reads", "30",
         "--inject-fault", "read_corruption=40%,seed=3", "--certify"]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "certification failed" in captured.err
    assert "certificate: certified" in captured.out


def test_repair_restores_certification_exit_0(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "dwave", "--seed", "7",
         "--num-reads", "30",
         "--inject-fault", "read_corruption=40%,seed=3", "--repair"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "repaired in" in out


def test_deadline_exceeded_exits_4(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "sa", "--seed", "0",
         "--deadline", "1e-9"]
    )
    assert code == 4
    err = capsys.readouterr().err
    assert "deadline" in err and "stage" in err
    assert "Traceback" not in err


# ----------------------------------------------------------------------
# Topologies and sharded decomposition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology,size", [("pegasus", 2), ("zephyr", 1)])
def test_non_chimera_topology_end_to_end(verilog_file, capsys, topology, size):
    """Embed + anneal + certify on a non-Chimera family via --topology."""
    code = main(
        [
            verilog_file, "--run", "--solver", "dwave", "--seed", "0",
            "--topology", topology, "--topology-size", str(size),
            "--num-reads", "100", "--repair",
            "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Solution #1" in out
    assert "certificate:" in out


def test_unknown_topology_rejected(verilog_file, capsys):
    with pytest.raises(SystemExit):
        main([verilog_file, "--run", "--topology", "kagome"])


def test_shard_solver_end_to_end(verilog_file, capsys):
    """--solver shard decomposes across the --machines fleet, certified."""
    code = main(
        [
            verilog_file, "--run", "--solver", "shard", "--machines", "4",
            "--topology-size", "2", "--seed", "0", "--num-reads", "2",
            "--repair",
            "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Solution #1" in out
    assert "certificate:" in out


# ----------------------------------------------------------------------
# Fleet resilience flags
# ----------------------------------------------------------------------
def test_heterogeneous_fleet_end_to_end(verilog_file, capsys):
    """--fleet mixes machine classes; the shard solver still answers."""
    code = main(
        [
            verilog_file, "--run", "--solver", "shard",
            "--fleet", "C2,C2,P2,Z2", "--topology-size", "2",
            "--seed", "7", "--num-reads", "2", "--repair",
            "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Solution #1" in out


def test_bad_fleet_spec_reports_error(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "shard", "--fleet", "Q9"]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "error:" in err
    assert "Traceback" not in err


def test_resume_requires_checkpoint_dir(verilog_file, capsys):
    code = main(
        [verilog_file, "--run", "--solver", "shard", "--resume"]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "--checkpoint-dir" in err


def test_checkpoint_dir_round_trip(verilog_file, tmp_path, capsys):
    """A completed checkpointed run resumes instantly and identically."""
    argv = [
        verilog_file, "--run", "--solver", "shard", "--machines", "4",
        "--topology-size", "2", "--seed", "7", "--num-reads", "2",
        "--repair", "--checkpoint-dir", str(tmp_path),
        "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert list(tmp_path.iterdir()), "checkpoint files should exist"
    assert main(argv + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert "Solution #1" in second
    assert first.splitlines()[-3:] == second.splitlines()[-3:]
