"""Tests for netlist optimization and technology mapping (the ABC role)."""

import random

import pytest

from repro.synth.netlist import Netlist, PortDirection
from repro.synth.opt import optimize
from repro.synth.simulate import NetlistSimulator
from repro.synth.techmap import techmap


def _random_circuit(seed: int, num_inputs: int = 4, num_gates: int = 25):
    """A random DAG of gates over the basic cell set (no local folding:
    cells are added directly, bypassing the builder's peepholes)."""
    rng = random.Random(seed)
    nl = Netlist(f"rand{seed}")
    nets = []
    for i in range(num_inputs):
        net = nl.new_net()
        nl.add_port(f"i{i}", PortDirection.INPUT, [net])
        nets.append(net)
    const = nl.new_net()
    nl.add_cell(rng.choice(["GND", "VCC"]), {"Y": const})
    nets.append(const)
    for g in range(num_gates):
        kind = rng.choice(["NOT", "AND", "OR", "XOR", "NAND", "NOR", "XNOR", "MUX"])
        out = nl.new_net()
        if kind == "NOT":
            conns = {"A": rng.choice(nets), "Y": out}
        elif kind == "MUX":
            conns = {
                "S": rng.choice(nets),
                "A": rng.choice(nets),
                "B": rng.choice(nets),
                "Y": out,
            }
        else:
            conns = {"A": rng.choice(nets), "B": rng.choice(nets), "Y": out}
        nl.add_cell(kind, conns)
        nets.append(out)
    # Expose the last few nets as outputs.
    for i, net in enumerate(nets[-3:]):
        nl.add_port(f"o{i}", PortDirection.OUTPUT, [net])
    nl.validate()
    return nl


def _equivalent(before: Netlist, after: Netlist, num_inputs: int = 4) -> bool:
    sim_before = NetlistSimulator(before)
    sim_after = NetlistSimulator(after)
    for value in range(1 << num_inputs):
        inputs = {f"i{i}": (value >> i) & 1 for i in range(num_inputs)}
        if sim_before.evaluate(inputs) != sim_after.evaluate(inputs):
            return False
    return True


# ----------------------------------------------------------------------
# optimize(): behaviour preservation (differential testing)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_optimize_preserves_behaviour(seed):
    before = _random_circuit(seed)
    after = optimize(before)
    assert _equivalent(before, after)


@pytest.mark.parametrize("seed", range(12))
def test_optimize_never_grows_the_netlist(seed):
    before = _random_circuit(seed)
    after = optimize(before)
    assert after.num_cells() <= before.num_cells()


@pytest.mark.parametrize("seed", range(6))
def test_techmap_preserves_behaviour(seed):
    before = optimize(_random_circuit(seed, num_gates=40))
    after = techmap(before)
    assert _equivalent(before, after)


def test_optimize_does_not_mutate_input():
    nl = _random_circuit(0)
    cells_before = set(nl.cells)
    optimize(nl)
    assert set(nl.cells) == cells_before


# ----------------------------------------------------------------------
# Specific optimization patterns
# ----------------------------------------------------------------------
def _single_gate(kind, **const_inputs):
    """A netlist with one gate whose chosen inputs are constants."""
    nl = Netlist("t")
    conns = {}
    ports = {"NOT": ["A"], "MUX": ["S", "A", "B"]}.get(kind, ["A", "B"])
    for port in ports:
        net = nl.new_net()
        if port in const_inputs:
            nl.add_cell("VCC" if const_inputs[port] else "GND", {"Y": net})
        else:
            nl.add_port(port.lower(), PortDirection.INPUT, [net])
        conns[port] = net
    out = nl.new_net()
    conns["Y"] = out
    nl.add_cell(kind, conns, name="dut")
    nl.add_port("y", PortDirection.OUTPUT, [out])
    return nl


def test_and_with_false_becomes_constant():
    after = optimize(_single_gate("AND", B=False))
    assert after.num_cells("AND") == 0
    assert NetlistSimulator(after).evaluate({"a": 1})["y"] == 0


def test_and_with_true_becomes_wire():
    after = optimize(_single_gate("AND", B=True))
    assert after.num_cells("AND") == 0
    sim = NetlistSimulator(after)
    assert sim.evaluate({"a": 1})["y"] == 1
    assert sim.evaluate({"a": 0})["y"] == 0


def test_xor_with_true_becomes_inverter():
    after = optimize(_single_gate("XOR", B=True))
    assert after.num_cells("XOR") == 0
    assert after.num_cells("NOT") == 1
    assert NetlistSimulator(after).evaluate({"a": 0})["y"] == 1


def test_mux_with_constant_select_collapses():
    after = optimize(_single_gate("MUX", S=True))
    assert after.num_cells("MUX") == 0
    sim = NetlistSimulator(after)
    # S=1 selects B.
    assert sim.evaluate({"a": 0, "b": 1})["y"] == 1
    assert sim.evaluate({"a": 1, "b": 0})["y"] == 0


def test_double_inverter_removed():
    nl = Netlist("t")
    a = nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    n1, n2 = nl.new_net(), nl.new_net()
    nl.add_cell("NOT", {"A": a, "Y": n1})
    nl.add_cell("NOT", {"A": n1, "Y": n2})
    nl.add_port("y", PortDirection.OUTPUT, [n2])
    after = optimize(nl)
    assert after.num_cells("NOT") == 0
    assert NetlistSimulator(after).evaluate({"a": 1})["y"] == 1


def test_cse_merges_identical_gates():
    nl = Netlist("t")
    a, b = nl.new_net(), nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_port("b", PortDirection.INPUT, [b])
    y1, y2 = nl.new_net(), nl.new_net()
    nl.add_cell("AND", {"A": a, "B": b, "Y": y1})
    nl.add_cell("AND", {"A": b, "B": a, "Y": y2})  # commuted duplicate
    nl.add_port("o1", PortDirection.OUTPUT, [y1])
    nl.add_port("o2", PortDirection.OUTPUT, [y2])
    after = optimize(nl)
    assert after.num_cells("AND") == 1


def test_dead_cells_removed():
    nl = Netlist("t")
    a = nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    dead = nl.new_net()
    nl.add_cell("NOT", {"A": a, "Y": dead})  # drives nothing
    live = nl.new_net()
    nl.add_cell("NOT", {"A": a, "Y": live}, name="live")
    nl.add_port("y", PortDirection.OUTPUT, [live])
    after = optimize(nl)
    # CSE may merge the two identical inverters first; either way only
    # one gate must remain and it must drive the output.
    assert after.num_cells() == 1
    assert NetlistSimulator(after).evaluate({"a": 0})["y"] == 1


def test_dff_feeding_output_survives():
    nl = Netlist("t")
    d = nl.new_net()
    nl.add_port("d", PortDirection.INPUT, [d])
    q = nl.new_net()
    nl.add_cell("DFF_P", {"D": d, "Q": q})
    nl.add_port("q", PortDirection.OUTPUT, [q])
    after = optimize(nl)
    assert after.num_cells("DFF_P") == 1


# ----------------------------------------------------------------------
# Techmap patterns
# ----------------------------------------------------------------------
def _not_of(inner_kind, inner_conns_builder):
    nl = Netlist("t")
    inputs = {}
    for name in "abcd":
        net = nl.new_net()
        nl.add_port(name, PortDirection.INPUT, [net])
        inputs[name] = net
    mid = inner_conns_builder(nl, inputs)
    out = nl.new_net()
    nl.add_cell("NOT", {"A": mid, "Y": out})
    nl.add_port("y", PortDirection.OUTPUT, [out])
    return nl


def test_techmap_nand():
    def build(nl, i):
        mid = nl.new_net()
        nl.add_cell("AND", {"A": i["a"], "B": i["b"], "Y": mid})
        return mid

    after = techmap(_not_of("AND", build))
    assert after.cell_histogram() == {"NAND": 1}


def test_techmap_nor_xnor():
    def build_or(nl, i):
        mid = nl.new_net()
        nl.add_cell("OR", {"A": i["a"], "B": i["b"], "Y": mid})
        return mid

    assert techmap(_not_of("OR", build_or)).cell_histogram() == {"NOR": 1}

    def build_xor(nl, i):
        mid = nl.new_net()
        nl.add_cell("XOR", {"A": i["a"], "B": i["b"], "Y": mid})
        return mid

    assert techmap(_not_of("XOR", build_xor)).cell_histogram() == {"XNOR": 1}


def test_techmap_aoi3():
    def build(nl, i):
        and_out, or_out = nl.new_net(), nl.new_net()
        nl.add_cell("AND", {"A": i["a"], "B": i["b"], "Y": and_out})
        nl.add_cell("OR", {"A": and_out, "B": i["c"], "Y": or_out})
        return or_out

    after = techmap(_not_of("OR", build))
    assert after.cell_histogram() == {"AOI3": 1}


def test_techmap_oai4():
    def build(nl, i):
        or1, or2, and_out = nl.new_net(), nl.new_net(), nl.new_net()
        nl.add_cell("OR", {"A": i["a"], "B": i["b"], "Y": or1})
        nl.add_cell("OR", {"A": i["c"], "B": i["d"], "Y": or2})
        nl.add_cell("AND", {"A": or1, "B": or2, "Y": and_out})
        return and_out

    after = techmap(_not_of("AND", build))
    assert after.cell_histogram() == {"OAI4": 1}


def test_techmap_respects_fanout():
    """An AND feeding both a NOT and an output must not be absorbed."""
    nl = Netlist("t")
    a, b = nl.new_net(), nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_port("b", PortDirection.INPUT, [b])
    mid, out = nl.new_net(), nl.new_net()
    nl.add_cell("AND", {"A": a, "B": b, "Y": mid})
    nl.add_cell("NOT", {"A": mid, "Y": out})
    nl.add_port("anded", PortDirection.OUTPUT, [mid])  # second consumer
    nl.add_port("y", PortDirection.OUTPUT, [out])
    after = techmap(nl)
    assert after.num_cells("AND") == 1
    assert after.num_cells("NAND") == 0


def test_techmap_reduces_qubit_cost():
    """The point of compound cells (Section 4.3.2): fewer variables.

    NOT(OR(AND,AND)) as discrete gates = 4 cells; as AOI4 = 1 cell whose
    Hamiltonian has 7 variables vs 4 cells' 10+ with chains."""
    def build(nl, i):
        and1, and2, or_out = nl.new_net(), nl.new_net(), nl.new_net()
        nl.add_cell("AND", {"A": i["a"], "B": i["b"], "Y": and1})
        nl.add_cell("AND", {"A": i["c"], "B": i["d"], "Y": and2})
        nl.add_cell("OR", {"A": and1, "B": and2, "Y": or_out})
        return or_out

    before = _not_of("OR", build)
    after = techmap(before)
    assert after.num_cells() < before.num_cells()
    sim_before, sim_after = NetlistSimulator(before), NetlistSimulator(after)
    for value in range(16):
        inputs = {name: (value >> i) & 1 for i, name in enumerate("abcd")}
        assert sim_before.evaluate(inputs) == sim_after.evaluate(inputs)
