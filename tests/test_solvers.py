"""Tests for the classical solvers: exact, SA, tabu, qbsolv."""

import random

import numpy as np
import pytest

from repro.ising.cells import cell_hamiltonian
from repro.ising.model import IsingModel
from repro.solvers.exact import ExactSolver
from repro.solvers.neal import SimulatedAnnealingSampler, default_beta_range
from repro.solvers.qbsolv import QBSolv
from repro.solvers.tabu import TabuSampler


def _random_model(seed: int, n: int, density: float = 0.5) -> IsingModel:
    rng = random.Random(seed)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, rng.uniform(-1, 1))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                model.add_interaction(i, j, rng.uniform(-1, 1))
    return model


# ----------------------------------------------------------------------
# ExactSolver
# ----------------------------------------------------------------------
def test_exact_enumerates_everything(triangle_model):
    ss = ExactSolver().sample(triangle_model)
    assert len(ss) == 8
    assert ss.first.energy == pytest.approx(-1.0)


def test_exact_ground_states_match_model(triangle_model):
    ground = ExactSolver().ground_states(triangle_model)
    energy, states = triangle_model.ground_states()
    assert len(ground) == len(states)
    assert ground.first.energy == pytest.approx(energy)


def test_exact_num_lowest_truncates(triangle_model):
    ss = ExactSolver().sample(triangle_model, num_lowest=3)
    assert len(ss) == 3


def test_exact_rejects_large_problems():
    model = IsingModel({i: 1.0 for i in range(30)})
    with pytest.raises(ValueError):
        ExactSolver().sample(model)


def test_exact_empty_model():
    assert len(ExactSolver().sample(IsingModel())) == 0


# ----------------------------------------------------------------------
# Simulated annealing
# ----------------------------------------------------------------------
def test_sa_finds_gate_ground_states():
    model = cell_hamiltonian("XOR")
    expected, _ = model.ground_states()
    ss = SimulatedAnnealingSampler(seed=0).sample(model, num_reads=20, num_sweeps=200)
    assert ss.first.energy == pytest.approx(expected)


def test_sa_energies_are_model_energies():
    model = _random_model(1, 8)
    ss = SimulatedAnnealingSampler(seed=1).sample(model, num_reads=5, num_sweeps=50)
    for sample in ss:
        assert model.energy(sample.assignment) == pytest.approx(sample.energy)


def test_sa_seed_reproducibility():
    model = _random_model(2, 10)
    a = SimulatedAnnealingSampler(seed=9).sample(model, num_reads=7, num_sweeps=60)
    b = SimulatedAnnealingSampler(seed=9).sample(model, num_reads=7, num_sweeps=60)
    assert np.array_equal(a.records, b.records)


def test_sa_matches_exact_on_random_models():
    exact = ExactSolver()
    sa = SimulatedAnnealingSampler(seed=3)
    for seed in range(5):
        model = _random_model(seed, 10)
        truth = exact.ground_states(model).first.energy
        found = sa.sample(model, num_reads=20, num_sweeps=500).first.energy
        assert found == pytest.approx(truth, abs=1e-9)


def test_sa_initial_states_respected():
    model = IsingModel({"a": -1.0})
    init = np.array([[1]], dtype=np.int8)
    # At effectively infinite beta from the start, a ground-state
    # initial condition never moves.
    ss = SimulatedAnnealingSampler(seed=0).sample(
        model, num_reads=1, num_sweeps=10, beta_range=(50.0, 100.0),
        initial_states=init,
    )
    assert ss.first.assignment["a"] == 1


def test_sa_initial_state_shape_validated():
    model = IsingModel({"a": -1.0, "b": 1.0})
    with pytest.raises(ValueError):
        SimulatedAnnealingSampler(seed=0).sample(
            model, num_reads=2, initial_states=np.ones((1, 2), dtype=np.int8)
        )


def test_sa_parameter_validation(triangle_model):
    sampler = SimulatedAnnealingSampler(seed=0)
    with pytest.raises(ValueError):
        sampler.sample(triangle_model, num_reads=0)
    with pytest.raises(ValueError):
        sampler.sample(triangle_model, beta_range=(2.0, 1.0))
    with pytest.raises(ValueError):
        sampler.sample(triangle_model, beta_range=(-1.0, 1.0))


def test_sa_empty_model():
    assert len(SimulatedAnnealingSampler(seed=0).sample(IsingModel())) == 0


def test_default_beta_range_is_ordered():
    model = _random_model(4, 6)
    hot, cold = default_beta_range(model)
    assert 0 < hot < cold


def test_sa_info_fields(triangle_model):
    ss = SimulatedAnnealingSampler(seed=0).sample(
        triangle_model, num_reads=3, num_sweeps=10
    )
    assert ss.info["num_sweeps"] == 10
    assert "sampling_time_s" in ss.info
    assert ss.info["solver"] == "simulated-annealing"


# ----------------------------------------------------------------------
# Tabu
# ----------------------------------------------------------------------
def test_tabu_matches_exact_on_small_models():
    exact = ExactSolver()
    tabu = TabuSampler(seed=5)
    for seed in range(4):
        model = _random_model(seed + 10, 9)
        truth = exact.ground_states(model).first.energy
        found = tabu.sample(model, num_reads=4, max_iter=800).first.energy
        assert found == pytest.approx(truth, abs=1e-9)


def test_tabu_empty_model():
    assert len(TabuSampler(seed=0).sample(IsingModel())) == 0


def test_tabu_info(triangle_model):
    ss = TabuSampler(seed=0).sample(triangle_model, num_reads=2, max_iter=50)
    assert ss.info["solver"] == "tabu"
    assert ss.first.energy == pytest.approx(-1.0)


# ----------------------------------------------------------------------
# qbsolv decomposition
# ----------------------------------------------------------------------
def test_qbsolv_small_problem_delegates():
    model = _random_model(20, 10)
    truth = ExactSolver().ground_states(model).first.energy
    found = QBSolv(subproblem_size=48, seed=1).sample(model).first.energy
    assert found == pytest.approx(truth, abs=1e-9)


def test_qbsolv_decomposes_large_problems():
    """A 60-variable problem with 20-variable subproblems still reaches
    a competitive energy (within a few percent of long-run SA)."""
    model = _random_model(21, 60, density=0.15)
    qb = QBSolv(subproblem_size=20, seed=2).sample(model, num_repeats=12)
    sa = SimulatedAnnealingSampler(seed=2).sample(
        model, num_reads=30, num_sweeps=2000
    )
    assert qb.first.energy <= sa.first.energy * 0.9 + 1e-9 or (
        qb.first.energy <= sa.first.energy + abs(sa.first.energy) * 0.05
    )


def test_qbsolv_clamped_subproblem_energy_identity():
    """Clamping must preserve energies: E_sub(region) == E_full(joined)."""
    model = _random_model(22, 12)
    qb = QBSolv(subproblem_size=5, seed=3)
    rng = random.Random(0)
    assignment = {v: rng.choice([-1, 1]) for v in model.variables}
    region = list(model.variables)[:5]
    sub = qb._clamped_subproblem(model, assignment, region)
    for _ in range(10):
        candidate = dict(assignment)
        for v in region:
            candidate[v] = rng.choice([-1, 1])
        sub_sample = {v: candidate[v] for v in region}
        assert sub.energy(sub_sample) == pytest.approx(model.energy(candidate))


def test_qbsolv_chained_ferromagnet():
    # A 70-spin ferromagnetic chain (ground energy -69): decomposition
    # must align the chain to at most one residual domain wall, even
    # though every subproblem sees only 16 of the 70 spins.
    model = IsingModel()
    for i in range(69):
        model.add_interaction(i, i + 1, -1.0)
    result = QBSolv(subproblem_size=16, seed=4).sample(model, num_repeats=30)
    assert result.first.energy <= -67.0
