"""Tests for sharded decomposition across a simulated machine fleet.

The acceptance story: a logical problem several times larger than any
single chip's capacity solves to its known ground state by dispatching
chip-sized shards across >= 4 simulated machines, bit-identically
whether the dispatch runs serially or in a process pool.
"""

import numpy as np
import pytest

from repro.core import trace
from repro.core.deadline import Deadline
from repro.ising.model import IsingModel
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.shard import ShardSolver

SMALL_CHIP = MachineProperties(cells=2, dropout_fraction=0.0)


def _planted_model(n: int, seed: int = 5):
    """A planted-ground-state netlist-like model (fields + couplings).

    Compiled netlists always carry linear biases (pins, gate
    asymmetries), so the planted instance does too; the construction
    makes the planted assignment the unique ground state with energy
    computable exactly.
    """
    rng = np.random.default_rng(seed)
    planted = rng.choice([-1, 1], size=n)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -0.25 * float(planted[i]))
    for i in range(n - 1):
        model.add_interaction(i, i + 1, -float(planted[i] * planted[i + 1]))
    for _ in range(n // 2):
        i, j = rng.choice(n, size=2, replace=False)
        model.add_interaction(int(i), int(j), -float(planted[i] * planted[j]))
    ground = model.energy({i: int(planted[i]) for i in range(n)})
    return model, ground


def _solver(**overrides) -> ShardSolver:
    kwargs = dict(
        properties=SMALL_CHIP, machines=4, seed=3, num_reads_per_shard=10
    )
    kwargs.update(overrides)
    return ShardSolver(**kwargs)


def _events(tracer, name):
    """All instant events named ``name``, as attribute dicts.

    Events fired inside an open span land on ``span.events``; with no
    open span the tracer records them as zero-length root spans.
    """
    out = []
    for span in tracer.walk():
        if span.name == name:
            out.append(span.attributes)
        for entry in span.events:
            if entry["name"] == name:
                out.append(entry.get("attributes", {}))
    return out


# ----------------------------------------------------------------------
# The acceptance criterion
# ----------------------------------------------------------------------
def test_breaks_the_single_chip_ceiling():
    """>= 5x one chip's logical capacity, >= 4 machines, ground state."""
    chip = DWaveSimulator(properties=SMALL_CHIP)
    capacity = chip.num_qubits // 4  # the Section 6.1 chain-cost ratio
    n = capacity * 6
    model, ground = _planted_model(n)

    solver = _solver()
    assert solver.machines >= 4
    result = solver.sample(model, num_reads=1, max_workers=1)

    assert len(model.variables) >= 5 * capacity
    assert result.info["shards"] >= 4
    assert result.first.energy == pytest.approx(ground)


def test_pooled_dispatch_is_bit_identical_to_serial():
    model, _ = _planted_model(48)
    serial = _solver().sample(model, num_reads=2, max_workers=1)
    pooled = _solver().sample(model, num_reads=2, max_workers=4)
    assert np.array_equal(serial.records, pooled.records)
    assert np.array_equal(serial.energies, pooled.energies)


def test_fixed_seed_is_reproducible():
    model, _ = _planted_model(40)
    a = _solver(seed=9).sample(model, max_workers=1)
    b = _solver(seed=9).sample(model, max_workers=1)
    assert np.array_equal(a.records, b.records)


# ----------------------------------------------------------------------
# Mechanics
# ----------------------------------------------------------------------
def test_partition_covers_all_variables_within_shard_size():
    model, _ = _planted_model(50)
    solver = _solver(shard_size=7)
    order = list(model.variables)
    regions = solver._partition(model, order)
    flat = [v for region in regions for v in region]
    assert sorted(flat) == sorted(order)
    assert all(len(region) <= 7 for region in regions)
    # The staggered partition shifts the seams but still covers.
    staggered = solver._partition(model, order, offset=3)
    assert sorted(v for r in staggered for v in r) == sorted(order)
    assert len(staggered[0]) <= 3


def test_small_model_still_solves():
    model, ground = _planted_model(6)
    result = _solver().sample(model)
    assert result.first.energy == pytest.approx(ground)


def test_empty_model_returns_empty_sampleset():
    assert len(_solver().sample(IsingModel())) == 0


def test_info_reports_fleet_shape():
    model, _ = _planted_model(48)
    result = _solver().sample(model, max_workers=1)
    info = result.info
    assert info["solver"] == "shard"
    assert info["machines"] == 4
    assert info["topology"] == "chimera"
    assert info["shards"] * info["shard_size"] >= 48
    assert info["unembeddable_shards"] == 0
    assert len(info["rounds"]) == info["num_reads"] == 1


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        ShardSolver(properties=SMALL_CHIP, machines=0)
    with pytest.raises(ValueError):
        _solver().sample(_planted_model(8)[0], num_reads=0)


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------
def test_expired_deadline_stops_early_and_flags_the_result():
    model, _ = _planted_model(48)
    result = _solver().sample(model, deadline=Deadline(1e-9))
    assert result.info.get("deadline_interrupted") is True


def test_generous_deadline_changes_nothing():
    model, _ = _planted_model(40)
    free = _solver().sample(model, max_workers=1)
    timed = _solver().sample(model, max_workers=1, deadline=Deadline(3600))
    assert np.array_equal(free.records, timed.records)


def test_deadline_mid_read_keeps_partial_results_without_rng_drift(monkeypatch):
    """Expiry partway through a multi-read run: the completed reads
    survive bit-identically (the deadline interrupts work, it must not
    perturb the RNG stream), the in-flight read is returned as a
    partial row, and the result is flagged.
    """
    model, _ = _planted_model(48)
    free = _solver().sample(model, num_reads=3, max_workers=1)
    assert len(free) == 3

    # Count the shard jobs read 1 dispatches so a fake clock can expire
    # the deadline during read 2's first round.
    probe = _solver()
    order = list(model.variables)
    partitions = [
        probe._partition(model, order, offset=0),
        probe._partition(model, order, offset=max(1, probe.shard_size // 2)),
    ]
    read1_jobs = sum(
        len(partitions[(r - 1) % len(partitions)])
        for r in range(1, free.info["rounds"][0] + 1)
    )

    import repro.solvers.shard as shard_mod
    clock = {"t": 0.0}
    real = shard_mod._solve_shard
    calls = {"n": 0}

    def ticking(job):
        calls["n"] += 1
        if calls["n"] == read1_jobs + 1:
            clock["t"] = 100.0
        return real(job)

    monkeypatch.setattr(shard_mod, "_solve_shard", ticking)
    deadline = Deadline(10.0, clock=lambda: clock["t"])
    timed = _solver().sample(
        model, num_reads=3, max_workers=1, deadline=deadline
    )

    assert timed.info.get("deadline_interrupted") is True
    assert timed.info["num_reads"] == len(timed.records) == 2
    assert np.array_equal(timed.records[0], free.records[0])
    assert timed.info["rounds"][0] == free.info["rounds"][0]
    # The interrupted read stopped early: it ran at most one round.
    assert timed.info["rounds"][1] <= free.info["rounds"][1]


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_shard_spans_and_per_machine_metrics():
    model, _ = _planted_model(40)
    with trace.capture() as (tracer, metrics):
        result = _solver().sample(model, max_workers=1)
    names = set(tracer.span_names())
    assert "shard.solve" in names
    assert "solver.shard.sample" in names
    # Per-machine attribution: every fleet machine that ran a shard has
    # its own sample record and counter.
    machine_spans = {n for n in names if n.startswith("machine.")}
    assert machine_spans, names
    for span_name in machine_spans:
        index = int(span_name.split(".")[1])
        assert 0 <= index < 4
        assert metrics.value(f"machine.{index}.samples") >= 1
    assert metrics.value("shard.rounds") == sum(result.info["rounds"])
    assert metrics.value("shard.jobs") >= result.info["shards"]
    assert metrics.value("shard.improvements") >= 1


def test_unembeddable_shard_falls_back_to_tabu_with_event():
    """A region no machine class can embed (K12 on a C2 chip) runs on
    the classical tabu fallback, emits ``shard.fallback`` with
    ``reason="unembeddable"``, and still reaches the ground state.
    """
    n = 12
    planted = [1 if i % 2 else -1 for i in range(n)]
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -0.25 * planted[i])
    for i in range(n):
        for j in range(i + 1, n):
            model.add_interaction(i, j, -float(planted[i] * planted[j]))
    ground = model.energy({i: planted[i] for i in range(n)})

    with trace.capture() as (tracer, metrics):
        result = _solver(shard_size=12, num_reads_per_shard=5).sample(
            model, num_reads=1, max_workers=1
        )

    assert result.info["unembeddable_shards"] == 1
    assert result.info["shard_fallbacks"] >= 1
    assert result.first.energy == pytest.approx(ground)
    fallbacks = _events(tracer, "shard.fallback")
    assert fallbacks
    assert all(e["reason"] == "unembeddable" for e in fallbacks)
    assert metrics.value("shard.fallbacks") == len(fallbacks)
