"""Tests for the Chimera hardware graph (Section 2, Figure 1)."""

import networkx as nx
import pytest

from repro.hardware.chimera import (
    ChimeraCoordinates,
    DWAVE_2000Q_CELLS,
    chimera_graph,
    dropout,
    is_chimera_edge,
    odd_cycles_absent,
)


def test_c16_is_the_2000q():
    graph = chimera_graph(DWAVE_2000Q_CELLS)
    assert graph.number_of_nodes() == 2048  # "a nominal 2048 qubits"
    # Edges: 16 per cell internally (K44) + inter-cell links.
    expected_edges = 16 * 16 * 16 + 2 * (16 * 15 * 4)
    assert graph.number_of_edges() == expected_edges


def test_unit_cell_is_complete_bipartite():
    graph = chimera_graph(2)
    coords = ChimeraCoordinates(2)
    cell = coords.unit_cell(0, 0)
    assert len(cell) == 8
    subgraph = graph.subgraph(cell)
    assert subgraph.number_of_edges() == 16  # K_{4,4}
    # Within a partition there are no edges.
    vertical = cell[:4]
    assert graph.subgraph(vertical).number_of_edges() == 0


def test_figure1_fragment_connectivity():
    """Figure 1: vertical qubits couple north-south, horizontal east-west."""
    graph = chimera_graph(2)
    coords = ChimeraCoordinates(2)
    # Vertical (u=0) qubit in cell (0,0) couples to same k in cell (1,0).
    assert graph.has_edge(coords.linear((0, 0, 0, 2)), coords.linear((1, 0, 0, 2)))
    # Horizontal (u=1) qubit couples east to cell (0,1).
    assert graph.has_edge(coords.linear((0, 0, 1, 3)), coords.linear((0, 1, 1, 3)))
    # But not the other orientation.
    assert not graph.has_edge(coords.linear((0, 0, 1, 3)), coords.linear((1, 0, 1, 3)))
    assert not graph.has_edge(coords.linear((0, 0, 0, 2)), coords.linear((0, 1, 0, 2)))


def test_degree_bounds():
    graph = chimera_graph(4)
    degrees = [d for _, d in graph.degree()]
    assert max(degrees) == 6  # 4 internal + 2 external
    assert min(degrees) == 5  # boundary qubits lose one external link


def test_no_odd_cycles():
    """Section 4.4: Chimera contains no odd-length cycles (bipartite),
    which is why most Table 5 cells cannot embed directly."""
    assert odd_cycles_absent(chimera_graph(3))


def test_coordinate_linear_roundtrip():
    coords = ChimeraCoordinates(4)
    for index in range(4 * 4 * 8):
        assert coords.linear(coords.coordinate(index)) == index


def test_coordinate_validation():
    coords = ChimeraCoordinates(2)
    with pytest.raises(ValueError):
        coords.linear((2, 0, 0, 0))
    with pytest.raises(ValueError):
        coords.linear((0, 0, 2, 0))
    with pytest.raises(ValueError):
        coords.coordinate(999)


def test_node_attributes_store_coordinates():
    graph = chimera_graph(2)
    coords = ChimeraCoordinates(2)
    for node, data in graph.nodes(data=True):
        assert coords.linear(data["chimera_coordinate"]) == node


def test_rectangular_chimera():
    graph = chimera_graph(2, 3)
    assert graph.number_of_nodes() == 2 * 3 * 8


def test_chimera_is_connected():
    assert nx.is_connected(chimera_graph(4))


# ----------------------------------------------------------------------
# Dropout
# ----------------------------------------------------------------------
def test_dropout_fraction():
    graph = chimera_graph(4)
    working = dropout(graph, fraction=0.1, seed=0)
    assert working.number_of_nodes() == round(0.9 * graph.number_of_nodes())


def test_dropout_exact_count():
    graph = chimera_graph(2)
    working = dropout(graph, num_qubits=3, seed=1)
    assert working.number_of_nodes() == graph.number_of_nodes() - 3


def test_dropout_is_reproducible():
    graph = chimera_graph(3)
    a = dropout(graph, fraction=0.05, seed=7)
    b = dropout(graph, fraction=0.05, seed=7)
    assert set(a.nodes()) == set(b.nodes())


def test_dropout_does_not_mutate_original():
    graph = chimera_graph(2)
    before = graph.number_of_nodes()
    dropout(graph, fraction=0.5, seed=0)
    assert graph.number_of_nodes() == before


def test_dropout_validation():
    graph = chimera_graph(1)
    with pytest.raises(ValueError):
        dropout(graph, num_qubits=9)


def test_is_chimera_edge():
    graph = chimera_graph(1)
    assert is_chimera_edge(graph, 0, 4)
    assert not is_chimera_edge(graph, 0, 1)
