"""Tests for simulated quantum annealing and steepest descent."""

import random

import numpy as np
import pytest

from repro.ising.cells import cell_hamiltonian
from repro.ising.model import IsingModel
from repro.solvers.exact import ExactSolver
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.sqa import PathIntegralAnnealer


def _random_model(seed: int, n: int) -> IsingModel:
    rng = random.Random(seed)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, rng.uniform(-1, 1))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.4:
                model.add_interaction(i, j, rng.uniform(-1, 1))
    return model


# ----------------------------------------------------------------------
# Path-integral simulated quantum annealing
# ----------------------------------------------------------------------
def test_sqa_solves_gate_hamiltonians():
    sqa = PathIntegralAnnealer(seed=0)
    exact = ExactSolver()
    for cell in ("AND", "XOR", "MUX"):
        model = cell_hamiltonian(cell)
        truth = exact.ground_states(model).first.energy
        found = sqa.sample(model, num_reads=4, num_sweeps=300).first.energy
        assert found == pytest.approx(truth)


def test_sqa_matches_exact_on_random_models():
    sqa = PathIntegralAnnealer(seed=1)
    exact = ExactSolver()
    hits = 0
    for seed in range(4):
        model = _random_model(seed, 10)
        truth = exact.ground_states(model).first.energy
        found = sqa.sample(model, num_reads=6, num_sweeps=400).first.energy
        hits += found == pytest.approx(truth)
    assert hits >= 3  # stochastic, but should almost always succeed


def test_sqa_energies_consistent():
    model = _random_model(7, 8)
    result = PathIntegralAnnealer(seed=2).sample(model, num_reads=3, num_sweeps=100)
    for sample in result:
        assert model.energy(sample.assignment) == pytest.approx(sample.energy)


def test_sqa_info_fields():
    model = cell_hamiltonian("AND")
    result = PathIntegralAnnealer(seed=0).sample(
        model, num_reads=2, num_sweeps=50, trotter_slices=8, temperature=0.1
    )
    assert result.info["solver"] == "simulated-quantum-annealing"
    assert result.info["trotter_slices"] == 8


def test_sqa_parameter_validation():
    model = cell_hamiltonian("AND")
    sqa = PathIntegralAnnealer(seed=0)
    with pytest.raises(ValueError):
        sqa.sample(model, trotter_slices=1)
    with pytest.raises(ValueError):
        sqa.sample(model, temperature=0.0)
    with pytest.raises(ValueError):
        sqa.sample(model, transverse_field=(0.1, 1.0))  # ramps up: invalid
    with pytest.raises(ValueError):
        sqa.sample(model, transverse_field=(1.0, 0.0))  # final must be > 0


def test_sqa_empty_model():
    assert len(PathIntegralAnnealer(seed=0).sample(IsingModel())) == 0


def test_sqa_via_runner():
    from repro.qmasm.runner import QmasmRunner

    result = QmasmRunner(seed=0).run(
        "!include <stdcell>\n!use_macro AND g\n",
        pins=["g.Y := true"],
        solver="sqa",
        num_reads=4,
    )
    best = result.valid_solutions[0]
    assert best.values == {"g.A": True, "g.B": True, "g.Y": True}


# ----------------------------------------------------------------------
# Steepest descent
# ----------------------------------------------------------------------
def test_greedy_reaches_local_minimum():
    model = _random_model(3, 10)
    result = SteepestDescentSolver(seed=0).sample(model, num_reads=8)
    _, h_vec, j_mat = model.to_arrays()
    for i in range(len(result)):
        spins = result.records[i].astype(float)
        fields = h_vec + j_mat @ spins
        # No single flip can lower the energy further.
        assert np.all(2.0 * spins * fields <= 1e-9)


def test_greedy_polishes_samples_downhill():
    model = _random_model(4, 12)
    rough = SimulatedAnnealingSampler(seed=1).sample(
        model, num_reads=10, num_sweeps=5
    )
    polished = SteepestDescentSolver(seed=0).polish(rough, model)
    assert polished.energies.min() <= rough.energies.min() + 1e-9
    assert polished.energies.mean() <= rough.energies.mean() + 1e-9


def test_greedy_fixed_point_on_ground_state():
    model = cell_hamiltonian("AND")
    ground = ExactSolver().ground_states(model).first
    order = list(model.variables)
    init = np.array([[ground.assignment[v] for v in order]], dtype=np.int8)
    result = SteepestDescentSolver().sample(model, initial_states=init)
    assert result.first.assignment == ground.assignment


def test_greedy_shape_validation():
    model = cell_hamiltonian("AND")
    with pytest.raises(ValueError):
        SteepestDescentSolver().sample(
            model, initial_states=np.ones((2, 99), dtype=np.int8)
        )


def test_greedy_empty_model():
    assert len(SteepestDescentSolver().sample(IsingModel())) == 0
