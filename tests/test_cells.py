"""Tests for the Table 5 standard-cell library."""

import itertools

import pytest

from repro.ising.cells import (
    CELL_LIBRARY,
    CHAIN_COUPLING,
    cell_hamiltonian,
    pin_hamiltonian,
    wire_hamiltonian,
)
from repro.ising.model import SPIN_FALSE, SPIN_TRUE

ALL_CELLS = sorted(CELL_LIBRARY)


def test_library_covers_the_paper_cell_set():
    expected = {
        "NOT", "AND", "OR", "NAND", "NOR", "XOR", "XNOR", "MUX",
        "AOI3", "OAI3", "AOI4", "OAI4", "DFF_P", "DFF_N",
    }
    assert set(CELL_LIBRARY) == expected


@pytest.mark.parametrize("name", ALL_CELLS)
def test_cell_ground_states_match_truth_table(name):
    """The defining property: H minimized exactly on valid rows."""
    assert CELL_LIBRARY[name].verify()


@pytest.mark.parametrize("name", ALL_CELLS)
def test_cell_ground_energy_is_uniform_across_valid_rows(name):
    spec = CELL_LIBRARY[name]
    model = spec.hamiltonian()
    energies = set()
    for row in spec.valid_rows():
        best = min(
            model.energy(
                {**dict(zip(spec.ports, row)), **dict(zip(spec.ancillas, anc))}
            )
            for anc in itertools.product(
                (SPIN_FALSE, SPIN_TRUE), repeat=len(spec.ancillas)
            )
        ) if spec.ancillas else model.energy(dict(zip(spec.ports, row)))
        energies.add(round(best, 9))
    assert len(energies) == 1


@pytest.mark.parametrize(
    "name,expected_ancillas",
    [("NOT", 0), ("AND", 0), ("OR", 0), ("NAND", 0), ("NOR", 0),
     ("XOR", 1), ("XNOR", 1), ("MUX", 1), ("AOI3", 1), ("OAI3", 1),
     ("AOI4", 2), ("OAI4", 2), ("DFF_P", 0), ("DFF_N", 0)],
)
def test_ancilla_counts_match_table5(name, expected_ancillas):
    assert len(CELL_LIBRARY[name].ancillas) == expected_ancillas


def test_and_coefficients_match_paper():
    """Spot-check Table 5's AND row verbatim."""
    spec = CELL_LIBRARY["AND"]
    model = spec.hamiltonian()
    assert model.get_linear("A") == pytest.approx(-0.5)
    assert model.get_linear("B") == pytest.approx(-0.5)
    assert model.get_linear("Y") == pytest.approx(1.0)
    assert model.get_interaction("A", "B") == pytest.approx(0.5)
    assert model.get_interaction("A", "Y") == pytest.approx(-1.0)
    assert model.get_interaction("B", "Y") == pytest.approx(-1.0)


def test_or_matches_listing2_excerpt():
    """Listing 2 prints the OR macro: A 0.5 / B 0.5 / Y -1 / ..."""
    model = CELL_LIBRARY["OR"].hamiltonian()
    assert model.get_linear("A") == pytest.approx(0.5)
    assert model.get_linear("B") == pytest.approx(0.5)
    assert model.get_linear("Y") == pytest.approx(-1.0)
    assert model.get_interaction("A", "B") == pytest.approx(0.5)
    assert model.get_interaction("A", "Y") == pytest.approx(-1.0)
    assert model.get_interaction("B", "Y") == pytest.approx(-1.0)


def test_not_is_single_coupler():
    """Table 5: H_not = sigma_A sigma_Y, nothing else."""
    model = CELL_LIBRARY["NOT"].hamiltonian()
    assert model.get_interaction("A", "Y") == pytest.approx(1.0)
    assert all(bias == 0 for bias in model.linear.values())


def test_dff_is_ferromagnetic_coupler():
    """Table 5 and Section 4.3.3: H_DFF = -sigma_Q sigma_D."""
    for name in ("DFF_P", "DFF_N"):
        model = CELL_LIBRARY[name].hamiltonian()
        assert model.get_interaction("D", "Q") == pytest.approx(-1.0)
        assert CELL_LIBRARY[name].is_sequential


def test_xor_ground_energy_and_gap():
    spec = CELL_LIBRARY["XOR"]
    model = spec.hamiltonian()
    ground, states = model.ground_states()
    assert ground == pytest.approx(-2.0)
    # 4 valid rows, each with exactly one ancilla value achieving ground.
    assert len(states) == 4


def test_cell_functions_are_correct_logic():
    spec = CELL_LIBRARY["AOI4"]
    assert spec.function(True, True, False, False) is False
    assert spec.function(False, False, False, False) is True
    assert spec.function(False, True, True, True) is False
    spec = CELL_LIBRARY["OAI3"]
    assert spec.function(True, False, True) is False
    assert spec.function(False, False, True) is True
    assert spec.function(True, True, False) is True


def test_mux_selects_b_when_s_true():
    spec = CELL_LIBRARY["MUX"]
    assert spec.function(True, False, True) is True  # S=1 -> B
    assert spec.function(False, False, True) is False  # S=0 -> A
    assert spec.inputs == ("S", "A", "B")


# ----------------------------------------------------------------------
# Instantiation helpers
# ----------------------------------------------------------------------
def test_cell_hamiltonian_prefixing():
    model = cell_hamiltonian("AND", "u1.")
    assert "u1.Y" in model and "u1.A" in model
    assert model.get_interaction("u1.A", "u1.Y") == pytest.approx(-1.0)


def test_cell_hamiltonian_without_prefix_matches_spec():
    assert cell_hamiltonian("OR") == CELL_LIBRARY["OR"].hamiltonian()


def test_wire_hamiltonian_table1():
    """Table 1: H = -sigma_A sigma_Y minimized exactly when A == Y."""
    model = wire_hamiltonian("A", "Y")
    assert model.get_interaction("A", "Y") == pytest.approx(CHAIN_COUPLING)
    _, states = model.ground_states()
    assert all(s["A"] == s["Y"] for s in states)
    assert len(states) == 2


def test_wire_strength_magnitude_only():
    model = wire_hamiltonian("A", "Y", strength=-3.0)
    assert model.get_interaction("A", "Y") == pytest.approx(-3.0)


def test_pin_hamiltonian_vcc_gnd():
    """Section 4.3.4: H_GND = +sigma, H_VCC = -sigma."""
    vcc = pin_hamiltonian("x", True)
    gnd = pin_hamiltonian("x", False)
    assert vcc.energy({"x": SPIN_TRUE}) < vcc.energy({"x": SPIN_FALSE})
    assert gnd.energy({"x": SPIN_FALSE}) < gnd.energy({"x": SPIN_TRUE})


def test_three_input_and_composition():
    """Section 4.3.5: two ANDs + a wire compose into a 3-input AND."""
    model = cell_hamiltonian("AND", "g1.")  # Y = m AND C
    model.update(cell_hamiltonian("AND", "g2."))  # n = A AND B
    model.update(wire_hamiltonian("g1.A", "g2.Y"))  # m = n
    _, states = model.ground_states()
    for state in states:
        y = state["g1.Y"] == SPIN_TRUE
        a = state["g2.A"] == SPIN_TRUE
        b = state["g2.B"] == SPIN_TRUE
        c = state["g1.B"] == SPIN_TRUE
        assert y == (a and b and c)
    # All 8 input combinations appear among the ground states.
    inputs = {(s["g2.A"], s["g2.B"], s["g1.B"]) for s in states}
    assert len(inputs) == 8


def test_argument_passing_forward_and_backward():
    """Section 4.3.6: pin inputs -> forced output; pin output -> inputs."""
    forward = cell_hamiltonian("AND")
    forward.update(pin_hamiltonian("A", True))
    forward.update(pin_hamiltonian("B", False))
    _, states = forward.ground_states()
    assert all(s["Y"] == SPIN_FALSE for s in states)

    backward = cell_hamiltonian("AND")
    backward.update(pin_hamiltonian("Y", True))
    _, states = backward.ground_states()
    assert states == [{"Y": SPIN_TRUE, "A": SPIN_TRUE, "B": SPIN_TRUE}]
