"""Integration tests for the end-to-end compiler pipeline."""

import pytest

from repro import CompileOptions, compile_verilog, run_verilog
from tests.conftest import FIGURE_2A, LISTING_3_COUNTER, LISTING_5_CIRCSAT


# ----------------------------------------------------------------------
# Compilation artifacts
# ----------------------------------------------------------------------
def test_compile_produces_every_artifact(figure2_program):
    program = figure2_program
    assert program.verilog_source.strip().startswith("module circuit")
    assert program.netlist.num_cells() > 0
    assert "(edif" in program.edif_text
    assert "!include <stdcell>" in program.qmasm_source
    assert len(program.logical.variables) > 0


def test_statistics_fields(figure2_program):
    stats = figure2_program.statistics()
    for key in (
        "verilog_lines", "edif_lines", "qmasm_lines",
        "cells", "num_cells", "logical_variables", "logical_terms",
    ):
        assert key in stats
    assert stats["verilog_lines"] == 5  # module/input/output/assign/endmodule
    assert stats["logical_variables"] > stats["num_cells"]


def test_compile_options_vs_kwargs(compiler):
    options = CompileOptions(run_techmap=False)
    by_options = compiler.compile(FIGURE_2A, options)
    by_kwargs = compiler.compile(FIGURE_2A, run_techmap=False)
    assert by_options.netlist.cell_histogram() == by_kwargs.netlist.cell_histogram()
    with pytest.raises(TypeError):
        compiler.compile(FIGURE_2A, options, run_techmap=False)


def test_optimizer_flag_controls_cell_count(compiler):
    unoptimized = compiler.compile(
        FIGURE_2A, run_optimizer=False, run_techmap=False
    )
    optimized = compiler.compile(FIGURE_2A, run_techmap=False)
    assert optimized.netlist.num_cells() <= unoptimized.netlist.num_cells()


def test_simulator_accessor(figure2_program):
    simulator = figure2_program.simulator()
    assert simulator.evaluate({"s": 1, "a": 1, "b": 1})["c"] == 2
    assert simulator.evaluate({"s": 0, "a": 1, "b": 1})["c"] == 0


def test_sequential_design_requires_unroll_steps(compiler):
    with pytest.raises(ValueError):
        compiler.compile(LISTING_3_COUNTER)


def test_sequential_design_unrolls(compiler):
    program = compiler.compile(LISTING_3_COUNTER, unroll_steps=2, initial_state=0)
    assert not program.netlist.has_sequential()
    assert "out@0" in program.netlist.ports
    assert "out@1" in program.netlist.ports


# ----------------------------------------------------------------------
# Execution: forward and backward
# ----------------------------------------------------------------------
def test_forward_run_matches_simulation(compiler, figure2_program):
    simulator = figure2_program.simulator()
    for s, a, b in ((0, 0, 0), (0, 1, 0), (1, 1, 1)):
        result = compiler.run(
            figure2_program,
            pins=[f"s := {s}", f"a := {a}", f"b := {b}"],
            solver="exact",
        )
        best = result.valid_solutions[0]
        assert best.value_of("c") == simulator.evaluate({"s": s, "a": a, "b": b})["c"]


def test_backward_run_inverts_circuit(compiler, figure2_program):
    # c = 10 with s = 1 (addition): a + b must be 2, so a = b = 1.
    result = compiler.run(
        figure2_program, pins=["s := 1", "c[1:0] := 10"], solver="exact"
    )
    best = result.valid_solutions[0]
    assert (best.value_of("a"), best.value_of("b")) == (1, 1)


def test_invalid_relation_not_in_ground_states(compiler, figure2_program):
    """The paper: H is minimized at valid relations, e.g. NOT at
    {s=1, a=0, b=0, c=11}."""
    result = compiler.run(
        figure2_program, pins=["s := 1", "a := 0", "b := 0"], solver="exact"
    )
    best = result.valid_solutions[0]
    assert best.value_of("c") == 0  # not 0b11


def test_run_accepts_raw_source(compiler):
    result = compiler.run(
        FIGURE_2A, pins=["s := 1", "a := 1", "b := 0"], solver="exact"
    )
    assert result.valid_solutions[0].value_of("c") == 1


def test_run_verilog_convenience():
    result = run_verilog(
        LISTING_5_CIRCSAT,
        pins=["y := true"],
        solver="exact",
        seed=0,
    )
    best = result.valid_solutions[0]
    assert (best.value_of("a"), best.value_of("b"), best.value_of("c")) == (1, 1, 0)


def test_compile_verilog_convenience():
    program = compile_verilog(FIGURE_2A, seed=0)
    assert program.statistics()["verilog_lines"] == 5


# ----------------------------------------------------------------------
# Cross-check: annealed results always verify against the simulator
# ----------------------------------------------------------------------
def test_all_valid_solutions_verify_forward(compiler, circsat_program):
    """NP methodology (Section 5.1): check every proposal in poly time."""
    result = compiler.run(
        circsat_program, pins=["y := true"], solver="sa", num_reads=60
    )
    simulator = circsat_program.simulator()
    assert result.valid_solutions
    for solution in result.valid_solutions:
        inputs = {
            name: solution.value_of(name) for name in ("a", "b", "c")
        }
        assert simulator.evaluate(inputs)["y"] == 1
