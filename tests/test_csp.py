"""Tests for the CSP solver (the MiniZinc/Chuffed stand-in of §6.2)."""

import itertools
import random

import pytest

from repro.solvers.csp import CSPError, CSPModel, CSPSolver, parse_minizinc
from tests.conftest import (
    AUSTRALIA_ADJACENT,
    AUSTRALIA_REGIONS,
    LISTING_8_MINIZINC,
)


def _australia_model() -> CSPModel:
    model = CSPModel()
    for region in AUSTRALIA_REGIONS:
        model.add_variable(region, range(1, 5))
    for a, b in AUSTRALIA_ADJACENT:
        model.not_equal(a, b)
    return model


# ----------------------------------------------------------------------
# Model construction
# ----------------------------------------------------------------------
def test_duplicate_variable_rejected():
    model = CSPModel()
    model.add_variable("x", [1, 2])
    with pytest.raises(CSPError):
        model.add_variable("x", [1])


def test_empty_domain_rejected():
    model = CSPModel()
    with pytest.raises(CSPError):
        model.add_variable("x", [])


def test_constraint_unknown_variable_rejected():
    model = CSPModel()
    model.add_variable("x", [1])
    with pytest.raises(CSPError):
        model.add_constraint(["x", "y"], lambda a, b: a == b)


def test_is_satisfied_requires_complete_assignment():
    model = CSPModel()
    model.add_variable("x", [1, 2])
    model.add_variable("y", [1, 2])
    model.not_equal("x", "y")
    assert not model.is_satisfied({"x": 1})
    assert model.is_satisfied({"x": 1, "y": 2})
    assert not model.is_satisfied({"x": 1, "y": 1})


# ----------------------------------------------------------------------
# Solving
# ----------------------------------------------------------------------
def test_australia_solution_is_valid():
    model = _australia_model()
    solution = CSPSolver().solve(model)
    assert solution is not None
    assert model.is_satisfied(solution)


def test_australia_solution_count():
    """The Australia adjacency graph has exactly 576 proper 4-colorings
    (chromatic polynomial evaluated at k=4)."""
    assert CSPSolver().count_solutions(_australia_model()) == 576


def test_solver_is_deterministic():
    model_a, model_b = _australia_model(), _australia_model()
    assert CSPSolver().solve(model_a) == CSPSolver().solve(model_b)


def test_unsatisfiable_returns_none():
    model = CSPModel()
    model.add_variable("x", [1, 2])
    model.add_variable("y", [1, 2])
    model.add_variable("z", [1, 2])
    model.all_different(["x", "y", "z"])  # 3 vars, 2 values: impossible
    assert CSPSolver().solve(model) is None


def test_all_different_pigeonhole_boundary():
    model = CSPModel()
    for name in "abc":
        model.add_variable(name, [1, 2, 3])
    model.all_different(["a", "b", "c"])
    assert CSPSolver().count_solutions(model) == 6  # 3! permutations


def test_nary_constraint():
    model = CSPModel()
    for name in "abc":
        model.add_variable(name, range(0, 5))
    model.add_constraint(["a", "b", "c"], lambda a, b, c: a + b + c == 4)
    solutions = CSPSolver().solve_all(model)
    assert all(s["a"] + s["b"] + s["c"] == 4 for s in solutions)
    assert len(solutions) == 15  # compositions of 4 into 3 parts in [0,4]


def test_solve_all_limit():
    model = _australia_model()
    assert len(CSPSolver().solve_all(model, limit=10)) == 10


def test_ac3_prunes_unary_reductions():
    model = CSPModel()
    model.add_variable("x", [1, 2, 3])
    model.add_variable("y", [3])
    model.not_equal("x", "y")
    solutions = CSPSolver().solve_all(model)
    assert {s["x"] for s in solutions} == {1, 2}


# ----------------------------------------------------------------------
# MiniZinc subset parser
# ----------------------------------------------------------------------
def test_parse_listing8_verbatim():
    model = parse_minizinc(LISTING_8_MINIZINC)
    assert set(model.domains) == set(AUSTRALIA_REGIONS)
    assert all(model.domains[r] == list(range(1, 5)) for r in AUSTRALIA_REGIONS)
    assert len(model.constraints) == 10
    solution = CSPSolver().solve(model)
    assert model.is_satisfied(solution)


def test_parse_listing8_matches_handbuilt_model():
    parsed = parse_minizinc(LISTING_8_MINIZINC)
    handbuilt = _australia_model()
    assert CSPSolver().count_solutions(parsed) == CSPSolver().count_solutions(
        handbuilt
    )


def test_parse_comments_and_blank_lines():
    model = parse_minizinc("% header\n\nvar 1..2: x; % trailing\nsolve satisfy;\n")
    assert model.domains == {"x": [1, 2]}


def test_parse_constant_comparisons():
    model = parse_minizinc("var 1..5: x;\nconstraint x >= 3;\nconstraint 5 > x;")
    values = {s["x"] for s in CSPSolver().solve_all(model)}
    assert values == {3, 4}


def test_parse_all_operators():
    source = "\n".join(
        [
            "var 1..4: a;",
            "var 1..4: b;",
            "constraint a != b;",
            "constraint a <= b;",
            "constraint a < 4;",
            "constraint b >= 2;",
        ]
    )
    model = parse_minizinc(source)
    for solution in CSPSolver().solve_all(model):
        assert solution["a"] != solution["b"]
        assert solution["a"] <= solution["b"]
        assert solution["a"] < 4 and solution["b"] >= 2


def test_parse_equality_forms():
    model = parse_minizinc("var 1..3: x;\nvar 1..3: y;\nconstraint x == y;")
    assert all(s["x"] == s["y"] for s in CSPSolver().solve_all(model))
    model = parse_minizinc("var 1..3: x;\nvar 1..3: y;\nconstraint x = y;")
    assert all(s["x"] == s["y"] for s in CSPSolver().solve_all(model))


def test_parse_rejects_unsupported():
    with pytest.raises(CSPError):
        parse_minizinc("array[1..3] of var 1..2: xs;")
    with pytest.raises(CSPError):
        parse_minizinc("var 1..2: x;\nsolve minimize x;")
    with pytest.raises(CSPError):
        parse_minizinc("constraint 1 = 2;")


def test_negative_ranges():
    model = parse_minizinc("var -2..2: x;\nconstraint x < 0;")
    assert {s["x"] for s in CSPSolver().solve_all(model)} == {-2, -1}


# ----------------------------------------------------------------------
# Property test: solver vs brute force on random binary CSPs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_solver_matches_brute_force(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(2, 5)
    names = [f"v{i}" for i in range(num_vars)]
    model = CSPModel()
    domains = {}
    for name in names:
        size = rng.randint(1, 4)
        domains[name] = list(range(size))
        model.add_variable(name, domains[name])
    relations = {}
    for a, b in itertools.combinations(names, 2):
        if rng.random() < 0.6:
            allowed = frozenset(
                (x, y)
                for x in domains[a]
                for y in domains[b]
                if rng.random() < 0.6
            )
            relations[(a, b)] = allowed
            model.add_constraint(
                [a, b], lambda x, y, al=allowed: (x, y) in al
            )

    def brute_force_count():
        count = 0
        for values in itertools.product(*(domains[n] for n in names)):
            assignment = dict(zip(names, values))
            if all(
                (assignment[a], assignment[b]) in allowed
                for (a, b), allowed in relations.items()
            ):
                count += 1
        return count

    expected = brute_force_count()
    solver = CSPSolver()
    assert solver.count_solutions(model) == expected
    solution = solver.solve(model)
    if expected:
        assert solution is not None and model.is_satisfied(solution)
    else:
        assert solution is None
