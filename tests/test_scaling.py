"""Tests for coefficient scaling and quantization (Section 2 ranges)."""

import pytest

from repro.hardware.scaling import (
    H_RANGE,
    J_RANGE,
    check_ranges,
    quantize,
    scale_factor,
    scale_to_hardware,
)
from repro.ising.model import IsingModel


def test_hardware_ranges_match_paper():
    assert H_RANGE == (-2.0, 2.0)
    assert J_RANGE == (-2.0, 1.0)  # asymmetric: rf-SQUID coupler physics


def test_scale_down_large_coefficients():
    model = IsingModel({"a": 10.0}, {("a", "b"): -5.0})
    scaled, factor = scale_to_hardware(model)
    assert factor == pytest.approx(0.2)
    check_ranges(scaled)


def test_scale_up_small_coefficients():
    """Scaling up fills the analog range (better gap vs noise floor)."""
    model = IsingModel({"a": 0.1}, {("a", "b"): 0.05})
    scaled, factor = scale_to_hardware(model)
    assert factor > 1.0
    # After scaling, at least one coefficient sits on its bound.
    at_bound = [
        abs(bias) == pytest.approx(2.0) for bias in scaled.linear.values()
    ] + [
        coupling == pytest.approx(1.0) or coupling == pytest.approx(-2.0)
        for coupling in scaled.quadratic.values()
    ]
    assert any(at_bound)


def test_asymmetric_j_range_enforced():
    """A positive J may only reach 1.0 while negative may reach -2.0."""
    positive = IsingModel(j={("a", "b"): 4.0})
    scaled, factor = scale_to_hardware(positive)
    assert scaled.get_interaction("a", "b") == pytest.approx(1.0)

    negative = IsingModel(j={("a", "b"): -4.0})
    scaled, factor = scale_to_hardware(negative)
    assert scaled.get_interaction("a", "b") == pytest.approx(-2.0)


def test_scaling_preserves_ground_states(triangle_model):
    model = triangle_model
    model.add_variable("a", 0.5)
    scaled, _ = scale_to_hardware(model)
    key = lambda states: {tuple(sorted(s.items())) for s in states}
    assert key(model.ground_states()[1]) == key(scaled.ground_states()[1])


def test_scale_factor_of_empty_model():
    assert scale_factor(IsingModel()) == 1.0


def test_check_ranges_raises_on_violations():
    with pytest.raises(ValueError):
        check_ranges(IsingModel({"a": 3.0}))
    with pytest.raises(ValueError):
        check_ranges(IsingModel(j={("a", "b"): 1.5}))
    with pytest.raises(ValueError):
        check_ranges(IsingModel(j={("a", "b"): -2.5}))
    check_ranges(IsingModel({"a": 2.0}, {("a", "b"): -2.0}))  # at bounds: ok


def test_quantize_rounds_to_grid():
    model = IsingModel({"a": 1.001}, {("a", "b"): -0.502})
    quantized = quantize(model, steps=8)  # h grid 0.5, J grid 0.375
    assert quantized.get_linear("a") == pytest.approx(1.0)
    assert quantized.get_interaction("a", "b") == pytest.approx(-0.375)


def test_quantize_identity_at_high_resolution():
    model = IsingModel({"a": 0.5}, {("a", "b"): -1.0})
    quantized = quantize(model, steps=1 << 20)
    assert quantized.get_linear("a") == pytest.approx(0.5, abs=1e-5)
    assert quantized.get_interaction("a", "b") == pytest.approx(-1.0, abs=1e-5)


def test_quantize_validation():
    with pytest.raises(ValueError):
        quantize(IsingModel(), steps=1)


def test_quantize_can_flip_degenerate_order():
    """Coarse quantization genuinely loses precision -- two close
    coefficients can collapse onto the same grid point."""
    model = IsingModel({"a": 0.6, "b": 1.4})
    quantized = quantize(model, steps=4)  # grid of 1.0
    assert quantized.get_linear("a") == quantized.get_linear("b") == pytest.approx(1.0)
