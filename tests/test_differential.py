"""Property-based differential harness: simulator vs Hamiltonian.

Random combinational netlists are built directly over the paper's
Table 5 cell library, then checked two ways against each other:

* classically, with :class:`repro.synth.simulate.NetlistSimulator`
  (the truth table); and
* through the annealing path -- netlist -> QMASM -> assembled logical
  program -> Ising model -> exhaustive ground-state enumeration with
  :class:`repro.solvers.exact.ExactSolver`.

Equation (2) of the paper demands the ground states of the assembled
Hamiltonian be *exactly* the circuit's satisfying assignments, so the
two projections must agree as sets.  Uses hypothesis when available
(it is property-based fuzzing proper); a seeded-random fallback keeps
the harness running on minimal installs.
"""

import random

import pytest

from repro.edif2qmasm.translate import netlist_to_qmasm
from repro.ising.cells import CELL_LIBRARY
from repro.ising.model import spin_to_bool
from repro.qmasm.assembler import assemble
from repro.qmasm.parser import parse_qmasm
from repro.solvers.exact import ExactSolver
from repro.synth.netlist import Netlist, PortDirection
from repro.synth.simulate import NetlistSimulator

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the image normally
    HAVE_HYPOTHESIS = False

#: Every combinational Table 5 cell (flip-flops need unrolling first).
COMBINATIONAL_CELLS = sorted(
    name for name in CELL_LIBRARY if not name.startswith("DFF")
)

#: Exhaustive enumeration bound; every generated circuit fits well
#: under it (<= 4 inputs + 3 gates x (1 output + <= 2 ancillas)).
MAX_SPINS = 18


def build_random_netlist(choose):
    """Build a random combinational netlist over Table 5 cells.

    Args:
        choose: ``choose(options) -> option`` -- the single source of
            randomness, so one builder serves both the hypothesis
            strategy (``data.draw``) and the seeded-random fallback.

    Returns:
        ``(netlist, input_names)`` -- a netlist with 1-bit input ports
        ``i0..iN`` and a 1-bit output port ``y`` driven by the last
        gate; intermediate gates may feed later ones or dangle (the
        Hamiltonian must still constrain them consistently).
    """
    num_inputs = choose([2, 3, 4])
    netlist = Netlist("differential")
    nets = []
    input_names = []
    for index in range(num_inputs):
        net = netlist.new_net()
        netlist.add_port(f"i{index}", PortDirection.INPUT, [net])
        nets.append(net)
        input_names.append(f"i{index}")
    out = None
    for _ in range(choose([1, 2, 3])):
        kind = choose(COMBINATIONAL_CELLS)
        spec = CELL_LIBRARY[kind]
        connections = {port: choose(nets) for port in spec.inputs}
        out = netlist.new_net()
        connections[spec.output] = out
        netlist.add_cell(kind, connections)
        nets.append(out)
    netlist.add_port("y", PortDirection.OUTPUT, [out])
    return netlist, input_names


def assert_hamiltonian_matches_truth_table(netlist, input_names):
    """The Ising ground states projected onto (inputs, y) must equal
    the simulator's truth table over the same ports."""
    simulator = NetlistSimulator(netlist)
    logical = assemble(parse_qmasm(netlist_to_qmasm(netlist)))
    model, representative = logical.to_ising()
    assert len(model) <= MAX_SPINS, (
        f"generated model too large to enumerate ({len(model)} spins)"
    )
    ground = ExactSolver(max_variables=MAX_SPINS).ground_states(model)
    assert len(ground), "Hamiltonian has no ground states at all"

    watched = input_names + ["y"]
    observed = set()
    for sample in ground:
        full = logical.expand_sample(sample.assignment, representative)
        observed.add(tuple(spin_to_bool(full[name]) for name in watched))

    expected = set()
    for value in range(1 << len(input_names)):
        inputs = {
            name: (value >> bit) & 1 for bit, name in enumerate(input_names)
        }
        output = simulator.evaluate(inputs)["y"]
        expected.add(
            tuple(bool(inputs[n]) for n in input_names) + (bool(output),)
        )
    assert observed == expected, netlist_to_qmasm(netlist)


# ----------------------------------------------------------------------
# Deterministic floor: every cell, alone, end to end.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", COMBINATIONAL_CELLS)
def test_single_cell_differential(kind):
    spec = CELL_LIBRARY[kind]
    netlist = Netlist("single")
    input_names = []
    connections = {}
    for index, port in enumerate(spec.inputs):
        net = netlist.new_net()
        name = f"i{index}"
        netlist.add_port(name, PortDirection.INPUT, [net])
        connections[port] = net
        input_names.append(name)
    out = netlist.new_net()
    connections[spec.output] = out
    netlist.add_cell(kind, connections)
    netlist.add_port("y", PortDirection.OUTPUT, [out])
    assert_hamiltonian_matches_truth_table(netlist, input_names)


# ----------------------------------------------------------------------
# Property-based sweep (hypothesis when available)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestHypothesisDifferential:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_netlists(self, data):
        netlist, input_names = build_random_netlist(
            lambda options: data.draw(st.sampled_from(list(options)))
        )
        assert_hamiltonian_matches_truth_table(netlist, input_names)


# ----------------------------------------------------------------------
# Seeded-random fallback (always runs; also covers minimal installs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(15))
def test_random_netlists_seeded(seed):
    rng = random.Random(seed * 7919 + 13)
    netlist, input_names = build_random_netlist(
        lambda options: rng.choice(list(options))
    )
    assert_hamiltonian_matches_truth_table(netlist, input_names)
