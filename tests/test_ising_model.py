"""Unit and property tests for the IsingModel core."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ising.model import (
    SPIN_FALSE,
    SPIN_TRUE,
    IsingModel,
    bool_to_spin,
    spin_to_bool,
)


# ----------------------------------------------------------------------
# Spin conventions
# ----------------------------------------------------------------------
def test_spin_constants_match_paper():
    # The paper: False == -1, True == +1 ("physics Booleans").
    assert SPIN_FALSE == -1
    assert SPIN_TRUE == +1


def test_bool_spin_roundtrip():
    assert bool_to_spin(True) == 1
    assert bool_to_spin(False) == -1
    assert spin_to_bool(1) is True
    assert spin_to_bool(-1) is False


def test_spin_to_bool_rejects_non_spins():
    with pytest.raises(ValueError):
        spin_to_bool(0)
    with pytest.raises(ValueError):
        spin_to_bool(2)


# ----------------------------------------------------------------------
# Construction and inspection
# ----------------------------------------------------------------------
def test_add_variable_accumulates():
    model = IsingModel()
    model.add_variable("x", 1.0)
    model.add_variable("x", 0.5)
    assert model.get_linear("x") == pytest.approx(1.5)


def test_add_interaction_is_order_independent():
    model = IsingModel()
    model.add_interaction("a", "b", 0.5)
    model.add_interaction("b", "a", 0.25)
    assert model.get_interaction("a", "b") == pytest.approx(0.75)
    assert model.get_interaction("b", "a") == pytest.approx(0.75)


def test_self_interaction_rejected():
    model = IsingModel()
    with pytest.raises(ValueError):
        model.add_interaction("a", "a", 1.0)


def test_interaction_creates_variables():
    model = IsingModel()
    model.add_interaction("a", "b", 1.0)
    assert "a" in model and "b" in model
    assert len(model) == 2


def test_num_terms_counts_nonzero_only():
    model = IsingModel()
    model.add_variable("a", 0.0)
    model.add_variable("b", 1.0)
    model.add_interaction("a", "b", 0.0)
    model.add_interaction("b", "c", -2.0)
    assert model.num_terms() == 2


def test_degree_and_neighbors():
    model = IsingModel()
    model.add_interaction("a", "b", 1.0)
    model.add_interaction("a", "c", 1.0)
    assert model.degree("a") == 2
    assert set(model.neighbors("a")) == {"b", "c"}
    assert model.degree("b") == 1


def test_equality_ignores_zero_terms():
    left = IsingModel({"a": 1.0, "b": 0.0})
    right = IsingModel({"a": 1.0})
    assert left == right


# ----------------------------------------------------------------------
# Energy evaluation
# ----------------------------------------------------------------------
def test_energy_simple():
    model = IsingModel({"a": 1.0}, {("a", "b"): -2.0}, offset=0.5)
    assert model.energy({"a": 1, "b": 1}) == pytest.approx(1 - 2 + 0.5)
    assert model.energy({"a": -1, "b": 1}) == pytest.approx(-1 + 2 + 0.5)


def test_energy_bool_uses_spin_convention():
    model = IsingModel({"a": 1.0})
    assert model.energy_bool({"a": True}) == pytest.approx(1.0)
    assert model.energy_bool({"a": False}) == pytest.approx(-1.0)


def test_vectorized_energies_match_scalar(triangle_model):
    order, _, _ = triangle_model.to_arrays()
    samples = np.array(
        [[1, 1, 1], [1, -1, 1], [-1, -1, -1], [1, 1, -1]], dtype=float
    )
    vector = triangle_model.energies(samples, order=order)
    for row, expected in zip(samples, vector):
        assert triangle_model.energy(dict(zip(order, row))) == pytest.approx(
            expected
        )


def test_energies_handles_permuted_order(triangle_model):
    order = ["c", "a", "b"]
    samples = np.array([[1, -1, 1]], dtype=float)
    expected = triangle_model.energy({"c": 1, "a": -1, "b": 1})
    assert triangle_model.energies(samples, order=order)[0] == pytest.approx(expected)


# ----------------------------------------------------------------------
# Ground states
# ----------------------------------------------------------------------
def test_triangle_frustration(triangle_model):
    energy, states = triangle_model.ground_states()
    # Antiferromagnetic triangle: cannot satisfy all three edges.
    assert energy == pytest.approx(-1.0)
    assert len(states) == 6  # all non-aligned configurations


def test_ground_states_refuses_large_models():
    model = IsingModel({i: 1.0 for i in range(30)})
    with pytest.raises(ValueError):
        model.ground_states()


# ----------------------------------------------------------------------
# Composition (Section 4.3.5)
# ----------------------------------------------------------------------
def test_update_accumulates_models():
    left = IsingModel({"x": 1.0}, {("x", "y"): -1.0}, offset=1.0)
    right = IsingModel({"x": -0.5}, {("y", "x"): 0.25}, offset=2.0)
    left.update(right)
    assert left.get_linear("x") == pytest.approx(0.5)
    assert left.get_interaction("x", "y") == pytest.approx(-0.75)
    assert left.offset == pytest.approx(3.0)


def test_addition_minimizers_intersect():
    # H_P minimized by x=y; H_Q minimized by y=+1.  Sum: x=y=+1.
    chain = IsingModel(j={("x", "y"): -1.0})
    pin = IsingModel({"y": -1.0})
    _, states = (chain + pin).ground_states()
    assert states == [{"x": 1, "y": 1}]


# ----------------------------------------------------------------------
# Relabeling and contraction
# ----------------------------------------------------------------------
def test_relabel_renames():
    model = IsingModel({"a": 1.0}, {("a", "b"): 2.0})
    renamed = model.relabel({"a": "x"})
    assert renamed.get_linear("x") == pytest.approx(1.0)
    assert renamed.get_interaction("x", "b") == pytest.approx(2.0)
    assert "a" not in renamed


def test_relabel_merges_terms_to_offset():
    model = IsingModel(j={("a", "b"): 3.0})
    merged = model.relabel({"b": "a"})
    # sigma_a * sigma_a == 1: coupling becomes constant offset.
    assert merged.offset == pytest.approx(3.0)
    assert merged.num_interactions() == 0


def test_contract_same_sign():
    model = IsingModel({"a": 1.0, "b": 2.0}, {("a", "c"): 1.0, ("b", "c"): 1.0})
    merged = model.contract("a", "b")
    assert merged.get_linear("a") == pytest.approx(3.0)
    assert merged.get_interaction("a", "c") == pytest.approx(2.0)
    assert "b" not in merged


def test_contract_opposite_sign():
    model = IsingModel({"b": 2.0}, {("b", "c"): 1.0})
    merged = model.contract("a", "b", same_sign=False)
    assert merged.get_linear("a") == pytest.approx(-2.0)
    assert merged.get_interaction("a", "c") == pytest.approx(-1.0)


def test_contract_preserves_energy_on_consistent_samples():
    model = IsingModel({"a": 0.5, "b": -1.0}, {("a", "b"): 0.75, ("b", "c"): -0.5})
    merged = model.contract("a", "b")
    for sa in (-1, 1):
        for sc in (-1, 1):
            full = model.energy({"a": sa, "b": sa, "c": sc})
            small = merged.energy({"a": sa, "c": sc})
            assert full == pytest.approx(small)


def test_contract_self_rejected():
    model = IsingModel({"a": 1.0})
    with pytest.raises(ValueError):
        model.contract("a", "a")


# ----------------------------------------------------------------------
# Variable fixing
# ----------------------------------------------------------------------
def test_fix_variable_energy_consistency():
    model = IsingModel({"a": 1.0, "b": -0.5}, {("a", "b"): 2.0}, offset=0.25)
    fixed = model.fix_variable("a", SPIN_TRUE)
    for sb in (-1, 1):
        assert fixed.energy({"b": sb}) == pytest.approx(
            model.energy({"a": 1, "b": sb})
        )
    assert "a" not in fixed


def test_fix_variable_validates_input():
    model = IsingModel({"a": 1.0})
    with pytest.raises(ValueError):
        model.fix_variable("a", 0)
    with pytest.raises(KeyError):
        model.fix_variable("zz", 1)


# ----------------------------------------------------------------------
# QUBO conversion
# ----------------------------------------------------------------------
def test_qubo_roundtrip_small():
    model = IsingModel({"a": 0.5, "b": -1.5}, {("a", "b"): 2.0}, offset=3.0)
    qubo, offset = model.to_qubo()
    back = IsingModel.from_qubo(qubo, offset)
    assert back == model


def test_scaled_multiplies_everything():
    model = IsingModel({"a": 1.0}, {("a", "b"): -2.0}, offset=4.0)
    scaled = model.scaled(0.5)
    assert scaled.get_linear("a") == pytest.approx(0.5)
    assert scaled.get_interaction("a", "b") == pytest.approx(-1.0)
    assert scaled.offset == pytest.approx(2.0)


def test_scaled_preserves_ground_states(triangle_model):
    _, original = triangle_model.ground_states()
    _, scaled = triangle_model.scaled(0.37).ground_states()
    key = lambda states: {tuple(sorted(s.items())) for s in states}
    assert key(original) == key(scaled)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
coefficients = st.floats(
    min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
)


@st.composite
def small_models(draw, max_variables: int = 5):
    n = draw(st.integers(min_value=1, max_value=max_variables))
    model = IsingModel(offset=draw(coefficients))
    for i in range(n):
        model.add_variable(i, draw(coefficients))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                model.add_interaction(i, j, draw(coefficients))
    return model


@st.composite
def models_with_samples(draw):
    model = draw(small_models())
    sample = {v: draw(st.sampled_from((-1, 1))) for v in model.variables}
    return model, sample


@given(models_with_samples())
@settings(max_examples=60, deadline=None)
def test_qubo_preserves_energy(model_sample):
    """Ising and QUBO forms agree at every point, not just the argmin."""
    model, sample = model_sample
    qubo, offset = model.to_qubo()
    x = {v: (s + 1) // 2 for v, s in sample.items()}
    qubo_energy = offset + sum(
        coeff * x[u] * x[v] for (u, v), coeff in qubo.items()
    )
    assert math.isclose(qubo_energy, model.energy(sample), abs_tol=1e-9)


@given(models_with_samples())
@settings(max_examples=60, deadline=None)
def test_fix_variable_pointwise(model_sample):
    model, sample = model_sample
    variable = next(iter(model.variables))
    fixed = model.fix_variable(variable, sample[variable])
    rest = {v: s for v, s in sample.items() if v != variable}
    assert math.isclose(fixed.energy(rest), model.energy(sample), abs_tol=1e-9)


@given(models_with_samples())
@settings(max_examples=60, deadline=None)
def test_relabel_preserves_energy(model_sample):
    model, sample = model_sample
    mapping = {v: f"v{v}" for v in model.variables}
    renamed = model.relabel(mapping)
    renamed_sample = {mapping[v]: s for v, s in sample.items()}
    assert math.isclose(
        renamed.energy(renamed_sample), model.energy(sample), abs_tol=1e-9
    )


@given(small_models())
@settings(max_examples=30, deadline=None)
def test_vectorized_energy_matches_scalar_property(model):
    order, _, _ = model.to_arrays()
    rng = np.random.default_rng(0)
    samples = rng.choice([-1.0, 1.0], size=(8, len(order)))
    energies = model.energies(samples, order=order)
    for row, energy in zip(samples, energies):
        assert math.isclose(
            model.energy(dict(zip(order, row))), energy, abs_tol=1e-9
        )
