"""Tests for the qmasm-style text reports."""

import pytest

from repro.core.report import (
    format_compile_summary,
    format_run_result,
    format_solution,
)
from repro.qmasm.runner import QmasmRunner, Solution

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"


@pytest.fixture(scope="module")
def and_result():
    return QmasmRunner(seed=0).run(
        AND_PROGRAM, pins=["g.Y := true"], solver="exact", num_reads=16
    )


def test_format_solution_basic():
    solution = Solution(
        values={"a": True, "b": False}, energy=-2.5, num_occurrences=7
    )
    text = format_solution(solution, rank=3)
    assert "Solution #3" in text
    assert "energy -2.5000" in text
    assert "tally 7" in text
    assert "a = 1" in text and "b = 0" in text


def test_format_solution_flags_problems():
    solution = Solution(
        values={"a": True},
        energy=0.0,
        num_occurrences=1,
        failed_assertions=["Y = A&B"],
        pins_respected=False,
    )
    text = format_solution(solution, rank=1)
    assert "PINS VIOLATED" in text
    assert "FAILED ASSERTS: Y = A&B" in text


def test_format_run_result(and_result):
    text = format_run_result(and_result)
    assert "solution(s)" in text
    assert "logical variable(s)" in text
    assert "Solution #1" in text
    assert "g.Y = 1" in text


def test_format_run_result_truncation(and_result):
    text = format_run_result(and_result, max_solutions=1, valid_only=False)
    assert "more solution(s) not shown" in text


def test_format_run_result_includes_dwave_info():
    from repro.solvers.machine import DWaveSimulator, MachineProperties

    machine = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0), seed=0
    )
    result = QmasmRunner(machine=machine, seed=0).run(
        AND_PROGRAM, solver="dwave", num_reads=10
    )
    text = format_run_result(result)
    assert "QPU access time" in text
    assert "physical qubit(s)" in text
    assert "chain breaks" in text


def test_format_compile_summary(figure2_program):
    text = format_compile_summary(figure2_program)
    assert "module 'circuit'" in text
    assert "Verilog lines" in text
    assert "logical variables" in text
