"""Tests for the topology abstraction and registry.

Covers the three hardware families (Chimera, Pegasus-style,
Zephyr-style): published node counts, degree bounds, coordinate
round-trips, tile schemes, registry lookup, fingerprint/cache-key
separation -- plus the lint guard that keeps every layer outside
``repro/hardware/`` off direct ``repro.hardware.chimera`` imports.
"""

import os

import networkx as nx
import pytest

from repro.core.cache import CompilationCache, EmbeddingCache
from repro.hardware.registry import (
    available_topologies,
    make_topology,
    register_topology,
)
from repro.hardware.topology import (
    ChimeraTopology,
    PegasusTopology,
    Topology,
    ZephyrTopology,
)


# ----------------------------------------------------------------------
# Family structure
# ----------------------------------------------------------------------
def test_chimera_counts_match_published():
    topo = ChimeraTopology(4)
    assert topo.num_qubits == 4 * 4 * 8 == 128
    # C16 is the 2000Q: 2048 nominal qubits.
    assert ChimeraTopology(16).num_qubits == 2048


def test_pegasus_counts_match_published():
    # Published trimmed node count: 8 * (m-1) * (3m-1); P16 = 5640.
    for m in (2, 3, 6):
        assert PegasusTopology(m).num_qubits == 8 * (m - 1) * (3 * m - 1)
    assert PegasusTopology(16).num_qubits == 5640


def test_zephyr_counts_match_published():
    # Published node count: 4 * t * m * (2m+1); Z15 (t=4) = 7440.
    for m in (1, 2, 3):
        assert ZephyrTopology(m).num_qubits == 16 * m * (2 * m + 1)
    assert ZephyrTopology(15).num_qubits == 7440


def test_degree_bounds_per_family():
    chimera = ChimeraTopology(4).graph
    assert max(dict(chimera.degree).values()) <= 6
    pegasus = PegasusTopology(4).graph
    assert max(dict(pegasus.degree).values()) == 15
    zephyr = ZephyrTopology(3).graph
    assert max(dict(zephyr.degree).values()) == 20


def test_graphs_are_connected():
    for topo in (ChimeraTopology(3), PegasusTopology(3), ZephyrTopology(2)):
        assert nx.is_connected(topo.graph), topo.family


def test_chimera_is_bipartite_denser_families_are_not():
    assert nx.is_bipartite(ChimeraTopology(3).graph)
    # Odd couplers close odd cycles in both newer families.
    assert not nx.is_bipartite(PegasusTopology(3).graph)
    assert not nx.is_bipartite(ZephyrTopology(2).graph)


@pytest.mark.parametrize(
    "topo",
    [ChimeraTopology(3), PegasusTopology(3), ZephyrTopology(2)],
    ids=lambda t: t.family,
)
def test_coordinate_round_trip(topo: Topology):
    for index in topo.graph.nodes():
        assert topo.linear(topo.coordinates(index)) == index


@pytest.mark.parametrize(
    "topo",
    [ChimeraTopology(3), PegasusTopology(3), ZephyrTopology(2)],
    ids=lambda t: t.family,
)
def test_tiles_cover_every_qubit_within_shape(topo: Topology):
    tiles = topo.tiles()
    rows, cols = topo.tile_shape
    members = [q for cell in tiles.values() for q in cell]
    assert sorted(members) == sorted(topo.graph.nodes())
    assert all(0 <= r < rows and 0 <= c < cols for r, c in tiles)


def test_describe_mentions_family_and_size():
    text = PegasusTopology(3).describe()
    assert "pegasus" in text
    assert str(PegasusTopology(3).num_qubits) in text


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_all_three_families():
    names = available_topologies()
    assert {"chimera", "pegasus", "zephyr"} <= set(names)
    assert list(names) == sorted(names)


def test_make_topology_defaults_to_flagship_chips():
    assert make_topology("chimera").fingerprint() == "chimera:m=16,n=16,t=4"
    assert make_topology("pegasus").fingerprint() == "pegasus:m=16"
    assert make_topology("zephyr").fingerprint() == "zephyr:m=15,t=4"


def test_make_topology_sized_and_case_insensitive():
    topo = make_topology("Pegasus", size=3)
    assert isinstance(topo, PegasusTopology)
    assert topo.m == 3


def test_make_topology_unknown_name_lists_available():
    with pytest.raises(KeyError) as excinfo:
        make_topology("kagome")
    assert "chimera" in str(excinfo.value)


def test_register_topology_rejects_duplicates():
    with pytest.raises(ValueError):
        register_topology("chimera", lambda size, tile=None: ChimeraTopology(size), 16)


# ----------------------------------------------------------------------
# Fingerprints and cache keys
# ----------------------------------------------------------------------
def test_fingerprints_distinct_across_families_and_sizes():
    prints = {
        ChimeraTopology(4).fingerprint(),
        ChimeraTopology(8).fingerprint(),
        PegasusTopology(4).fingerprint(),
        ZephyrTopology(4).fingerprint(),
    }
    assert len(prints) == 4


def test_embedding_cache_key_separates_topologies():
    source = nx.path_graph(3)
    target = nx.complete_graph(8)
    keys = {
        EmbeddingCache.key_for(
            source, target, seed=0, topology=topo.fingerprint()
        )
        for topo in (ChimeraTopology(2), PegasusTopology(2), ZephyrTopology(1))
    }
    assert len(keys) == 3


def test_compilation_cache_key_separates_targets():
    assert CompilationCache.key_for("module m; endmodule", None) != (
        CompilationCache.key_for(
            "module m; endmodule", None, target="pegasus:m=16"
        )
    )


# ----------------------------------------------------------------------
# Lint guard: everything outside repro/hardware/ goes via the registry
# ----------------------------------------------------------------------
def test_no_direct_chimera_imports_outside_hardware_package():
    """New code must not import repro.hardware.chimera directly.

    The topology abstraction only holds if every other layer reaches
    hardware graphs through :mod:`repro.hardware.registry` (or the
    :mod:`repro.hardware.topology` classes); a direct chimera import
    outside ``repro/hardware/`` silently re-hardwires the 2000Q.
    """
    src_root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        if os.path.basename(dirpath) == "hardware":
            continue
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if "repro.hardware.chimera" in text:
                offenders.append(os.path.relpath(path, src_root))
    assert not offenders, (
        "direct repro.hardware.chimera imports outside repro/hardware/ "
        f"(use repro.hardware.registry instead): {offenders}"
    )
