"""Tests for the qmasm runner (assemble -> embed -> anneal -> report)."""

import pytest

from repro.qmasm.program import QmasmError
from repro.qmasm.runner import QmasmRunner, Solution
from repro.solvers.machine import DWaveSimulator, MachineProperties

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"


@pytest.fixture(scope="module")
def runner():
    machine = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0), seed=0
    )
    return QmasmRunner(machine=machine, seed=0)


# ----------------------------------------------------------------------
# Solver paths
# ----------------------------------------------------------------------
def test_exact_solver_enumerates_relation(runner):
    result = runner.run(AND_PROGRAM, solver="exact", num_reads=50)
    truth = {(a, b, a and b) for a in (0, 1) for b in (0, 1)}
    ground = {
        (s.values["g.A"], s.values["g.B"], s.values["g.Y"])
        for s in result.solutions
        if s.energy == pytest.approx(result.solutions[0].energy)
    }
    assert {(bool(a), bool(b), bool(y)) for a, b, y in truth} == ground


def test_sa_solver(runner):
    result = runner.run(AND_PROGRAM, solver="sa", num_reads=30)
    best = result.best
    assert best.values["g.Y"] == (best.values["g.A"] and best.values["g.B"])


def test_tabu_solver(runner):
    result = runner.run(AND_PROGRAM, solver="tabu", num_reads=5)
    assert result.best.valid


def test_qbsolv_solver(runner):
    result = runner.run(AND_PROGRAM, solver="qbsolv", num_reads=2)
    assert result.best.valid


def test_shard_solver(runner):
    result = runner.run(AND_PROGRAM, solver="shard", num_reads=2)
    assert result.best.valid
    assert result.sampleset.info["machines"] == runner.machines


def test_dwave_solver_embeds_and_runs(runner):
    result = runner.run(AND_PROGRAM, solver="dwave", num_reads=40)
    assert result.embedding is not None
    assert result.num_physical_qubits() >= result.num_logical_variables()
    assert result.physical_model is not None
    assert "timing" in result.info
    assert result.best.valid


def test_unknown_solver_rejected(runner):
    with pytest.raises(ValueError):
        runner.run(AND_PROGRAM, solver="oracle")


# ----------------------------------------------------------------------
# Pins (forward and backward execution, Section 4.3.6)
# ----------------------------------------------------------------------
def test_forward_execution(runner):
    result = runner.run(
        AND_PROGRAM, pins=["g.A := true", "g.B := false"], solver="exact"
    )
    best = result.valid_solutions[0]
    assert best.values == {"g.A": True, "g.B": False, "g.Y": False}


def test_backward_execution(runner):
    result = runner.run(AND_PROGRAM, pins=["g.Y := true"], solver="exact")
    best = result.valid_solutions[0]
    assert best.values == {"g.A": True, "g.B": True, "g.Y": True}


def test_pin_of_unknown_variable_rejected(runner):
    with pytest.raises(QmasmError):
        runner.run(AND_PROGRAM, pins=["nope := 1"], solver="exact")


def test_pins_do_not_leak_between_runs(runner):
    first = runner.run(AND_PROGRAM, pins=["g.Y := true"], solver="exact")
    second = runner.run(AND_PROGRAM, pins=["g.Y := false"], solver="exact")
    assert first.valid_solutions[0].values["g.Y"] is True
    assert {
        (s.values["g.A"], s.values["g.B"])
        for s in second.valid_solutions
        if s.energy == pytest.approx(second.valid_solutions[0].energy)
    } == {(False, False), (False, True), (True, False)}


# ----------------------------------------------------------------------
# Roof duality
# ----------------------------------------------------------------------
def test_roof_duality_elides_fully_pinned_program(runner):
    result = runner.run(
        AND_PROGRAM,
        pins=["g.A := true", "g.B := true"],
        solver="exact",
        use_roof_duality=True,
    )
    assert result.info["roof_duality_fixed"] >= 1
    assert result.valid_solutions[0].values["g.Y"] is True


def test_roof_duality_preserves_answers(runner):
    plain = runner.run(AND_PROGRAM, pins=["g.Y := true"], solver="exact")
    elided = runner.run(
        AND_PROGRAM, pins=["g.Y := true"], solver="exact", use_roof_duality=True
    )
    assert (
        plain.valid_solutions[0].values == elided.valid_solutions[0].values
    )


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_solutions_sorted_by_energy(runner):
    result = runner.run(AND_PROGRAM, solver="exact", num_reads=64)
    energies = [s.energy for s in result.solutions]
    assert energies == sorted(energies)


def test_dollar_variables_hidden(runner):
    result = runner.run(
        "!include <stdcell>\n!use_macro XOR $g\n", solver="exact"
    )
    assert all(
        "$" not in name for s in result.solutions for name in s.values
    )


def test_assertion_failures_flagged(runner):
    # Force Y toward TRUE while the inputs are pinned FALSE: the
    # energetically best state then violates the macro's Y = A&B assert.
    program = AND_PROGRAM + "g.A := false\ng.B := false\ng.Y -20\n"
    result = runner.run(program, solver="exact")
    worst = result.solutions[0]
    assert worst.failed_assertions or not worst.pins_respected


def test_value_of_assembles_integers():
    solution = Solution(
        values={"C[0]": True, "C[1]": False, "C[2]": True, "flag": False},
        energy=0.0,
        num_occurrences=1,
    )
    assert solution.value_of("C") == 5
    assert solution.value_of("flag") == 0
    with pytest.raises(KeyError):
        solution.value_of("missing")


def test_run_result_accessors(runner):
    result = runner.run(AND_PROGRAM, solver="exact")
    assert result.num_logical_variables() == 3
    assert result.num_physical_qubits() == 0  # no embedding for exact
    assert result.best is result.solutions[0]


def test_machine_created_lazily():
    runner = QmasmRunner(seed=1)
    assert runner.machine is None
    # 'exact' path must not build the (expensive) C16 machine.
    runner.run(AND_PROGRAM, solver="exact")
    assert runner.machine is None
