"""Tests for roof-duality variable fixing (qubit elision, Section 4.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ising.cells import cell_hamiltonian, pin_hamiltonian
from repro.ising.model import SPIN_FALSE, SPIN_TRUE, IsingModel
from repro.ising.roofduality import (
    fix_variables,
    fix_variables_local,
    fix_variables_roof,
)


def test_isolated_biased_variable_fixed():
    model = IsingModel({"a": 1.5, "b": -2.0})
    fixed = fix_variables_local(model)
    assert fixed == {"a": SPIN_FALSE, "b": SPIN_TRUE}


def test_local_rule_respects_coupling_budget():
    # |h| == sum|J|: not strictly dominated, must not be fixed locally.
    model = IsingModel({"a": 1.0}, {("a", "b"): 1.0})
    assert "a" not in fix_variables_local(model)


def test_local_rule_cascades():
    # Fixing a (dominant field) folds J into b's field, which then fixes b.
    model = IsingModel({"a": -3.0, "b": 0.5}, {("a", "b"): -1.0})
    fixed = fix_variables_local(model)
    assert fixed["a"] == SPIN_TRUE
    # with a=+1, b's field is 0.5 - 1.0 = -0.5 -> b = +1
    assert fixed["b"] == SPIN_TRUE


def test_zero_field_variables_left_free():
    model = IsingModel({"a": 0.0})
    assert fix_variables_local(model) == {}
    assert fix_variables_roof(model) == {}


def test_roof_fixes_pinned_gate_completely():
    """AND with both inputs pinned is fully determined a priori."""
    model = cell_hamiltonian("AND")
    model.update(pin_hamiltonian("A", True, strength=2.0))
    model.update(pin_hamiltonian("B", True, strength=2.0))
    fixed = fix_variables(model)
    assert fixed.get("A") == SPIN_TRUE
    assert fixed.get("B") == SPIN_TRUE
    assert fixed.get("Y") == SPIN_TRUE


def test_roof_chain_propagation():
    """A pinned value propagates down a ferromagnetic chain."""
    model = IsingModel({"x0": -5.0})
    for i in range(5):
        model.add_interaction(f"x{i}", f"x{i + 1}", -1.0)
    fixed = fix_variables(model)
    assert all(fixed.get(f"x{i}") == SPIN_TRUE for i in range(6))


def test_roof_empty_model():
    assert fix_variables_roof(IsingModel()) == {}


def test_frustrated_triangle_fixes_nothing(triangle_model):
    # Six degenerate ground states with every variable taking both
    # values: no persistency exists.
    assert fix_variables(triangle_model) == {}


def test_unknown_method_rejected(triangle_model):
    with pytest.raises(ValueError):
        fix_variables(triangle_model, method="magic")


def _random_model(rng: random.Random, n: int) -> IsingModel:
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, rng.choice([-2, -1, -0.5, 0, 0.5, 1, 2]))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.5:
                model.add_interaction(i, j, rng.choice([-1, -0.5, 0.5, 1]))
    return model


@pytest.mark.parametrize("method", ["local", "roof"])
def test_weak_persistency_against_brute_force(method):
    """Every fixing must be extendable to a global optimum."""
    rng = random.Random(7)
    for _ in range(60):
        model = _random_model(rng, rng.randint(2, 7))
        _, states = model.ground_states()
        fixed = fix_variables(model, method=method)
        assert any(
            all(state[v] == spin for v, spin in fixed.items())
            for state in states
        ), f"fixings {fixed} not extendable ({method})"


def test_roof_subsumes_local():
    rng = random.Random(11)
    for _ in range(25):
        model = _random_model(rng, rng.randint(2, 6))
        local = fix_variables(model, method="local")
        roof = fix_variables(model, method="roof")
        # Roof duality finds at least as many persistencies.
        assert len(roof) >= len(local)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_fixing_preserves_minimum_energy(seed):
    """Fixing the roof-duality variables never changes the optimum."""
    model = _random_model(random.Random(seed), 6)
    original_min, _ = model.ground_states()
    reduced = model
    for variable, spin in fix_variables(model).items():
        reduced = reduced.fix_variable(variable, spin)
    if len(reduced):
        reduced_min, _ = reduced.ground_states()
    else:
        reduced_min = reduced.offset
    assert reduced_min == pytest.approx(original_min)
