"""Tests for the D-Wave 2000Q simulator front end."""

import pytest

from repro.ising.model import IsingModel
from repro.solvers.machine import DWaveSimulator, MachineProperties


@pytest.fixture(scope="module")
def machine():
    # A small, noise-free, dropout-free machine keeps tests fast and exact.
    props = MachineProperties(cells=4, dropout_fraction=0.0)
    return DWaveSimulator(properties=props, seed=0)


def _chain_problem(machine, value=-1.0):
    """A two-qubit ferromagnet on a real coupler of the working graph."""
    u, v = next(iter(machine.working_graph.edges()))
    model = IsingModel({u: 0.5}, {(u, v): value})
    return model, u, v


# ----------------------------------------------------------------------
# Validation (what the real SAPI rejects)
# ----------------------------------------------------------------------
def test_rejects_unknown_qubits(machine):
    model = IsingModel({999999: 1.0})
    with pytest.raises(ValueError):
        machine.sample_ising(model)


def test_rejects_missing_couplers(machine):
    # Qubits 0 and 1 share a unit-cell partition: no coupler.
    model = IsingModel(j={(0, 1): -1.0})
    with pytest.raises(ValueError):
        machine.sample_ising(model)


def test_rejects_out_of_range_coefficients(machine):
    model, u, v = _chain_problem(machine)
    model.add_variable(u, 10.0)
    with pytest.raises(ValueError):
        machine.sample_ising(model)


def test_rejects_bad_annealing_times(machine):
    model, _, _ = _chain_problem(machine)
    with pytest.raises(ValueError):
        machine.sample_ising(model, annealing_time_us=0.5)  # < 1 us
    with pytest.raises(ValueError):
        machine.sample_ising(model, annealing_time_us=3000.0)  # > 2000 us


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def test_solves_simple_chain(machine):
    model, u, v = _chain_problem(machine)
    result = machine.sample_ising(model, num_reads=20, apply_noise=False)
    best = result.first
    # h_u = +0.5 pushes u to -1; the ferromagnetic coupler drags v along.
    assert best.assignment[u] == -1
    assert best.assignment[v] == -1


def test_energies_reported_against_clean_problem(machine):
    model, _, _ = _chain_problem(machine)
    result = machine.sample_ising(model, num_reads=5, apply_noise=True)
    for sample in result:
        assert model.energy(sample.assignment) == pytest.approx(sample.energy)


def test_noise_perturbs_programmed_coefficients():
    props = MachineProperties(cells=2, dropout_fraction=0.0, noise_h=0.2)
    machine = DWaveSimulator(properties=props, seed=3)
    model = IsingModel({next(iter(machine.working_graph.nodes())): 1.0})
    noisy = machine._apply_control_noise(model)
    (v,) = noisy.variables
    assert noisy.get_linear(v) != pytest.approx(1.0)
    assert -2.0 <= noisy.get_linear(v) <= 2.0  # clipped to range


def test_timing_model_math(machine):
    model, _, _ = _chain_problem(machine)
    result = machine.sample_ising(model, num_reads=10, annealing_time_us=50.0)
    timing = result.info["timing"]
    props = machine.properties
    per_sample = 50.0 + props.readout_time_us + props.delay_time_us
    assert timing["qpu_sampling_time_us"] == pytest.approx(10 * per_sample)
    assert timing["qpu_access_time_us"] == pytest.approx(
        props.programming_time_us + 10 * per_sample
    )


def test_anneal_time_controls_sweeps(machine):
    model, _, _ = _chain_problem(machine)
    short = machine.sample_ising(model, num_reads=1, annealing_time_us=1.0)
    long = machine.sample_ising(model, num_reads=1, annealing_time_us=100.0)
    assert long.info["num_sweeps"] > short.info["num_sweeps"]


def test_dropout_shrinks_working_graph():
    full = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0)
    )
    lossy = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.05)
    )
    assert lossy.num_qubits < full.num_qubits == 128


def test_default_machine_is_a_2000q():
    machine = DWaveSimulator(seed=0)
    assert machine.topology.family == "chimera"
    assert machine.topology.fingerprint() == "chimera:m=16,n=16,t=4"
    # nominal 2048 minus drop-out
    assert 1900 <= machine.num_qubits < 2048


def test_problem_on_dropped_qubit_rejected():
    machine = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.1), seed=0
    )
    full = set(range(128))
    dropped = sorted(full - set(machine.working_graph.nodes()))
    model = IsingModel({dropped[0]: 1.0})
    with pytest.raises(ValueError):
        machine.sample_ising(model)


# ----------------------------------------------------------------------
# Spin-reversal (gauge) transforms
# ----------------------------------------------------------------------
def test_gauge_transform_preserves_problem(machine):
    import numpy as np

    model, u, v = _chain_problem(machine)
    order = list(model.variables)
    rng = np.random.default_rng(0)
    gauge = rng.choice([-1.0, 1.0], size=len(order))
    gauged = machine._apply_gauge(model, order, gauge)
    # Energies match under the gauge map s -> g * s.
    for su in (-1, 1):
        for sv in (-1, 1):
            sample = {u: su, v: sv}
            index = {q: i for i, q in enumerate(order)}
            gauged_sample = {
                q: int(s * gauge[index[q]]) for q, s in sample.items()
            }
            assert gauged.energy(gauged_sample) == pytest.approx(
                model.energy(sample)
            )


def test_spin_reversal_transforms_return_correct_answers(machine):
    model, u, v = _chain_problem(machine)
    result = machine.sample_ising(
        model, num_reads=24, apply_noise=False,
        num_spin_reversal_transforms=4,
    )
    assert result.total_reads() == 24
    best = result.first
    assert best.assignment[u] == -1 and best.assignment[v] == -1
    assert result.info["num_spin_reversal_transforms"] == 4


def test_spin_reversal_transform_validation(machine):
    model, _, _ = _chain_problem(machine)
    with pytest.raises(ValueError):
        machine.sample_ising(model, num_spin_reversal_transforms=-1)
