"""Tests for deadline-aware execution (repro.core.deadline).

Covers the Deadline/Budget primitives, the PassManager's per-stage
deadline policies, cooperative sampler interruption for every backend,
process-pool budget handoff (no leaked workers), and the runner's
end-to-end ``deadline=`` behavior including the partial-result
guarantee.
"""

import multiprocessing
import pickle
import random
import time

import numpy as np
import pytest

from repro.core.deadline import Budget, Deadline, DeadlineExceeded
from repro.core.pipeline import PassManager, PipelineContext, Stage
from repro.ising.model import IsingModel
from repro.qmasm.runner import QmasmRunner
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.sqa import PathIntegralAnnealer
from repro.solvers.tabu import TabuSampler

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"


def _random_model(seed: int, n: int, density: float = 0.5) -> IsingModel:
    rng = random.Random(seed)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, rng.uniform(-1, 1))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                model.add_interaction(i, j, rng.uniform(-1, 1))
    return model


class _FakeClock:
    """An injectable monotonic clock tests can advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Deadline / Budget primitives
# ----------------------------------------------------------------------
def test_deadline_elapsed_remaining_expired():
    clock = _FakeClock()
    deadline = Deadline(10.0, clock=clock)
    assert deadline.elapsed() == 0.0
    assert deadline.remaining() == 10.0
    assert not deadline.expired()
    clock.now += 4.0
    assert deadline.elapsed() == pytest.approx(4.0)
    assert deadline.remaining() == pytest.approx(6.0)
    clock.now += 7.0
    assert deadline.expired()
    assert deadline.remaining() == 0.0  # clamped, never negative


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        Deadline(0.0)
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_deadline_check_raises_structured_error():
    clock = _FakeClock()
    deadline = Deadline(1.0, clock=clock)
    deadline.check(stage="run.sample")  # under budget: no-op
    clock.now += 2.0
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check(stage="run.sample", partial={"some": "artifact"})
    err = excinfo.value
    assert err.stage == "run.sample"
    assert err.budget_s == 1.0
    assert err.elapsed_s == pytest.approx(2.0)
    assert err.partial == {"some": "artifact"}
    assert "run.sample" in str(err)


def test_budget_snapshot_and_rearm():
    clock = _FakeClock()
    deadline = Deadline(10.0, clock=clock)
    clock.now += 4.0
    budget = deadline.budget()
    assert budget.seconds == pytest.approx(6.0)
    # Budgets cross process boundaries; monotonic readings must not.
    budget = pickle.loads(pickle.dumps(budget))
    worker_clock = _FakeClock()
    local = budget.start(clock=worker_clock)
    assert local.budget_s == pytest.approx(6.0)
    assert not local.expired()


def test_spent_budget_rearms_already_expired():
    local = Budget(0.0).start()
    assert local is not None
    assert local.expired()


# ----------------------------------------------------------------------
# PassManager deadline policies
# ----------------------------------------------------------------------
class _MarkStage(Stage):
    def __init__(self, name, policy="abort"):
        self.name = name
        self.deadline_policy = policy
        self.ran = False

    def run(self, artifact, context):
        self.ran = True
        return artifact


def _expired_context():
    clock = _FakeClock()
    deadline = Deadline(1.0, clock=clock)
    clock.now += 2.0
    return PipelineContext(deadline=deadline)


def test_pipeline_abort_policy_raises_with_partial():
    stage = _MarkStage("embed", policy="abort")
    manager = PassManager([stage], name="run")
    context = _expired_context()
    with pytest.raises(DeadlineExceeded) as excinfo:
        manager.run({"partial": True}, context)
    assert excinfo.value.stage == "run.embed"
    assert excinfo.value.partial == {"partial": True}
    assert not stage.ran
    assert context.metrics.counter("deadline.expired").value == 1


def test_pipeline_skip_policy_records_skipped_stage():
    stage = _MarkStage("postprocess", policy="skip")
    manager = PassManager([stage], name="run")
    context = _expired_context()
    artifact = manager.run("artifact", context)
    assert artifact == "artifact"
    assert not stage.ran
    record = context.stats["postprocess"]
    assert record.skipped
    assert context.metrics.counter("deadline.stages_skipped").value == 1


def test_pipeline_run_policy_still_runs():
    stage = _MarkStage("certify", policy="run")
    manager = PassManager([stage], name="run")
    context = _expired_context()
    manager.run("artifact", context)
    assert stage.ran


def test_pipeline_without_deadline_is_unconstrained():
    stage = _MarkStage("anything", policy="abort")
    manager = PassManager([stage], name="run")
    manager.run("artifact", PipelineContext())
    assert stage.ran


# ----------------------------------------------------------------------
# Cooperative sampler interruption
# ----------------------------------------------------------------------
def _expired_deadline():
    clock = _FakeClock()
    deadline = Deadline(1e-3, clock=clock)
    clock.now += 1.0
    return deadline


def test_sa_sampler_interrupts_and_flags():
    model = _random_model(0, 24)
    result = SimulatedAnnealingSampler(seed=0).sample(
        model, num_reads=4, num_sweeps=5000, deadline=_expired_deadline()
    )
    assert len(result) == 4  # partial results, never empty
    assert result.info["deadline_interrupted"] is True
    assert result.info["num_sweeps_completed"] < 5000


def test_sa_sampler_under_budget_is_bit_identical():
    """Deadline polling must consume no RNG: same seed, same samples."""
    model = _random_model(1, 16)
    free = SimulatedAnnealingSampler(seed=7).sample(
        model, num_reads=3, num_sweeps=64
    )
    bounded = SimulatedAnnealingSampler(seed=7).sample(
        model, num_reads=3, num_sweeps=64, deadline=Deadline(3600.0)
    )
    assert np.array_equal(free.records, bounded.records)
    assert "deadline_interrupted" not in bounded.info


def test_sqa_sampler_interrupts_and_flags():
    model = _random_model(2, 16)
    result = PathIntegralAnnealer(seed=0).sample(
        model, num_reads=3, num_sweeps=5000, deadline=_expired_deadline()
    )
    assert len(result) == 3
    assert result.info["deadline_interrupted"] is True
    assert result.info["num_sweeps_completed"] < 5000


def test_tabu_sampler_interrupts_and_flags():
    model = _random_model(3, 24)
    result = TabuSampler(seed=0).sample(
        model, num_reads=6, max_iter=100000, deadline=_expired_deadline()
    )
    assert len(result) == 6
    assert result.info["deadline_interrupted"] is True


def test_greedy_sampler_interrupts_and_flags():
    model = _random_model(4, 24)
    result = SteepestDescentSolver(seed=0).sample(
        model, num_reads=4, deadline=_expired_deadline()
    )
    assert len(result) == 4
    assert result.info["deadline_interrupted"] is True


def test_sweep_batch_overshoot_bound():
    """A real (ticking) deadline stops within ~one sweep batch."""
    model = _random_model(5, 48, density=0.8)
    budget = 0.05
    start = time.perf_counter()
    result = SimulatedAnnealingSampler(seed=0).sample(
        model, num_reads=64, num_sweeps=200000, deadline=Deadline(budget)
    )
    elapsed = time.perf_counter() - start
    assert result.info["deadline_interrupted"] is True
    # Generous slack for slow CI machines; the point is that a 4e6-sweep
    # request does not run to completion (~minutes) under a 50ms budget.
    assert elapsed < budget + 2.0


# ----------------------------------------------------------------------
# Machine: pooled execution with budgets
# ----------------------------------------------------------------------
def _machine(**kwargs):
    return DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0),
        seed=0,
        **kwargs,
    )


def _physical_model(machine):
    qubits = sorted(machine.working_graph.nodes())[:4]
    model = IsingModel()
    for q in qubits:
        model.add_variable(q, 0.5)
    for u, v in machine.working_graph.subgraph(qubits).edges():
        model.add_interaction(u, v, -0.7)
    return model


def test_machine_serial_deadline_interrupts():
    machine = _machine()
    model = _physical_model(machine)
    result = machine.sample_ising(
        model, num_reads=20, deadline=_expired_deadline()
    )
    assert len(result)
    assert result.info["deadline_interrupted"] is True


def test_machine_pooled_deadline_no_leaked_workers():
    machine = _machine()
    model = _physical_model(machine)
    before = {p.pid for p in multiprocessing.active_children()}
    result = machine.sample_ising(
        model,
        num_reads=16,
        num_spin_reversal_transforms=4,
        max_workers=2,
        deadline=Deadline(1e-3),
    )
    # Give the executor's atexit-free shutdown a beat, then assert no
    # pool workers outlived the call.
    for _ in range(50):
        leaked = {
            p.pid for p in multiprocessing.active_children()
        } - before
        if not leaked:
            break
        time.sleep(0.1)
    assert not leaked
    assert len(result)
    assert result.info["deadline_interrupted"] is True


def test_machine_pooled_deadline_matches_serial_when_unexpired():
    machine_a = _machine()
    machine_b = _machine()
    model = _physical_model(machine_a)
    serial = machine_a.sample_ising(
        model, num_reads=8, num_spin_reversal_transforms=2,
        deadline=Deadline(3600.0),
    )
    pooled = machine_b.sample_ising(
        model, num_reads=8, num_spin_reversal_transforms=2, max_workers=2,
        deadline=Deadline(3600.0),
    )
    assert np.array_equal(serial.records, pooled.records)


# ----------------------------------------------------------------------
# Runner end-to-end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def runner():
    return QmasmRunner(machine=_machine(), seed=0)


def test_runner_accepts_float_deadline(runner):
    result = runner.run(
        AND_PROGRAM, solver="sa", num_reads=10, deadline=3600.0
    )
    info = result.info["deadline"]
    assert info["budget_s"] == 3600.0
    assert not info["expired"]
    assert not info["sampler_interrupted"]


def test_runner_deadline_mid_sample_returns_partial(runner):
    """Expiry during sampling yields a usable (flagged) result."""
    result = runner.run(
        AND_PROGRAM,
        solver="sqa",
        num_reads=8,
        num_sweeps=200000,
        deadline=0.2,
    )
    info = result.info["deadline"]
    assert info["expired"]
    assert info["sampler_interrupted"]
    assert result.sampleset is not None and len(result.sampleset)
    # Optional refinement stages are skipped once time is up.
    assert result.stats["postprocess"].skipped


def test_runner_deadline_before_required_stage_raises():
    runner = QmasmRunner(machine=_machine(), seed=0)
    with pytest.raises(DeadlineExceeded) as excinfo:
        runner.run(
            AND_PROGRAM, solver="dwave", num_reads=5,
            deadline=_expired_deadline(),
        )
    assert excinfo.value.stage is not None
    assert excinfo.value.stage.startswith("run.")
    assert excinfo.value.partial is not None


def test_runner_deadline_wall_clock_bound():
    """End to end, the run terminates promptly after its budget."""
    runner = QmasmRunner(machine=_machine(), seed=0)
    budget = 0.3
    start = time.perf_counter()
    try:
        runner.run(
            AND_PROGRAM, solver="sqa", num_reads=16,
            num_sweeps=500000, deadline=budget,
        )
    except DeadlineExceeded:
        pass
    elapsed = time.perf_counter() - start
    assert elapsed < budget + 3.0  # slack for CI, not for the sampler
