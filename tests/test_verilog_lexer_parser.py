"""Tests for the Verilog lexer and parser."""

import pytest

from repro.hdl import ast_nodes as ast
from repro.hdl.errors import VerilogSyntaxError
from repro.hdl.lexer import tokenize
from repro.hdl.parser import parse


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def test_tokenize_keywords_and_identifiers():
    tokens = tokenize("module foo endmodule")
    assert [(t.kind, t.value) for t in tokens[:3]] == [
        ("keyword", "module"),
        ("ident", "foo"),
        ("keyword", "endmodule"),
    ]
    assert tokens[-1].kind == "eof"


def test_tokenize_sized_literals():
    cases = {
        "4'b1010": (10, 4),
        "8'hFF": (255, 8),
        "8'hff": (255, 8),
        "6'o17": (15, 6),
        "12'd100": (100, 12),
        "'d42": (42, None),
    }
    for text, expected in cases.items():
        token = tokenize(text)[0]
        assert token.kind == "number"
        assert token.value == expected, text


def test_oversized_literal_truncates():
    token = tokenize("2'd7")[0]
    assert token.value == (3, 2)  # Verilog truncates to the stated width


def test_plain_decimal_with_underscores():
    assert tokenize("1_000")[0].value == (1000, None)


def test_x_and_z_digits_rejected():
    with pytest.raises(VerilogSyntaxError):
        tokenize("4'b10x0")
    with pytest.raises(VerilogSyntaxError):
        tokenize("4'bzzzz")


def test_comments_stripped():
    tokens = tokenize("a // comment\n/* block\ncomment */ b")
    values = [t.value for t in tokens if t.kind == "ident"]
    assert values == ["a", "b"]


def test_unterminated_block_comment():
    with pytest.raises(VerilogSyntaxError):
        tokenize("/* never ends")


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\n  c")
    idents = [t for t in tokens if t.kind == "ident"]
    assert [t.line for t in idents] == [1, 2, 3]
    assert idents[2].column == 3


def test_multichar_operators_win():
    values = [t.value for t in tokenize("a <= b == c != d && e") if t.kind == "op"]
    assert values == ["<=", "==", "!=", "&&"]


def test_unexpected_character():
    with pytest.raises(VerilogSyntaxError):
        tokenize("a ` b")


# ----------------------------------------------------------------------
# Parser: module structure
# ----------------------------------------------------------------------
def test_parse_minimal_module():
    source = parse("module m; endmodule")
    assert len(source.modules) == 1
    assert source.modules[0].name == "m"


def test_parse_non_ansi_ports():
    module = parse(
        "module m (a, b, y); input a, b; output y; endmodule"
    ).module("m")
    assert module.port_order == ["a", "b", "y"]
    decls = [item for item in module.items if isinstance(item, ast.Decl)]
    assert {d.kind for d in decls} == {"input", "output"}


def test_parse_ansi_ports():
    module = parse(
        "module m (input a, input [3:0] b, output reg [5:0] y); endmodule"
    ).module("m")
    assert module.port_order == ["a", "b", "y"]
    decls = [item for item in module.items if isinstance(item, ast.Decl)]
    assert decls[2].is_reg
    assert decls[1].msb.value == 3


def test_parse_ansi_direction_inheritance():
    module = parse("module m (input a, b, output y); endmodule").module("m")
    decls = [item for item in module.items if isinstance(item, ast.Decl)]
    assert decls[0].kind == "input"
    assert decls[1].kind == "input"  # inherited
    assert decls[2].kind == "output"


def test_parse_multiple_modules():
    source = parse("module a; endmodule module b; endmodule")
    assert [m.name for m in source.modules] == ["a", "b"]
    with pytest.raises(KeyError):
        source.module("c")


def test_parse_parameters():
    module = parse(
        "module m; parameter W = 8; localparam H = W * 2; endmodule"
    ).module("m")
    params = [i for i in module.items if isinstance(i, ast.ParamDecl)]
    assert params[0].name == "W" and not params[0].local
    assert params[1].name == "H" and params[1].local


def test_parse_parameter_header():
    module = parse(
        "module m #(parameter W = 4) (input [W-1:0] x); endmodule"
    ).module("m")
    params = [i for i in module.items if isinstance(i, ast.ParamDecl)]
    assert params[0].name == "W"


# ----------------------------------------------------------------------
# Parser: expressions
# ----------------------------------------------------------------------
def _rhs(text: str) -> ast.Expr:
    module = parse(f"module m; wire x; assign x = {text}; endmodule").module("m")
    assign = [i for i in module.items if isinstance(i, ast.ContinuousAssign)][0]
    return assign.value


def test_precedence_mul_over_add():
    expr = _rhs("a + b * c")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_relational_over_logical():
    expr = _rhs("a < b && c > d")
    assert expr.op == "&&"
    assert expr.left.op == "<" and expr.right.op == ">"


def test_precedence_bitwise_chain():
    expr = _rhs("a | b ^ c & d")
    assert expr.op == "|"
    assert expr.right.op == "^"
    assert expr.right.right.op == "&"


def test_ternary_is_right_associative():
    expr = _rhs("a ? b : c ? d : e")
    assert isinstance(expr, ast.Ternary)
    assert isinstance(expr.if_false, ast.Ternary)


def test_unary_operators():
    expr = _rhs("~a & !b")
    assert expr.left.op == "~"
    assert expr.right.op == "!"
    reduction = _rhs("&a")
    assert isinstance(reduction, ast.Unary) and reduction.op == "&"


def test_concat_and_repeat():
    concat = _rhs("{a, b, 2'b01}")
    assert isinstance(concat, ast.Concat) and len(concat.parts) == 3
    repeat = _rhs("{4{a}}")
    assert isinstance(repeat, ast.Repeat)
    assert repeat.count.value == 4


def test_selects():
    index = _rhs("mem[3]")
    assert isinstance(index, ast.Index) and index.base == "mem"
    part = _rhs("bus[7:4]")
    assert isinstance(part, ast.PartSelect)
    assert (part.msb.value, part.lsb.value) == (7, 4)


def test_parenthesized_grouping():
    expr = _rhs("(a + b) * c")
    assert expr.op == "*"
    assert expr.left.op == "+"


# ----------------------------------------------------------------------
# Parser: statements
# ----------------------------------------------------------------------
def _always_body(text: str) -> ast.Stmt:
    module = parse(
        f"module m; reg [3:0] r; always @(posedge clk) {text} endmodule"
    ).module("m")
    return [i for i in module.items if isinstance(i, ast.Always)][0].body


def test_if_else_chain():
    stmt = _always_body("if (a) r <= 0; else if (b) r <= 1; else r <= 2;")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.else_branch, ast.If)


def test_begin_end_blocks():
    stmt = _always_body("begin r <= 1; r <= 2; end")
    assert isinstance(stmt, ast.Block)
    assert len(stmt.statements) == 2


def test_blocking_vs_nonblocking():
    stmt = _always_body("begin r = 1; r <= 2; end")
    assert stmt.statements[0].blocking
    assert not stmt.statements[1].blocking


def test_case_statement():
    stmt = _always_body(
        "case (r) 0: r <= 1; 1, 2: r <= 3; default: r <= 0; endcase"
    )
    assert isinstance(stmt, ast.Case)
    assert len(stmt.items) == 3
    assert len(stmt.items[1].labels) == 2
    assert stmt.items[2].labels == []


def test_for_statement():
    stmt = _always_body("for (i = 0; i < 4; i = i + 1) r <= r + 1;")
    assert isinstance(stmt, ast.For)
    assert stmt.var == "i" and stmt.update_var == "i"


def test_sensitivity_lists():
    module = parse(
        """
        module m;
        reg a, b;
        always @* a = 1;
        always @(*) b = 1;
        endmodule
        """
    ).module("m")
    always_items = [i for i in module.items if isinstance(i, ast.Always)]
    assert all(a.sensitivity[0].edge == "star" for a in always_items)
    assert not always_items[0].is_sequential()


def test_edge_sensitivity():
    module = parse(
        "module m; reg r; always @(negedge clk) r <= 1; endmodule"
    ).module("m")
    always = [i for i in module.items if isinstance(i, ast.Always)][0]
    assert always.sensitivity[0].edge == "negedge"
    assert always.is_sequential()


# ----------------------------------------------------------------------
# Parser: instances
# ----------------------------------------------------------------------
def test_named_instance():
    module = parse(
        "module m; sub u1 (.a(x), .b(y | z)); endmodule"
    ).module("m")
    inst = [i for i in module.items if isinstance(i, ast.Instance)][0]
    assert inst.module == "sub" and inst.name == "u1"
    assert inst.connections[0].port == "a"


def test_positional_instance():
    module = parse("module m; sub u1 (x, y); endmodule").module("m")
    inst = [i for i in module.items if isinstance(i, ast.Instance)][0]
    assert all(c.port is None for c in inst.connections)


def test_parameterized_instance():
    module = parse(
        "module m; sub #(.W(8)) u1 (.a(x)); endmodule"
    ).module("m")
    inst = [i for i in module.items if isinstance(i, ast.Instance)][0]
    assert inst.parameters[0][0] == "W"


# ----------------------------------------------------------------------
# Parser: error reporting
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bad",
    [
        "module m",  # no semicolon / endmodule
        "module m; assign x = ; endmodule",
        "module m; wire [3] x; endmodule",
        "module m; initial x = 1; endmodule",
        "module m; casez (x) endcase endmodule",
        "module m; always @(posedge clk) x <=; endmodule",
        "",
    ],
)
def test_syntax_errors_raise(bad):
    with pytest.raises(VerilogSyntaxError):
        parse(bad)


def test_error_carries_line_number():
    try:
        parse("module m;\n\nassign x = ;\nendmodule")
    except VerilogSyntaxError as exc:
        assert exc.line == 3
    else:  # pragma: no cover
        pytest.fail("expected a syntax error")
