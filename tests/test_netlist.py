"""Tests for the gate-level netlist IR."""

import pytest

from repro.synth.netlist import Netlist, NetlistError, PortDirection


def _and_netlist():
    nl = Netlist("top")
    a, b, y = nl.new_net(), nl.new_net(), nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_port("b", PortDirection.INPUT, [b])
    nl.add_port("y", PortDirection.OUTPUT, [y])
    nl.add_cell("AND", {"A": a, "B": b, "Y": y}, name="g0")
    return nl


def test_basic_construction():
    nl = _and_netlist()
    nl.validate()
    assert nl.num_cells() == 1
    assert nl.num_cells("AND") == 1
    assert nl.num_cells("OR") == 0
    assert len(nl.inputs()) == 2
    assert len(nl.outputs()) == 1


def test_new_nets_are_unique():
    nl = Netlist("t")
    nets = nl.new_nets(100)
    assert len(set(nets)) == 100


def test_duplicate_port_rejected():
    nl = _and_netlist()
    with pytest.raises(NetlistError):
        nl.add_port("a", PortDirection.INPUT, [nl.new_net()])


def test_unknown_cell_kind_rejected():
    nl = Netlist("t")
    with pytest.raises(NetlistError):
        nl.add_cell("FROB", {"Y": nl.new_net()})


def test_wrong_ports_rejected():
    nl = Netlist("t")
    with pytest.raises(NetlistError):
        nl.add_cell("AND", {"A": nl.new_net(), "Y": nl.new_net()})
    with pytest.raises(NetlistError):
        nl.add_cell("GND", {"A": nl.new_net()})


def test_duplicate_cell_name_rejected():
    nl = _and_netlist()
    with pytest.raises(NetlistError):
        nl.add_cell(
            "NOT", {"A": nl.new_net(), "Y": nl.new_net()}, name="g0"
        )


def test_cell_accessors():
    nl = _and_netlist()
    cell = nl.cells["g0"]
    assert cell.output_port == "Y"
    assert cell.input_ports == ("A", "B")
    assert len(cell.input_nets) == 2
    assert not cell.is_sequential


def test_drivers_and_sinks():
    nl = _and_netlist()
    drivers = nl.drivers()
    cell = nl.cells["g0"]
    assert drivers[cell.output_net] == ("g0", "Y")
    sinks = nl.sinks()
    a_net = nl.ports["a"].bits[0]
    assert ("g0", "A") in sinks[a_net]


def test_multiple_drivers_detected():
    nl = Netlist("t")
    a, y = nl.new_net(), nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_cell("NOT", {"A": a, "Y": y})
    nl.add_cell("NOT", {"A": a, "Y": y})  # second driver of y
    with pytest.raises(NetlistError):
        nl.drivers()


def test_validate_catches_undriven_input():
    nl = Netlist("t")
    floating = nl.new_net()
    y = nl.new_net()
    nl.add_port("y", PortDirection.OUTPUT, [y])
    nl.add_cell("NOT", {"A": floating, "Y": y})
    with pytest.raises(NetlistError):
        nl.validate()


def test_validate_catches_undriven_output():
    nl = Netlist("t")
    nl.add_port("y", PortDirection.OUTPUT, [nl.new_net()])
    with pytest.raises(NetlistError):
        nl.validate()


def test_topological_order_respects_dependencies():
    nl = Netlist("t")
    a = nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    n1, n2 = nl.new_net(), nl.new_net()
    # Add in reverse dependency order on purpose.
    nl.add_cell("NOT", {"A": n1, "Y": n2}, name="second")
    nl.add_cell("NOT", {"A": a, "Y": n1}, name="first")
    nl.add_port("y", PortDirection.OUTPUT, [n2])
    order = [c.name for c in nl.topological_cells()]
    assert order.index("first") < order.index("second")


def test_combinational_cycle_detected():
    nl = Netlist("t")
    n1, n2 = nl.new_net(), nl.new_net()
    nl.add_cell("NOT", {"A": n1, "Y": n2})
    nl.add_cell("NOT", {"A": n2, "Y": n1})
    with pytest.raises(NetlistError):
        nl.topological_cells()


def test_dff_breaks_cycles():
    """A feedback loop through a flip-flop is sequential, not cyclic."""
    nl = Netlist("t")
    q, d = nl.new_net(), nl.new_net()
    nl.add_cell("NOT", {"A": q, "Y": d})
    nl.add_cell("DFF_P", {"D": d, "Q": q})
    order = nl.topological_cells()  # must not raise
    assert len(order) == 2
    assert nl.has_sequential()


def test_cell_histogram():
    nl = _and_netlist()
    nl.add_cell("NOT", {"A": nl.ports["a"].bits[0], "Y": nl.new_net()})
    nl.add_cell("NOT", {"A": nl.ports["b"].bits[0], "Y": nl.new_net()})
    assert nl.cell_histogram() == {"AND": 1, "NOT": 2}


def test_net_naming():
    nl = _and_netlist()
    nl.name_net("internal", [5, 6])
    assert nl.net_names["internal"] == [5, 6]
    assert nl.net_names["a"] == nl.ports["a"].bits


def test_constant_cells():
    nl = Netlist("t")
    g = nl.new_net()
    cell = nl.add_cell("GND", {"Y": g})
    assert cell.output_port == "Y"
    assert cell.input_ports == ()
    nl.add_port("y", PortDirection.OUTPUT, [g])
    nl.validate()
