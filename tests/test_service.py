"""Annealing-as-a-service: lifecycle, limits, and determinism.

The serving contract under test:

* **Lifecycle** -- ``POST /jobs`` answers 202 with an id; polling
  ``GET /jobs/<id>`` reaches ``done`` with the structured result;
  ``GET /jobs/<id>/trace`` exposes the per-stage pipeline record.
* **Structured failure** -- invalid source is a synchronous 400 whose
  payload carries the :func:`repro.hdl.errors.format_diagnostic`
  rendering (plus line/column); an unknown job id is a structured 404;
  a deadline-exceeded job lands in the terminal ``timeout`` state with
  an HTTP-408-style error body naming the stage that hit the wall.
* **Rate limiting** -- per-tenant token buckets answer 429 with a
  ``Retry-After`` that, when honored, admits the retry; other tenants
  are unaffected.
* **Determinism** -- N identical seeded submissions running
  concurrently return results bit-identical to a serial
  ``VerilogAnnealerCompiler.run()`` with the same seed, and a warm
  resubmission returns the identical result while recording
  ``service.cache_warm``.
* **Clean shutdown** -- a draining shutdown finishes in-flight jobs and
  leaves no threads behind (asserted by the ``service_server`` fixture
  on every test here).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import VerilogAnnealerCompiler
from repro.service.app import AnnealingService, ServiceConfig
from repro.service.jobs import Job, JobRequest, JobState, JobStore, ServiceError
from repro.service.queue import WorkerPool
from repro.service.ratelimit import RateLimiter, TokenBucket
from tests.conftest import LISTING_5_CIRCSAT, LISTING_6_MULT, start_service_server

MULT_JOB = {
    "source": LISTING_6_MULT,
    "pins": ["C[7:0] := 10001111"],
    "solver": "sa",
    "num_reads": 200,
    "seed": 7,
}


# ----------------------------------------------------------------------
# Token bucket / rate limiter units (fake clock: exact arithmetic).
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now_s=100.0)
        for _ in range(3):
            allowed, retry = bucket.try_acquire(100.0)
            assert allowed and retry == 0.0
        allowed, retry = bucket.try_acquire(100.0)
        assert not allowed
        # Empty bucket at 2 tokens/s: the next token is 0.5s away.
        assert retry == pytest.approx(0.5)
        allowed, _ = bucket.try_acquire(100.0 + retry)
        assert allowed

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now_s=0.0)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        # A long idle period refills to burst, never beyond.
        allowed, _ = bucket.try_acquire(1000.0)
        assert allowed
        assert bucket.tokens == pytest.approx(1.0)

    def test_limiter_isolates_tenants(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert limiter.acquire("alice") == (True, 0.0)
        allowed, retry = limiter.acquire("alice")
        assert not allowed and retry > 0
        # Bob has his own bucket.
        allowed, _ = limiter.acquire("bob")
        assert allowed
        clock[0] += retry
        allowed, _ = limiter.acquire("alice")
        assert allowed

    def test_limiter_disabled_admits_everything(self):
        limiter = RateLimiter(rate=None)
        assert not limiter.enabled
        for _ in range(1000):
            assert limiter.acquire("anyone") == (True, 0.0)

    def test_limiter_bounds_tracked_tenants(self):
        limiter = RateLimiter(rate=1.0, burst=5.0, clock=lambda: 0.0, max_tenants=3)
        for name in ("a", "b", "c", "d"):
            limiter.acquire(name)
        tenants = limiter.tenants()
        assert len(tenants) == 3
        assert "a" not in tenants  # least recently used was evicted


# ----------------------------------------------------------------------
# Submission validation (no server needed).
# ----------------------------------------------------------------------
class TestValidation:
    def _reject(self, payload, code, status=400):
        with pytest.raises(ServiceError) as excinfo:
            JobRequest.from_payload(payload)
        assert excinfo.value.status == status
        assert excinfo.value.code == code
        return excinfo.value

    def test_rejects_non_object_and_missing_source(self):
        self._reject(["not", "an", "object"], "invalid_request")
        self._reject({}, "invalid_request")
        self._reject({"source": "   "}, "invalid_request")

    def test_rejects_unknown_fields_and_bad_enums(self):
        exc = self._reject({"source": "x", "frobnicate": 1}, "invalid_request")
        assert "frobnicate" in exc.message
        self._reject({"source": "x", "solver": "quantum9000"}, "invalid_request")
        self._reject({"source": "x", "language": "cobol"}, "invalid_request")

    def test_rejects_bad_numbers(self):
        self._reject(
            {"source": LISTING_6_MULT, "num_reads": 0}, "invalid_request"
        )
        self._reject(
            {"source": LISTING_6_MULT, "num_reads": True}, "invalid_request"
        )
        self._reject(
            {"source": LISTING_6_MULT, "deadline_s": -1}, "invalid_request"
        )
        self._reject(
            {"source": LISTING_6_MULT, "deadline_s": 1e9}, "invalid_request"
        )

    def test_invalid_pin_carries_diagnostic(self):
        exc = self._reject(
            {"source": LISTING_6_MULT, "pins": ["C[7:0] walrus 3"]},
            "invalid_pin",
        )
        assert "diagnostic" in exc.details
        assert "pin" in exc.details["diagnostic"]

    def test_invalid_verilog_carries_line_and_diagnostic(self):
        bad = "module broken (a);\n  input a;\n  assign = ;\nendmodule\n"
        exc = self._reject({"source": bad}, "invalid_source")
        payload = exc.payload()
        assert payload["language"] == "verilog"
        assert isinstance(payload.get("line"), int)
        assert "diagnostic" in payload and payload["diagnostic"]

    def test_invalid_qmasm_rejected(self):
        exc = self._reject(
            {"source": "A B C D toomany\n", "language": "qmasm"},
            "invalid_source",
        )
        assert exc.payload()["language"] == "qmasm"

    def test_valid_request_roundtrips(self):
        request = JobRequest.from_payload(dict(MULT_JOB))
        assert request.solver == "sa"
        assert request.pins == ("C[7:0] := 10001111",)
        assert request.seed == 7


# ----------------------------------------------------------------------
# Worker pool unit tests (no HTTP, no sampling).
# ----------------------------------------------------------------------
def _job(job_id="j1"):
    return Job(id=job_id, request=JobRequest(source="x", language="qmasm"))


class TestWorkerPool:
    def test_executes_submitted_jobs(self):
        done = []
        pool = WorkerPool(lambda job: done.append(job.id), workers=2)
        pool.start()
        assert pool.submit(_job("a")) and pool.submit(_job("b"))
        assert pool.shutdown(drain=True, timeout_s=10.0)
        assert sorted(done) == ["a", "b"]

    def test_full_queue_rejects(self):
        release = threading.Event()
        pool = WorkerPool(lambda job: release.wait(10.0), workers=1, queue_size=1)
        pool.start()
        accepted = [pool.submit(_job(f"j{i}")) for i in range(8)]
        # One job occupies the worker, one the queue slot; the rest of
        # the burst must be rejected, deterministically.
        assert accepted.count(True) <= 2
        assert accepted[-1] is False
        release.set()
        assert pool.shutdown(drain=True, timeout_s=10.0)

    def test_drain_finishes_in_flight_work(self):
        started = threading.Event()
        finished = []

        def slow(job):
            started.set()
            time.sleep(0.2)
            finished.append(job.id)

        pool = WorkerPool(slow, workers=1)
        pool.start()
        assert pool.submit(_job("slow"))
        assert started.wait(5.0)
        assert pool.shutdown(drain=True, timeout_s=10.0)
        assert finished == ["slow"]

    def test_non_drain_fails_queued_jobs(self):
        release = threading.Event()
        pool = WorkerPool(lambda job: release.wait(10.0), workers=1, queue_size=4)
        pool.start()
        blocker, queued = _job("blocker"), _job("queued")
        assert pool.submit(blocker)
        time.sleep(0.05)  # let the worker pick up the blocker
        assert pool.submit(queued)
        release.set()
        assert pool.shutdown(drain=False, timeout_s=10.0)
        assert queued.is_terminal()
        assert queued.error["error"] == "shutdown_pending"
        assert queued.error["status"] == 503

    def test_shutdown_is_idempotent_and_closes_submissions(self):
        pool = WorkerPool(lambda job: None, workers=1)
        pool.start()
        assert pool.shutdown()
        assert pool.shutdown()  # settled verdict, no deadlock
        assert pool.submit(_job()) is False

    def test_executor_crash_does_not_kill_worker(self):
        def explode(job):
            raise RuntimeError("boom")

        pool = WorkerPool(explode, workers=1)
        pool.start()
        first, second = _job("a"), _job("b")
        assert pool.submit(first) and pool.submit(second)
        assert pool.shutdown(drain=True, timeout_s=10.0)
        for job in (first, second):
            assert job.is_terminal()
            assert job.error["error"] == "internal"


# ----------------------------------------------------------------------
# Job store.
# ----------------------------------------------------------------------
def test_store_evicts_only_terminal_jobs():
    store = JobStore(max_jobs=2)
    a = store.create(JobRequest(source="x"), "t")
    b = store.create(JobRequest(source="x"), "t")
    a.finish(JobState.DONE, result={})
    c = store.create(JobRequest(source="x"), "t")
    # a (terminal) was evicted; b (active) survived the bound.
    assert store.get(a.id) is None
    assert store.get(b.id) is not None and store.get(c.id) is not None


# ----------------------------------------------------------------------
# HTTP lifecycle against a live server.
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_poll_result(self, service_server):
        _, client = service_server
        status, body = client.post("/jobs", MULT_JOB)
        assert status == 202
        assert body["state"] == "queued"
        assert body["links"]["self"] == f"/jobs/{body['id']}"

        snapshot = client.await_terminal(body["id"])
        assert snapshot["state"] == "done"
        assert snapshot["queue_wait_s"] >= 0
        assert snapshot["run_s"] > 0
        result = snapshot["result"]
        assert result["num_valid_solutions"] >= 1
        best = result["solutions"][0]
        assert best["valid"]
        # 143 = 11 x 13: backward execution factored the pinned product.
        values = best["values"]
        a = sum(values[f"A[{i}]"] << i for i in range(4))
        b = sum(values[f"B[{i}]"] << i for i in range(4))
        assert sorted([a, b]) == [11, 13]

        status, trace = client.get(f"/jobs/{body['id']}/trace")
        assert status == 200
        names = [s["name"] for s in trace["stages"]]
        assert "elaborate" in names and "sample" in names

    def test_unknown_job_is_structured_404(self, service_server):
        _, client = service_server
        status, body = client.get("/jobs/job-999999-deadbeef")
        assert status == 404
        assert body == {
            "error": "not_found",
            "message": "no job 'job-999999-deadbeef'",
            "status": 404,
        }
        status, body = client.get("/nope")
        assert status == 404 and body["error"] == "not_found"

    def test_invalid_source_is_structured_400(self, service_server):
        _, client = service_server
        bad = "module broken (a);\n  input a;\n  assign = ;\nendmodule\n"
        status, body = client.post("/jobs", {"source": bad})
        assert status == 400
        assert body["error"] == "invalid_source"
        assert body["status"] == 400
        assert isinstance(body["line"], int)
        assert body["diagnostic"].startswith("verilog:")

    def test_invalid_json_body_is_400(self, service_server):
        import json as json_mod
        import urllib.error
        import urllib.request

        _, client = service_server
        req = urllib.request.Request(
            client.base_url + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("malformed body was accepted")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            body = json_mod.loads(exc.read())
            assert body["error"] == "invalid_json"

    def test_deadline_exceeded_job_times_out(self, service_server):
        _, client = service_server
        job = dict(MULT_JOB)
        # Armed when the worker picks the job up, expired long before
        # the run pipeline's first stage can start.
        job["deadline_s"] = 0.001
        status, body = client.post("/jobs", job)
        assert status == 202
        snapshot = client.await_terminal(body["id"])
        assert snapshot["state"] == "timeout"
        error = snapshot["error"]
        assert error["error"] == "deadline_exceeded"
        assert error["status"] == 408
        assert error["budget_s"] == pytest.approx(0.001)
        assert error["stage"]  # names the stage that hit the wall

    def test_queue_full_is_503(self, service_server):
        server, client = service_server
        original = server.service.pool.submit
        server.service.pool.submit = lambda job: False
        try:
            status, body = client.post("/jobs", MULT_JOB)
        finally:
            server.service.pool.submit = original
        assert status == 503
        assert body["error"] == "queue_full"
        assert "retry_after_s" in body

    def test_healthz_reports_counts(self, service_server):
        _, client = service_server
        status, body = client.get("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers_alive"] == body["workers"] == 2
        assert set(body["jobs"]) == {
            "queued",
            "running",
            "done",
            "error",
            "timeout",
        }

    def test_qmasm_job_runs(self, service_server):
        _, client = service_server
        status, body = client.post(
            "/jobs",
            {
                "source": "A -1\nA B -5\n",
                "language": "qmasm",
                "solver": "exact",
                "pins": ["A := true"],
            },
        )
        assert status == 202
        snapshot = client.await_terminal(body["id"])
        assert snapshot["state"] == "done"
        best = snapshot["result"]["solutions"][0]
        # Pinned A true; the -5 coupling aligns B with A.
        assert best["values"]["A"] is True and best["values"]["B"] is True


# ----------------------------------------------------------------------
# Fresh-server metrics: the zero-request rendering must be well-defined.
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_fresh_server_metrics_well_defined(self, service_server):
        import re

        _, client = service_server
        status, text = client.get("/metrics")
        assert status == 200
        # The healthz-readiness probe already counted a request, but no
        # cache was ever consulted: the derived ratios must render as
        # explicit n/a, never 0/0, never NaN, never a crash.
        assert re.search(r"cache\.compile\.hit_ratio\s+n/a \(0 lookups\)", text)
        assert re.search(r"cache\.embedding\.hit_ratio\s+n/a \(0 lookups\)", text)
        assert "nan" not in text.lower()
        assert "service.jobs_submitted" in text

    def test_json_metrics_after_a_job(self, service_server):
        _, client = service_server
        status, body = client.post("/jobs", MULT_JOB)
        client.await_terminal(body["id"])
        status, metrics = client.get("/metrics?format=json")
        assert status == 200
        counters = metrics["counters"]
        assert counters["service.jobs_submitted"] == 1
        assert counters["service.jobs_completed"] == 1
        assert counters["cache.compile.misses"] >= 1
        assert 0.0 <= metrics["derived"]["cache.compile.hit_ratio"] <= 1.0


# ----------------------------------------------------------------------
# Rate limiting over HTTP (dedicated server with a tiny budget).
# ----------------------------------------------------------------------
class TestRateLimiting:
    @pytest.fixture()
    def limited_server(self):
        server, client = start_service_server(
            ServiceConfig(
                port=0, workers=1, rate_limit_per_s=5.0, rate_limit_burst=2.0
            )
        )
        yield server, client
        assert server.shutdown_service(drain=True, timeout_s=30.0)

    def test_burst_then_429_with_retry_after(self, limited_server):
        _, client = limited_server
        job = {"source": "A -1\n", "language": "qmasm", "solver": "exact"}
        for _ in range(2):
            status, _ = client.post("/jobs", job, tenant="alice")
            assert status == 202
        status, body, headers = client.request(
            "POST", "/jobs", payload=job, tenant="alice"
        )
        assert status == 429
        assert body["error"] == "rate_limited"
        retry_after = float(headers["Retry-After"])
        assert retry_after > 0
        assert body["retry_after_s"] == pytest.approx(retry_after, abs=1e-3)

        # Another tenant is unaffected by alice's exhausted bucket.
        status, _ = client.post("/jobs", job, tenant="bob")
        assert status == 202

        # Honoring Retry-After admits the retry.
        time.sleep(retry_after + 0.05)
        status, _ = client.post("/jobs", job, tenant="alice")
        assert status == 202


# ----------------------------------------------------------------------
# Concurrency determinism: the acceptance criterion.
# ----------------------------------------------------------------------
def _submit_and_fetch(client, payload, results, index):
    status, body = client.post("/jobs", payload)
    assert status == 202
    results[index] = client.await_terminal(body["id"], timeout_s=120.0)


def _assert_samples_identical(result_a, result_b):
    """Bit-identity over the full energy-sorted sample matrix."""
    sa, sb = result_a["samples"], result_b["samples"]
    assert sa["variables"] == sb["variables"]
    np.testing.assert_array_equal(np.asarray(sa["records"]), np.asarray(sb["records"]))
    np.testing.assert_array_equal(
        np.asarray(sa["energies"]), np.asarray(sb["energies"])
    )
    np.testing.assert_array_equal(
        np.asarray(sa["occurrences"]), np.asarray(sb["occurrences"])
    )


class TestConcurrencyDeterminism:
    JOB = {
        "source": LISTING_5_CIRCSAT,
        "pins": ["y := true"],
        "solver": "sa",
        "num_reads": 100,
        "seed": 2019,
        "return_samples": True,
    }

    def test_concurrent_submissions_bit_identical_to_serial_run(self):
        # Serial ground truth: the library API, same seed, no service.
        compiler = VerilogAnnealerCompiler(seed=2019)
        program = compiler.compile(LISTING_5_CIRCSAT)
        serial = compiler.run(
            program, pins=["y := true"], solver="sa", num_reads=100
        )
        serial_payload = serial.result_payload(include_samples=True)

        server, client = start_service_server(
            ServiceConfig(port=0, workers=4, rate_limit_per_s=None)
        )
        try:
            results = [None] * 4
            threads = [
                threading.Thread(
                    target=_submit_and_fetch,
                    args=(client, dict(self.JOB), results, i),
                )
                for i in range(len(results))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert all(r is not None for r in results), "a submission hung"

            for snapshot in results:
                assert snapshot["state"] == "done"
                _assert_samples_identical(snapshot["result"], serial_payload)
                assert (
                    snapshot["result"]["solutions"] == serial_payload["solutions"]
                )
        finally:
            assert server.shutdown_service(drain=True, timeout_s=30.0)

    def test_warm_resubmission_identical_and_counted(self, service_server):
        _, client = service_server
        status, body = client.post("/jobs", dict(self.JOB))
        cold = client.await_terminal(body["id"])
        assert cold["state"] == "done" and cold["cache_warm"] is False

        status, body = client.post("/jobs", dict(self.JOB))
        warm = client.await_terminal(body["id"])
        assert warm["state"] == "done"
        assert warm["cache_warm"] is True
        _assert_samples_identical(warm["result"], cold["result"])
        assert warm["result"]["solutions"] == cold["result"]["solutions"]

        status, metrics = client.get("/metrics?format=json")
        assert metrics["counters"]["service.cache_warm"] == 1
        assert metrics["counters"]["service.cache_cold"] == 1
        status, text = client.get("/metrics")
        assert "service.cache_warm" in text


# ----------------------------------------------------------------------
# Shutdown drains in-flight work (the AnnealingService layer directly).
# ----------------------------------------------------------------------
def test_shutdown_drains_in_flight_jobs():
    service = AnnealingService(
        ServiceConfig(port=0, workers=1, rate_limit_per_s=None)
    )
    service.start()
    job, deduplicated = service.submit(
        {
            "source": LISTING_6_MULT,
            "pins": ["C[7:0] := 10001111"],
            "solver": "sa",
            "num_reads": 500,
            "seed": 1,
        }
    )
    assert deduplicated is False
    assert service.shutdown(drain=True, timeout_s=60.0)
    assert job.is_terminal()
    assert job.snapshot()["state"] == "done"


# ----------------------------------------------------------------------
# Eviction tombstones: "aged out" answers 410, never a typo-like 404.
# ----------------------------------------------------------------------
def test_store_eviction_leaves_tombstone():
    store = JobStore(max_jobs=1)
    a = store.create(JobRequest(source="x"), "alice")
    a.finish(JobState.DONE, result={})
    store.create(JobRequest(source="x"), "alice")
    assert store.get(a.id) is None
    info = store.evicted_info(a.id)
    assert info is not None
    assert info["state_at_eviction"] == "done"
    assert info["tenant"] == "alice"
    assert info["evicted_s"] >= info["created_s"]
    # Never-seen ids have no tombstone.
    assert store.evicted_info("job-999999-cafecafe") is None


def test_tombstones_are_bounded():
    store = JobStore(max_jobs=1, max_tombstones=3)
    evicted = []
    for _ in range(6):
        job = store.create(JobRequest(source="x"), "t")
        job.finish(JobState.DONE, result={})
        evicted.append(job.id)
    # Only the newest max_tombstones eviction records survive.
    remembered = [jid for jid in evicted if store.evicted_info(jid) is not None]
    assert len(remembered) == 3
    assert remembered == evicted[-4:-1]  # the last job is still retained


class TestEvictedJobsHTTP:
    @pytest.fixture()
    def tiny_server(self):
        server, client = start_service_server(
            ServiceConfig(port=0, workers=1, rate_limit_per_s=None, max_jobs=1)
        )
        yield server, client
        assert server.shutdown_service(drain=True, timeout_s=30.0)

    def test_evicted_job_is_structured_410(self, tiny_server):
        _, client = tiny_server
        job = {"source": "A -1\n", "language": "qmasm", "solver": "exact"}
        status, first = client.post("/jobs", job)
        assert status == 202
        client.await_terminal(first["id"])
        # A second submission evicts the finished first (max_jobs=1).
        status, second = client.post("/jobs", job)
        assert status == 202
        client.await_terminal(second["id"])

        status, body = client.get(f"/jobs/{first['id']}")
        assert status == 410
        assert body["error"] == "gone"
        assert body["state_at_eviction"] == "done"
        assert "evicted_s" in body
        # A never-submitted id is still a plain 404.
        status, body = client.get("/jobs/job-999999-deadbeef")
        assert status == 404 and body["error"] == "not_found"

        status, metrics = client.get("/metrics?format=json")
        assert metrics["counters"]["service.gone_410"] >= 1


# ----------------------------------------------------------------------
# Idempotent submission: retried POSTs dedup to the original job.
# ----------------------------------------------------------------------
class TestIdempotency:
    JOB = {"source": "A -1\n", "language": "qmasm", "solver": "exact"}

    def test_header_key_dedups_resubmission(self, service_server):
        _, client = service_server
        headers = {"Idempotency-Key": "retry-123"}
        status, first = client.request(
            "POST", "/jobs", payload=self.JOB, headers=headers
        )[:2]
        assert status == 202
        assert "deduplicated" not in first
        client.await_terminal(first["id"])

        status, second = client.request(
            "POST", "/jobs", payload=self.JOB, headers=headers
        )[:2]
        assert status == 202
        assert second["id"] == first["id"]
        assert second["deduplicated"] is True

        status, metrics = client.get("/metrics?format=json")
        counters = metrics["counters"]
        assert counters["service.jobs_submitted"] == 1
        assert counters["service.idempotent_hits"] == 1

    def test_body_field_key_dedups(self, service_server):
        _, client = service_server
        job = dict(self.JOB, idempotency_key="body-key-1")
        status, first = client.post("/jobs", job)
        assert status == 202
        status, second = client.post("/jobs", job)
        assert status == 202
        assert second["id"] == first["id"] and second["deduplicated"] is True

    def test_same_key_different_payload_is_409(self, service_server):
        _, client = service_server
        headers = {"Idempotency-Key": "conflicted"}
        status, _ = client.request(
            "POST", "/jobs", payload=self.JOB, headers=headers
        )[:2]
        assert status == 202
        other = dict(self.JOB, num_reads=7)
        status, body = client.request(
            "POST", "/jobs", payload=other, headers=headers
        )[:2]
        assert status == 409
        assert body["error"] == "idempotency_conflict"
        status, metrics = client.get("/metrics?format=json")
        assert metrics["counters"]["service.idempotency_conflicts"] == 1

    def test_invalid_key_is_400(self, service_server):
        _, client = service_server
        status, body = client.post(
            "/jobs", dict(self.JOB, idempotency_key="   ")
        )
        assert status == 400
        assert body["field"] == "idempotency_key"
        status, body = client.post(
            "/jobs", dict(self.JOB, idempotency_key="x" * 300)
        )
        assert status == 400

    def test_tenants_do_not_share_keys(self, service_server):
        _, client = service_server
        headers = {"Idempotency-Key": "shared-key"}
        status, alice = client.request(
            "POST", "/jobs", payload=self.JOB, tenant="alice", headers=headers
        )[:2]
        status, bob = client.request(
            "POST", "/jobs", payload=self.JOB, tenant="bob", headers=headers
        )[:2]
        assert alice["id"] != bob["id"]
        assert "deduplicated" not in bob
