"""Tests for the NP-verifier generators."""

import itertools

import pytest

from repro import VerilogAnnealerCompiler
from repro.core.workloads import (
    WorkloadError,
    cnf_verilog,
    dimacs_verilog,
    map_coloring_verilog,
    parse_dimacs,
    subset_sum_verilog,
    vertex_cover_verilog,
)
from repro.hdl import elaborate
from repro.synth.simulate import NetlistSimulator


def _sim(source, **kwargs):
    return NetlistSimulator(elaborate(source, **kwargs))


# ----------------------------------------------------------------------
# Map coloring
# ----------------------------------------------------------------------
def test_map_coloring_matches_listing7():
    regions = ["NSW", "QLD", "SA", "VIC", "WA", "NT", "ACT"]
    adjacent = [
        ("WA", "NT"), ("WA", "SA"), ("NT", "SA"), ("NT", "QLD"),
        ("SA", "QLD"), ("SA", "NSW"), ("SA", "VIC"), ("QLD", "NSW"),
        ("NSW", "VIC"), ("NSW", "ACT"),
    ]
    source = map_coloring_verilog(regions, adjacent)
    sim = _sim(source)
    good = {"NSW": 0, "QLD": 3, "SA": 2, "VIC": 3, "WA": 3, "NT": 1, "ACT": 2}
    assert sim.evaluate(good)["valid"] == 1
    bad = dict(good, NT=3)  # NT == WA == QLD
    assert sim.evaluate(bad)["valid"] == 0


def test_map_coloring_three_colors_adds_range_checks():
    source = map_coloring_verilog(["A", "B"], [("A", "B")], num_colors=3)
    sim = _sim(source)
    assert sim.evaluate({"A": 0, "B": 1})["valid"] == 1
    assert sim.evaluate({"A": 3, "B": 1})["valid"] == 0  # color 3 illegal
    assert sim.evaluate({"A": 1, "B": 1})["valid"] == 0


def test_map_coloring_triangle_needs_three_colors():
    source = map_coloring_verilog(
        ["A", "B", "C"], [("A", "B"), ("B", "C"), ("C", "A")], num_colors=2
    )
    sim = _sim(source)
    # A triangle is not 2-colorable: no assignment validates.
    assert all(
        sim.evaluate({"A": a, "B": b, "C": c})["valid"] == 0
        for a in range(2) for b in range(2) for c in range(2)
    )


def test_map_coloring_validation():
    with pytest.raises(WorkloadError):
        map_coloring_verilog(["A", "A"], [])
    with pytest.raises(WorkloadError):
        map_coloring_verilog(["A"], [("A", "B")])
    with pytest.raises(WorkloadError):
        map_coloring_verilog(["A"], [("A", "A")])
    with pytest.raises(WorkloadError):
        map_coloring_verilog(["bad name"], [])
    with pytest.raises(WorkloadError):
        map_coloring_verilog(["A"], [], num_colors=1)


def test_map_coloring_backward_on_annealer():
    source = map_coloring_verilog(
        ["P", "Q", "R", "S"],
        [("P", "Q"), ("Q", "R"), ("R", "S"), ("S", "P"), ("P", "R")],
        num_colors=4,
    )
    compiler = VerilogAnnealerCompiler(seed=3)
    result = compiler.run(source, pins=["valid := true"], solver="sa", num_reads=150)
    best = result.valid_solutions[0]
    colors = {r: best.value_of(r) for r in ("P", "Q", "R", "S")}
    for a, b in [("P", "Q"), ("Q", "R"), ("R", "S"), ("S", "P"), ("P", "R")]:
        assert colors[a] != colors[b]


# ----------------------------------------------------------------------
# DIMACS / SAT
# ----------------------------------------------------------------------
EXAMPLE_DIMACS = """
c an easy satisfiable formula
p cnf 4 4
1 -2 0
2 3 0
-1 -3 0
4 0
"""


def test_parse_dimacs():
    num_variables, clauses = parse_dimacs(EXAMPLE_DIMACS)
    assert num_variables == 4
    assert clauses == [[1, -2], [2, 3], [-1, -3], [4]]


def test_parse_dimacs_multiline_clause():
    n, clauses = parse_dimacs("p cnf 3 1\n1\n-2 3 0\n")
    assert clauses == [[1, -2, 3]]


def test_parse_dimacs_errors():
    with pytest.raises(WorkloadError):
        parse_dimacs("1 2 0\n")  # clause before header
    with pytest.raises(WorkloadError):
        parse_dimacs("p cnf 1 1\n5 0\n")  # literal out of range
    with pytest.raises(WorkloadError):
        parse_dimacs("c only comments\n")


def test_cnf_verifier_matches_python_evaluation():
    num_variables, clauses = parse_dimacs(EXAMPLE_DIMACS)
    sim = _sim(cnf_verilog(num_variables, clauses))
    for assignment in itertools.product((0, 1), repeat=num_variables):
        x = sum(bit << i for i, bit in enumerate(assignment))
        expected = all(
            any(
                assignment[abs(l) - 1] == (1 if l > 0 else 0)
                for l in clause
            )
            for clause in clauses
        )
        assert sim.evaluate({"x": x})["valid"] == int(expected)


def test_sat_solved_backward_on_annealer():
    source = dimacs_verilog(EXAMPLE_DIMACS)
    compiler = VerilogAnnealerCompiler(seed=4)
    result = compiler.run(source, pins=["valid := true"], solver="sa", num_reads=100)
    witness = result.valid_solutions[0].value_of("x")
    # Verify the witness classically.
    sim = _sim(source)
    assert sim.evaluate({"x": witness})["valid"] == 1


def test_unsat_formula_yields_no_witness():
    unsat = "p cnf 1 2\n1 0\n-1 0\n"
    sim = _sim(dimacs_verilog(unsat))
    assert sim.evaluate({"x": 0})["valid"] == 0
    assert sim.evaluate({"x": 1})["valid"] == 0


def test_cnf_validation():
    with pytest.raises(WorkloadError):
        cnf_verilog(0, [])
    with pytest.raises(WorkloadError):
        cnf_verilog(2, [[]])
    with pytest.raises(WorkloadError):
        cnf_verilog(2, [[3]])


# ----------------------------------------------------------------------
# Subset sum
# ----------------------------------------------------------------------
def test_subset_sum_verifier():
    weights = [4, 6, 9, 2]
    sim = _sim(subset_sum_verilog(weights, 11))
    for selection in range(16):
        chosen = sum(w for i, w in enumerate(weights) if (selection >> i) & 1)
        assert sim.evaluate({"sel": selection})["valid"] == int(chosen == 11)


def test_subset_sum_validation():
    with pytest.raises(WorkloadError):
        subset_sum_verilog([], 1)
    with pytest.raises(WorkloadError):
        subset_sum_verilog([1, 2], 9)
    with pytest.raises(WorkloadError):
        subset_sum_verilog([-1], 0)


# ----------------------------------------------------------------------
# Vertex cover
# ----------------------------------------------------------------------
def test_vertex_cover_verifier():
    # A path 0-1-2-3: minimum cover {1, 2} has size 2.
    edges = [(0, 1), (1, 2), (2, 3)]
    sim = _sim(vertex_cover_verilog(4, edges, max_size=2))
    assert sim.evaluate({"pick": 0b0110})["valid"] == 1  # {1, 2}
    assert sim.evaluate({"pick": 0b0010})["valid"] == 0  # misses (2,3)
    assert sim.evaluate({"pick": 0b1111})["valid"] == 0  # too many
    assert sim.evaluate({"pick": 0b1010})["valid"] == 1  # {1, 3}


def test_vertex_cover_backward():
    edges = [(0, 1), (0, 2), (0, 3), (1, 2)]
    source = vertex_cover_verilog(4, edges, max_size=2)
    compiler = VerilogAnnealerCompiler(seed=5)
    result = compiler.run(source, pins=["valid := true"], solver="sa", num_reads=150)
    pick = result.valid_solutions[0].value_of("pick")
    chosen = {i for i in range(4) if (pick >> i) & 1}
    assert len(chosen) <= 2
    assert all(u in chosen or v in chosen for u, v in edges)


def test_vertex_cover_validation():
    with pytest.raises(WorkloadError):
        vertex_cover_verilog(0, [], 1)
    with pytest.raises(WorkloadError):
        vertex_cover_verilog(3, [(0, 5)], 1)
    with pytest.raises(WorkloadError):
        vertex_cover_verilog(3, [(1, 1)], 1)
    with pytest.raises(WorkloadError):
        vertex_cover_verilog(3, [], 0)
