"""Fault injection and the resilience layer it exercises.

Covers the deterministic fault harness (``repro.core.faults``), the
machine yield model, embedding retry diagnostics, the runner's
retry/fallback/chain-escalation policy, cache disk-failure handling,
and the ``--inject-fault`` CLI flag.  The slow seed-matrix tests at the
bottom are deselected by default (``-m "not slow"`` in pyproject) and
run in CI's fault-injection job across several ``REPRO_FAULT_SEED``
values.
"""

import logging
import os
import pickle

import networkx as nx
import numpy as np
import pytest

from repro.core.cache import ArtifactCache, EmbeddingCache
from repro.core.cli import main
from repro.core.compiler import VerilogAnnealerCompiler
from repro.core.faults import (
    FaultInjector,
    FaultSpec,
    TransientSolverError,
    break_chains,
    parse_fault_spec,
    spec_fingerprint,
)
from repro.hardware.chimera import chimera_graph, coupler_dropout
from repro.hardware.embedding import (
    Embedding,
    EmbeddingError,
    embed_ising,
    find_embedding,
    unembed_sampleset,
)
from repro.ising.model import IsingModel
from repro.qmasm.runner import QmasmRunner, RetryPolicy
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.sampleset import SampleSet

from tests.conftest import (
    AUSTRALIA_ADJACENT,
    AUSTRALIA_REGIONS,
    LISTING_7_AUSTRALIA,
)

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"


def _stage(stats, name):
    return next(rec for rec in stats.records if rec.name == name)


def _small_machine(faults=None, cells=4, seed=0):
    return DWaveSimulator(
        properties=MachineProperties(cells=cells, dropout_fraction=0.0),
        seed=seed,
        faults=faults,
    )


# ----------------------------------------------------------------------
# FaultSpec and parse_fault_spec
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_percentages_and_fractions(self):
        spec = parse_fault_spec("dead_qubits=5%,fail_first=2,break_chains=0.3,seed=7")
        assert spec.dead_qubit_fraction == pytest.approx(0.05)
        assert spec.fail_first_samples == 2
        assert spec.chain_break_rate == pytest.approx(0.3)
        assert spec.seed == 7

    def test_parse_all_keys(self):
        spec = parse_fault_spec(
            "dead_qubits=1%, dead_couplers=2%, fail_first=1, "
            "fail_rate=10%, drop_rate=0.25, break_chains=50%, seed=3"
        )
        assert spec.dead_coupler_fraction == pytest.approx(0.02)
        assert spec.sample_failure_rate == pytest.approx(0.10)
        assert spec.programming_drop_rate == pytest.approx(0.25)

    def test_parse_composes_with_base(self):
        base = parse_fault_spec("dead_qubits=5%,seed=7")
        spec = parse_fault_spec("fail_first=2", base=base)
        assert spec.dead_qubit_fraction == pytest.approx(0.05)
        assert spec.fail_first_samples == 2
        later = parse_fault_spec("dead_qubits=1%", base=spec)
        assert later.dead_qubit_fraction == pytest.approx(0.01)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            parse_fault_spec("kill_everything=1")

    def test_parse_rejects_malformed_clause(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_fault_spec("dead_qubits")
        with pytest.raises(ValueError, match="bad value"):
            parse_fault_spec("fail_first=two")
        with pytest.raises(ValueError, match="bad value"):
            parse_fault_spec("dead_qubits=lots")

    def test_spec_validates_ranges(self):
        with pytest.raises(ValueError):
            FaultSpec(dead_qubit_fraction=1.5)
        with pytest.raises(ValueError):
            FaultSpec(sample_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(fail_first_samples=-1)

    def test_spec_is_hashable_with_list_inputs(self):
        spec = FaultSpec(dead_qubits=[1, 2], dead_couplers=[(0, 4)])
        assert spec.dead_qubits == (1, 2)
        assert spec.dead_couplers == ((0, 4),)
        hash(spec)

    def test_fault_classification(self):
        assert FaultSpec(dead_qubit_fraction=0.1).has_yield_faults
        assert not FaultSpec(dead_qubit_fraction=0.1).has_transient_faults
        assert FaultSpec(fail_first_samples=1).has_transient_faults
        assert not FaultSpec(fail_first_samples=1).has_yield_faults
        assert not FaultSpec().has_yield_faults

    def test_fingerprint_distinguishes_specs(self):
        a = spec_fingerprint(FaultSpec(dead_qubit_fraction=0.05, seed=7))
        b = spec_fingerprint(FaultSpec(dead_qubit_fraction=0.05, seed=8))
        assert a != b
        assert spec_fingerprint(None) == "none"


# ----------------------------------------------------------------------
# Fleet-level machine faults: parsing, validation, fingerprinting
# ----------------------------------------------------------------------
class TestMachineFaultClauses:
    def test_parse_machine_entries_with_params(self):
        spec = parse_fault_spec(
            "machine_crash=1:3+2,machine_straggler=2:8,machine_flaky=0:30%"
        )
        assert spec.machine_crashes == ((1, 3), (2, 2))
        assert spec.machine_stragglers == ((2, 8.0),)
        assert spec.machine_flaky == ((0, pytest.approx(0.30)),)

    def test_parse_machine_defaults(self):
        # Bare indices take the documented defaults: crash on the 2nd
        # dispatch, run 4x slower, fail one dispatch in four.
        spec = parse_fault_spec(
            "machine_crash=1,machine_straggler=2,machine_flaky=3"
        )
        assert spec.machine_crashes == ((1, 2),)
        assert spec.machine_stragglers == ((2, 4.0),)
        assert spec.machine_flaky == ((3, 0.25),)

    def test_parse_machine_clause_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad machine index"):
            parse_fault_spec("machine_crash=one")
        with pytest.raises(ValueError, match="empty machine list"):
            parse_fault_spec("machine_crash=")
        with pytest.raises(ValueError, match="bad value"):
            parse_fault_spec("machine_flaky=0:lots")

    def test_machine_fields_validate_ranges(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(machine_crashes=((0, 0),))
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(machine_crashes=((-1, 2),))
        with pytest.raises(ValueError, match="factor must be >= 1"):
            FaultSpec(machine_stragglers=((0, 0.5),))
        with pytest.raises(ValueError, match="rate must be in"):
            FaultSpec(machine_flaky=((0, 1.5),))

    def test_machine_fault_classification(self):
        spec = FaultSpec(machine_crashes=((1, 2),))
        assert spec.has_machine_faults
        assert not spec.has_yield_faults
        assert not spec.has_transient_faults
        assert not FaultSpec().has_machine_faults

    def test_fingerprint_covers_machine_fields(self):
        # Regression: checkpoint/cache keys must change when any
        # machine-level fault field changes, and the canonical string
        # must name each field so future fields cannot be missed
        # silently.
        clean = spec_fingerprint(FaultSpec())
        crash = spec_fingerprint(FaultSpec(machine_crashes=((1, 2),)))
        straggle = spec_fingerprint(FaultSpec(machine_stragglers=((1, 8.0),)))
        flaky = spec_fingerprint(FaultSpec(machine_flaky=((1, 0.25),)))
        assert len({clean, crash, straggle, flaky}) == 4
        for name in ("machine_crashes", "machine_stragglers", "machine_flaky"):
            assert name in clean
        assert "machine_crashes=((1, 2),)" in crash


# ----------------------------------------------------------------------
# Yield model: the working graph reflects the damage
# ----------------------------------------------------------------------
class TestYieldModel:
    def test_seeded_dead_qubits_are_deterministic(self):
        spec = FaultSpec(dead_qubit_fraction=0.1, seed=7)
        first = _small_machine(faults=spec)
        second = _small_machine(faults=spec)
        pristine = _small_machine()
        assert set(first.working_graph) == set(second.working_graph)
        expected = round(0.1 * pristine.num_qubits)
        assert first.num_qubits == pristine.num_qubits - expected

    def test_different_seed_kills_different_qubits(self):
        first = _small_machine(faults=FaultSpec(dead_qubit_fraction=0.1, seed=7))
        second = _small_machine(faults=FaultSpec(dead_qubit_fraction=0.1, seed=8))
        assert set(first.working_graph) != set(second.working_graph)

    def test_explicit_dead_qubits_and_couplers(self):
        machine = _small_machine(
            faults=FaultSpec(dead_qubits=(0, 5), dead_couplers=((1, 4),))
        )
        assert 0 not in machine.working_graph
        assert 5 not in machine.working_graph
        assert not machine.working_graph.has_edge(1, 4)
        # Indices beyond the graph are ignored, not an error.
        _small_machine(faults=FaultSpec(dead_qubits=(10**6,)))

    def test_validate_problem_rejects_dead_qubit(self):
        machine = _small_machine(faults=FaultSpec(dead_qubits=(0,)))
        model = IsingModel()
        model.add_variable(0, 1.0)
        with pytest.raises(ValueError, match="not in the working graph"):
            machine.validate_problem(model)

    def test_validate_problem_rejects_dead_coupler(self):
        machine = _small_machine(faults=FaultSpec(dead_couplers=((0, 4),)))
        model = IsingModel()
        model.add_interaction(0, 4, 1.0)
        with pytest.raises(ValueError, match="no coupler"):
            machine.validate_problem(model)

    def test_degrade_returns_a_copy(self):
        graph = chimera_graph(2)
        before = graph.number_of_nodes()
        injector = FaultInjector(FaultSpec(dead_qubit_fraction=0.2, seed=1))
        damaged = injector.degrade(graph)
        assert graph.number_of_nodes() == before
        assert damaged.number_of_nodes() < before

    def test_machine_properties_dead_lists(self):
        machine = DWaveSimulator(
            MachineProperties(
                cells=2,
                dropout_fraction=0.0,
                coupler_dropout_fraction=0.1,
                dead_qubits=(3,),
                dead_couplers=((0, 4),),
            )
        )
        pristine = chimera_graph(2)
        assert 3 not in machine.working_graph
        assert not machine.working_graph.has_edge(0, 4)
        expected_drop = round(0.1 * pristine.number_of_edges())
        # 0.1 of couplers plus the explicit one (unless it was already hit).
        assert machine.working_graph.number_of_edges() <= (
            pristine.number_of_edges() - expected_drop
        )

    def test_coupler_dropout_keeps_qubits(self):
        graph = chimera_graph(2)
        out = coupler_dropout(graph, num_couplers=5, seed=0)
        assert out.number_of_nodes() == graph.number_of_nodes()
        assert out.number_of_edges() == graph.number_of_edges() - 5
        with pytest.raises(ValueError):
            coupler_dropout(graph, num_couplers=graph.number_of_edges() + 1)


# ----------------------------------------------------------------------
# Transient faults: sample calls fail, reads corrupt
# ----------------------------------------------------------------------
class TestTransientFaults:
    def _one_qubit_model(self):
        model = IsingModel()
        model.add_variable(0, 1.0)
        return model

    def test_fail_first_samples(self):
        machine = _small_machine(faults=FaultSpec(fail_first_samples=2), cells=2)
        model = self._one_qubit_model()
        for expected_call in (1, 2):
            with pytest.raises(TransientSolverError) as info:
                machine.sample_ising(model, num_reads=5)
            assert info.value.kind == "injected"
            assert machine.faults.sample_calls == expected_call
        result = machine.sample_ising(model, num_reads=5)
        assert len(result)
        assert machine.faults.counters() == {
            "sample_calls": 3,
            "transient_failures": 2,
            "reads_corrupted": 0,
            "logical_reads_corrupted": 0,
        }

    def test_failure_rates_fire(self):
        machine = _small_machine(
            faults=FaultSpec(sample_failure_rate=1.0), cells=2
        )
        with pytest.raises(TransientSolverError) as info:
            machine.sample_ising(self._one_qubit_model(), num_reads=2)
        assert info.value.kind == "sample_failure"

        machine = _small_machine(
            faults=FaultSpec(programming_drop_rate=1.0), cells=2
        )
        with pytest.raises(TransientSolverError) as info:
            machine.sample_ising(self._one_qubit_model(), num_reads=2)
        assert info.value.kind == "programming_drop"

    def test_validation_still_precedes_transient_faults(self):
        # SAPI rejects malformed problems client-side; injected failures
        # model server-side behavior and must not mask a ValueError.
        machine = _small_machine(faults=FaultSpec(fail_first_samples=1), cells=2)
        bad = IsingModel()
        bad.add_variable(10**6, 1.0)
        with pytest.raises(ValueError):
            machine.sample_ising(bad, num_reads=2)
        assert machine.faults.sample_calls == 0

    def test_corrupt_records_is_deterministic(self):
        records = np.ones((50, 4), dtype=np.int8)
        first = FaultInjector(FaultSpec(chain_break_rate=0.5, seed=3))
        second = FaultInjector(FaultSpec(chain_break_rate=0.5, seed=3))
        out1, n1 = first.corrupt_records(records)
        out2, n2 = second.corrupt_records(records)
        assert n1 == n2 > 0
        assert np.array_equal(out1, out2)
        assert np.all(records == 1), "input array must not be mutated"
        assert first.reads_corrupted == n1
        # Each corrupted read has exactly one flipped spin.
        flipped_rows = (out1 != records).sum(axis=1)
        assert set(flipped_rows.tolist()) <= {0, 1}
        assert int((flipped_rows == 1).sum()) == n1

    def test_corrupted_reads_surface_in_sampleset_info(self):
        machine = _small_machine(
            faults=FaultSpec(chain_break_rate=1.0), cells=2
        )
        result = machine.sample_ising(self._one_qubit_model(), num_reads=10)
        assert result.info["injected_read_corruption"] == 10

    def test_reset_restores_injector(self):
        injector = FaultInjector(FaultSpec(fail_first_samples=1))
        with pytest.raises(TransientSolverError):
            injector.before_sample()
        injector.before_sample()  # second call passes
        injector.reset()
        with pytest.raises(TransientSolverError):
            injector.before_sample()
        assert injector.counters()["transient_failures"] == 1


# ----------------------------------------------------------------------
# Embedding: retry budget and structured diagnostics
# ----------------------------------------------------------------------
class TestEmbeddingDiagnostics:
    def test_failure_reports_sizes_and_budget(self):
        source = nx.complete_graph(5)
        target = nx.path_graph(5)
        with pytest.raises(EmbeddingError) as info:
            find_embedding(source, target, seed=0, tries=2, rounds=2, max_attempts=2)
        err = info.value
        assert err.source_size == 5
        assert err.source_edges == 10
        assert err.target_size == 5
        assert err.attempts == 2
        assert err.restarts == 4
        message = str(err)
        assert "source=5 vars/10 edges" in message
        assert "target=5 qubits" in message
        assert "attempts=2" in message

    def test_too_many_variables_reports_sizes(self):
        with pytest.raises(EmbeddingError) as info:
            find_embedding(nx.complete_graph(9), nx.path_graph(4), seed=0)
        assert info.value.source_size == 9
        assert info.value.target_size == 4
        assert info.value.attempts is None

    def test_success_populates_stats(self):
        stats = {}
        embedding = find_embedding(
            nx.complete_graph(3), chimera_graph(1), seed=0, stats=stats
        )
        assert len(embedding) == 3
        assert stats["attempts"] >= 1
        assert stats["restarts"] >= stats["attempts"]

    def test_validate_errors_carry_sizes(self):
        target = chimera_graph(1)
        bad = Embedding({"a": frozenset({0}), "b": frozenset({0})})
        with pytest.raises(EmbeddingError) as info:
            bad.validate([("a", "b")], target)
        assert info.value.source_size == 2
        assert info.value.target_size == len(target)

    def test_cache_key_tracks_working_graph_and_budget(self):
        source = nx.complete_graph(3)
        pristine = chimera_graph(2)
        degraded = FaultInjector(
            FaultSpec(dead_qubit_fraction=0.1, seed=7)
        ).degrade(pristine)
        key_pristine = EmbeddingCache.key_for(source, pristine, seed=0)
        key_degraded = EmbeddingCache.key_for(source, degraded, seed=0)
        assert key_pristine != key_degraded
        assert key_pristine != EmbeddingCache.key_for(
            source, pristine, seed=0, max_attempts=3
        )


# ----------------------------------------------------------------------
# Chain-break repair: majority vote, accounting, escalation
# ----------------------------------------------------------------------
class TestChainBreakRepair:
    def _fixture(self):
        """A 2-variable logical model embedded with one 3-qubit chain."""
        logical = IsingModel()
        logical.add_interaction("x", "y", 0.5)
        embedding = Embedding(
            {"x": frozenset({0, 1, 2}), "y": frozenset({3})}
        )
        target = nx.Graph([(0, 1), (1, 2), (2, 3)])
        physical = embed_ising(logical, embedding, target, chain_strength=2.0)
        return logical, embedding, physical

    def test_majority_vote_repairs_broken_chain(self):
        logical, embedding, physical = self._fixture()
        records = np.tile(
            np.array([1, 1, 1, -1], dtype=np.int8), (20, 1)
        )
        samples = SampleSet.from_array([0, 1, 2, 3], records, physical)
        broken = break_chains(samples, embedding, fraction=1.0, seed=0)
        unembedded = unembed_sampleset(broken, embedding, logical)
        # Majority vote recovers x=+1 in every read despite the damage.
        for i in range(len(unembedded)):
            row = dict(zip(unembedded.variables, unembedded.records[i]))
            assert row["x"] == 1
            assert row["y"] == -1

    def test_chain_break_fraction_reporting(self):
        logical, embedding, physical = self._fixture()
        records = np.tile(np.array([1, 1, 1, -1], dtype=np.int8), (40, 1))
        samples = SampleSet.from_array([0, 1, 2, 3], records, physical)
        broken = break_chains(samples, embedding, fraction=0.5, seed=1)
        unembedded = unembed_sampleset(broken, embedding, logical)
        # Breaks are counted per (read, chain): only x can break, so the
        # fraction is (damaged reads) / (reads * 2 chains) ~ 0.25.
        fraction = unembedded.info["chain_break_fraction"]
        assert 0.05 < fraction < 0.45
        clean = unembed_sampleset(samples, embedding, logical)
        assert clean.info["chain_break_fraction"] == 0.0

    def test_break_chains_needs_a_real_chain(self):
        embedding = Embedding({"x": frozenset({0})})
        physical = IsingModel()
        physical.add_variable(0, 1.0)
        samples = SampleSet.from_array(
            [0], np.ones((5, 1), dtype=np.int8), physical
        )
        with pytest.raises(ValueError, match="no multi-qubit chain"):
            break_chains(samples, embedding, fraction=1.0)
        with pytest.raises(ValueError, match="fraction"):
            break_chains(samples, embedding, fraction=1.5)

    def test_chain_strength_escalation_triggers(self):
        machine = _small_machine(faults=FaultSpec(chain_break_rate=0.9, seed=1))
        runner = QmasmRunner(machine=machine, seed=0)
        policy = RetryPolicy(
            chain_break_threshold=0.02, max_chain_strength_escalations=2
        )
        result = runner.run(
            AND_PROGRAM, solver="dwave", num_reads=60, retry_policy=policy
        )
        resilience = result.info["resilience"]
        assert resilience["chain_strength_escalations"] >= 1
        assert result.info["chain_strength"] > 1.0
        counters = _stage(result.stats, "unembed").counters
        assert counters["chain_strength_escalations"] >= 1
        assert "chain_break_fraction" in result.info

    def test_no_escalation_on_healthy_chains(self):
        machine = _small_machine()
        runner = QmasmRunner(machine=machine, seed=0)
        result = runner.run(AND_PROGRAM, solver="dwave", num_reads=40)
        assert "chain_strength_escalations" not in result.info.get(
            "resilience", {}
        )
        assert result.info["chain_break_fraction"] <= 0.25


# ----------------------------------------------------------------------
# RetryPolicy: retries, gauge averaging, graceful degradation
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_sample_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(chain_break_threshold=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(chain_strength_factor=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(fallback_solvers=("dwave",))
        with pytest.raises(ValueError):
            RetryPolicy(embedding_max_attempts=0)

    def test_transient_failures_are_retried(self):
        machine = _small_machine(faults=FaultSpec(fail_first_samples=2))
        runner = QmasmRunner(machine=machine, seed=0)
        result = runner.run(AND_PROGRAM, solver="dwave", num_reads=40)
        assert result.info["answered_by"] == "dwave"
        resilience = result.info["resilience"]
        assert resilience["sample_retries"] == 2
        assert resilience["sample_failures"] == 2
        assert result.info["fault_injection"]["transient_failures"] == 2
        counters = _stage(result.stats, "sample").counters
        assert counters["sample_attempts"] == 3
        assert counters["fallback_depth"] == 0
        best = result.best
        assert best.values["g.Y"] == (best.values["g.A"] and best.values["g.B"])

    def test_fallback_chain_answers_when_hardware_dies(self):
        machine = _small_machine(faults=FaultSpec(sample_failure_rate=1.0))
        runner = QmasmRunner(machine=machine, seed=0)
        result = runner.run(AND_PROGRAM, solver="dwave", num_reads=40)
        assert result.info["answered_by"] in ("sqa", "tabu", "exact")
        assert result.info["fallback_solver"] == result.info["answered_by"]
        resilience = result.info["resilience"]
        assert resilience["fallback_depth"] >= 1
        assert "last_error" in resilience
        # The fallback tier samples the logical model: still a valid AND.
        best = result.best
        assert best.values["g.Y"] == (best.values["g.A"] and best.values["g.B"])

    def test_exact_fallback_for_tiny_models(self):
        machine = _small_machine(faults=FaultSpec(sample_failure_rate=1.0))
        runner = QmasmRunner(machine=machine, seed=0)
        policy = RetryPolicy(
            max_sample_attempts=1, fallback_solvers=("exact",)
        )
        result = runner.run(
            AND_PROGRAM, solver="dwave", num_reads=40, retry_policy=policy
        )
        assert result.info["answered_by"] == "exact"

    def test_exact_fallback_respects_size_limit(self):
        machine = _small_machine(faults=FaultSpec(sample_failure_rate=1.0))
        runner = QmasmRunner(machine=machine, seed=0)
        policy = RetryPolicy(
            max_sample_attempts=1,
            fallback_solvers=("exact",),
            exact_fallback_limit=2,
        )
        with pytest.raises(TransientSolverError, match="no fallback tier"):
            runner.run(
                AND_PROGRAM, solver="dwave", num_reads=10, retry_policy=policy
            )

    def test_no_fallback_raises(self):
        machine = _small_machine(faults=FaultSpec(sample_failure_rate=1.0))
        runner = QmasmRunner(machine=machine, seed=0)
        policy = RetryPolicy(max_sample_attempts=2, fallback_solvers=())
        with pytest.raises(TransientSolverError):
            runner.run(
                AND_PROGRAM, solver="dwave", num_reads=10, retry_policy=policy
            )

    def test_clean_run_reports_no_retries(self):
        machine = _small_machine()
        runner = QmasmRunner(machine=machine, seed=0)
        result = runner.run(AND_PROGRAM, solver="dwave", num_reads=40)
        assert result.info["answered_by"] == "dwave"
        assert "sample_retries" not in result.info["resilience"]
        assert "fault_injection" not in result.info

    def test_classical_solver_reports_itself(self):
        runner = QmasmRunner(seed=0)
        result = runner.run(AND_PROGRAM, solver="sa", num_reads=20)
        assert result.info["answered_by"] == "sa"

    def test_sqa_as_first_class_solver(self):
        runner = QmasmRunner(seed=0)
        result = runner.run(AND_PROGRAM, solver="sqa", num_reads=16)
        best = result.best
        assert best.values["g.Y"] == (best.values["g.A"] and best.values["g.B"])


# ----------------------------------------------------------------------
# Cache disk-tier failures heal into clean misses
# ----------------------------------------------------------------------
class TestCacheDiskResilience:
    def test_truncated_pickle_is_a_clean_miss(self, tmp_path, caplog):
        cache_dir = str(tmp_path / "cache")
        writer = ArtifactCache(cache_dir=cache_dir)
        writer.put("key", {"value": 1})
        path = os.path.join(cache_dir, "key.pkl")
        with open(path, "r+b") as handle:
            handle.truncate(3)

        reader = ArtifactCache(cache_dir=cache_dir)
        with caplog.at_level(logging.DEBUG, logger="repro.core.cache"):
            assert reader.get("key") is None
        assert reader.stats.misses == 1
        assert reader.stats.disk_errors == 1
        assert not os.path.exists(path), "corrupt entry must be deleted"
        warnings = [
            r for r in caplog.records if r.levelno == logging.WARNING
        ]
        assert len(warnings) == 1
        assert "disk tier" in warnings[0].getMessage()
        # The slot heals: a fresh store round-trips again.
        reader.put("key", {"value": 2})
        assert ArtifactCache(cache_dir=cache_dir).get("key") == {"value": 2}

    def test_disk_warning_fires_once(self, tmp_path, caplog):
        cache_dir = str(tmp_path / "cache")
        writer = ArtifactCache(cache_dir=cache_dir)
        writer.put("a", 1)
        writer.put("b", 2)
        for key in ("a", "b"):
            with open(os.path.join(cache_dir, f"{key}.pkl"), "wb") as handle:
                handle.write(b"junk")
        reader = ArtifactCache(cache_dir=cache_dir)
        with caplog.at_level(logging.DEBUG, logger="repro.core.cache"):
            assert reader.get("a") is None
            assert reader.get("b") is None
        assert reader.stats.disk_errors == 2
        warnings = [
            r for r in caplog.records if r.levelno == logging.WARNING
        ]
        assert len(warnings) == 1

    def test_unwritable_disk_tier_degrades_to_memory(self, tmp_path, caplog):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        cache = ArtifactCache(cache_dir=str(blocker))
        with caplog.at_level(logging.DEBUG, logger="repro.core.cache"):
            cache.put("key", 42)
        assert cache.get("key") == 42  # memory tier still works
        assert cache.stats.disk_errors == 1

    def test_non_pickle_garbage_counts_as_error(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        with open(os.path.join(cache_dir, "key.pkl"), "wb") as handle:
            pickle.dump({"value": 1}, handle)
        cache = ArtifactCache(cache_dir=cache_dir)
        assert cache.get("key") == {"value": 1}
        assert cache.stats.disk_errors == 0


# ----------------------------------------------------------------------
# CLI: --inject-fault, --retries, --no-fallback
# ----------------------------------------------------------------------
AND_VERILOG = """
module and2 (A, B, Y);
   input A, B;
   output Y;
   assign Y = A & B;
endmodule
"""


@pytest.fixture()
def verilog_file(tmp_path):
    path = tmp_path / "and2.v"
    path.write_text(AND_VERILOG)
    return str(path)


class TestCli:
    def test_inject_fault_run(self, verilog_file, capsys):
        code = main(
            [
                verilog_file,
                "--run",
                "--solver",
                "dwave",
                "--reads",
                "30",
                "--seed",
                "0",
                "--inject-fault",
                "fail_first=2,seed=7",
                "--time-passes",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sample_retries=2" in out
        assert "2 sample retry(ies)" in out

    def test_bad_fault_spec_reports_error(self, verilog_file, capsys):
        code = main([verilog_file, "--run", "--inject-fault", "bogus=1"])
        assert code == 1
        assert "unknown fault key" in capsys.readouterr().err

    def test_no_fallback_fails_loudly(self, verilog_file, capsys):
        code = main(
            [
                verilog_file,
                "--run",
                "--solver",
                "dwave",
                "--reads",
                "10",
                "--seed",
                "0",
                "--retries",
                "2",
                "--no-fallback",
                "--inject-fault",
                "fail_rate=1.0,seed=7",
            ]
        )
        assert code == 1
        assert "no fallback tier" in capsys.readouterr().err

    def test_fallback_reported(self, verilog_file, capsys):
        code = main(
            [
                verilog_file,
                "--run",
                "--solver",
                "dwave",
                "--reads",
                "30",
                "--seed",
                "0",
                "--inject-fault",
                "fail_rate=1.0,seed=7",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "answered by fallback tier" in out


# ----------------------------------------------------------------------
# Slow resilience matrix (CI fault-injection job; see pyproject addopts)
# ----------------------------------------------------------------------
def _matrix_seeds():
    raw = os.environ.get("REPRO_FAULT_SEED", "7")
    return [int(s) for s in raw.split(",") if s.strip()]


def _valid_coloring(solution):
    colors = {r: solution.value_of(r) for r in AUSTRALIA_REGIONS}
    return all(colors[a] != colors[b] for a, b in AUSTRALIA_ADJACENT)


@pytest.mark.slow
@pytest.mark.parametrize("seed", _matrix_seeds())
def test_acceptance_degraded_machine_still_colors_australia(seed):
    """The issue's acceptance scenario, per fault seed.

    A 2000Q with 5% of qubits dead and the first two sample calls
    failing must still produce a valid 4-coloring of Australia, with the
    retries visible in the run statistics.
    """
    machine = DWaveSimulator(
        MachineProperties(dropout_fraction=0.0),
        seed=0,
        faults=FaultSpec(
            dead_qubit_fraction=0.05, fail_first_samples=2, seed=seed
        ),
    )
    compiler = VerilogAnnealerCompiler(machine=machine, seed=0)
    result = compiler.run(
        LISTING_7_AUSTRALIA,
        pins=["valid := true"],
        solver="dwave",
        num_reads=300,
        retry_policy=RetryPolicy(max_sample_attempts=3),
    )

    colorings = [s for s in result.valid_solutions if _valid_coloring(s)]
    assert colorings, "no valid coloring under fault injection"

    embed_counters = _stage(result.stats, "find_embedding").counters
    assert embed_counters["attempts"] >= 1
    sample_counters = _stage(result.stats, "sample").counters
    assert sample_counters["sample_retries"] == 2
    assert result.info["resilience"]["sample_retries"] == 2
    assert result.info["answered_by"] in ("dwave", "sqa", "tabu")
    assert result.info["fault_injection"]["transient_failures"] >= 2


@pytest.mark.slow
@pytest.mark.parametrize("seed", _matrix_seeds())
def test_combined_fault_matrix(seed):
    """Yield + transient + read-corruption faults at once, per seed."""
    machine = _small_machine(
        faults=FaultSpec(
            dead_qubit_fraction=0.05,
            dead_coupler_fraction=0.02,
            fail_first_samples=1,
            chain_break_rate=0.3,
            seed=seed,
        )
    )
    runner = QmasmRunner(machine=machine, seed=seed)
    result = runner.run(AND_PROGRAM, solver="dwave", num_reads=200)
    best = result.best
    assert best.values["g.Y"] == (best.values["g.A"] and best.values["g.B"])
    resilience = result.info["resilience"]
    assert resilience["sample_retries"] >= 1
    assert result.info["fault_injection"]["sample_calls"] >= 2
