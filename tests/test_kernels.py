"""Tests for the CSR export and the shared three-tier sweep kernels."""

import warnings

import numpy as np
import pytest

from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.sqa import PathIntegralAnnealer


def _ring_model(n=10, chords=()):
    """A +-J ring with optional chord couplings and small fields."""
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, 0.1 * ((-1) ** i))
        model.add_interaction(i, (i + 1) % n, -1.0 if i % 3 else 0.5)
    for u, v in chords:
        model.add_interaction(u, v, 0.25)
    return model


# ----------------------------------------------------------------------
# IsingModel.to_csr
# ----------------------------------------------------------------------
def test_csr_matches_dense_arrays():
    model = _ring_model(12, chords=[(0, 6), (2, 9)])
    order_a, h_a, j_mat = model.to_arrays()
    order_c, h_c, indptr, indices, data = model.to_csr()
    assert order_a == order_c
    np.testing.assert_array_equal(h_a, h_c)
    np.testing.assert_array_equal(
        kernels.densify(len(order_c), indptr, indices, data), j_mat
    )


def test_csr_neighbor_lists_sorted():
    model = _ring_model(8, chords=[(0, 4)])
    _, _, indptr, indices, _ = model.to_csr()
    for i in range(len(indptr) - 1):
        row = indices[indptr[i]:indptr[i + 1]]
        assert list(row) == sorted(row)


def test_csr_skips_zero_couplings():
    model = IsingModel({0: 1.0, 1: -1.0, 2: 0.5})
    model.add_interaction(0, 1, -1.0)
    model.add_interaction(1, 2, 0.0)  # must not appear as a stored entry
    _, _, _, indices, data = model.to_csr()
    assert len(indices) == 2  # one coupling, stored symmetrically
    assert not np.any(data == 0.0)


def test_csr_is_cached_until_mutation():
    model = _ring_model(6)
    first = model.to_csr()
    assert model.to_csr() is first  # cache hit: identical tuple object
    model.add_interaction(0, 3, -0.5)  # mutation invalidates
    second = model.to_csr()
    assert second is not first
    assert len(second[3]) == len(first[3]) + 2


def test_csr_invalidated_by_add_variable_and_update():
    model = _ring_model(6)
    first = model.to_csr()
    model.add_variable(0, 1.0)
    assert model.to_csr() is not first
    second = model.to_csr()
    other = IsingModel({99: -1.0})
    model.update(other)
    assert model.to_csr() is not second
    assert 99 in model.to_csr()[0]


def test_csr_arrays_are_readonly():
    model = _ring_model(6)
    _, h, indptr, indices, data = model.to_csr()
    for array in (h, indptr, indices, data):
        with pytest.raises(ValueError):
            array[0] = 123


# ----------------------------------------------------------------------
# Kernel selection and primitives
# ----------------------------------------------------------------------
def test_choose_kernel_crossover():
    small = kernels.SPARSE_MIN_VARIABLES - 1
    big = kernels.SPARSE_MIN_VARIABLES * 4
    # The fast sparse-adjacency tier is jit when numba can run, else the
    # numpy sparse kernel -- the crossover *shape* is tier-independent.
    fast = kernels.JIT if kernels.jit_available() else kernels.SPARSE
    assert kernels.choose_kernel(small, small * small) == kernels.DENSE
    assert kernels.choose_kernel(big, 6 * big) == fast
    # A dense large model stays on the dense kernel.
    assert kernels.choose_kernel(big, big * big // 2) == kernels.DENSE
    # Explicit requests win regardless of size.
    assert kernels.choose_kernel(small, 0, kernel="sparse") == kernels.SPARSE
    assert kernels.choose_kernel(big, 6 * big, kernel="dense") == kernels.DENSE
    with pytest.raises(ValueError):
        kernels.choose_kernel(10, 10, kernel="blas")


def test_choose_kernel_num_reads_heuristic(monkeypatch):
    big = kernels.SPARSE_MIN_VARIABLES * 4
    huge = kernels.DENSE_BATCH_CROSSOVER_VARIABLES * 2
    # Force the no-numba branch so the num_reads arm is reachable.
    monkeypatch.setitem(kernels._JIT_STATE, "checked", True)
    monkeypatch.setitem(kernels._JIT_STATE, "module", None)
    narrow = kernels.DENSE_MAX_BATCH_READS
    assert kernels.choose_kernel(big, 6 * big, num_reads=narrow) == kernels.DENSE
    assert (
        kernels.choose_kernel(big, 6 * big, num_reads=narrow + 1)
        == kernels.SPARSE
    )
    # Width never rescues dense past the variable crossover: the O(n)
    # row update loses to O(deg) regardless of batch shape.
    assert (
        kernels.choose_kernel(huge, 6 * huge, num_reads=1) == kernels.SPARSE
    )
    # Unknown width keeps the width-agnostic behavior.
    assert kernels.choose_kernel(big, 6 * big) == kernels.SPARSE


def test_available_kernels_and_jit_probe():
    tiers = kernels.available_kernels()
    assert tiers[:2] == (kernels.DENSE, kernels.SPARSE)
    assert (kernels.JIT in tiers) == kernels.jit_available()


def test_no_numba_env_disables_jit(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMBA", "1")
    monkeypatch.setitem(kernels._JIT_STATE, "checked", False)
    monkeypatch.setitem(kernels._JIT_STATE, "module", None)
    try:
        assert not kernels.jit_available()
        assert kernels.available_kernels() == (kernels.DENSE, kernels.SPARSE)
    finally:
        # The probe is cached process-wide; re-arm it for later tests.
        kernels._JIT_STATE["checked"] = False
        kernels._JIT_STATE["module"] = None


def test_explicit_jit_without_numba_warns_once_and_falls_back(monkeypatch):
    monkeypatch.setitem(kernels._JIT_STATE, "checked", True)
    monkeypatch.setitem(kernels._JIT_STATE, "module", None)
    monkeypatch.setitem(kernels._JIT_STATE, "warned", False)
    with pytest.warns(RuntimeWarning, match="requires numba"):
        assert kernels.choose_kernel(10, 10, kernel="jit") == kernels.SPARSE
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second request must stay silent
        assert kernels.choose_kernel(10, 10, kernel="jit") == kernels.SPARSE


def test_batched_energies_match_model_energy():
    model = _ring_model(9, chords=[(1, 5)])
    order, h, indptr, indices, data = model.to_csr()
    rng = np.random.default_rng(3)
    spins = rng.choice([-1, 1], size=(17, len(order)))
    energies = kernels.batched_energies(
        h, indptr, indices, data, spins, model.offset
    )
    for row, energy in zip(spins, energies):
        assert energy == pytest.approx(
            model.energy(dict(zip(order, row)))
        )


def test_model_energies_uses_csr_and_matches():
    model = _ring_model(9, chords=[(1, 5)])
    model.offset = 2.5
    order = list(model.variables)
    rng = np.random.default_rng(4)
    spins = rng.choice([-1, 1], size=(8, len(order)))
    np.testing.assert_allclose(
        model.energies(spins),
        [model.energy(dict(zip(order, row))) for row in spins],
    )


def test_flip_updaters_dense_sparse_bitwise_equal():
    model = _ring_model(20, chords=[(0, 10), (3, 14)])
    _, h, indptr, indices, data = model.to_csr()
    rng = np.random.default_rng(5)
    spins_d = rng.choice([-1.0, 1.0], size=(7, 20))
    spins_s = spins_d.copy()
    fields_d = kernels.init_local_fields(h, indptr, indices, data, spins_d)
    fields_s = fields_d.copy()
    flip_d = kernels.make_flip_updater(kernels.DENSE, indptr, indices, data)
    flip_s = kernels.make_flip_updater(kernels.SPARSE, indptr, indices, data)
    for i in [0, 3, 10, 19, 3]:
        rows = np.array([0, 2, 5])
        flip_d(spins_d, fields_d, i, rows)
        flip_s(spins_s, fields_s, i, rows)
    # Bitwise equality, not approx: the acceptance criterion is that the
    # two backends are sample-for-sample interchangeable.
    np.testing.assert_array_equal(spins_d, spins_s)
    np.testing.assert_array_equal(fields_d, fields_s)


class _ExpireAfter:
    """Duck-typed deadline: expires on the Nth expired() poll."""

    def __init__(self, polls):
        self.polls = polls
        self.calls = 0

    def expired(self):
        self.calls += 1
        return self.calls > self.polls


def _anneal(kernel, model, deadline=None, num_reads=6, num_sweeps=40):
    _, h, indptr, indices, data = model.to_csr()
    rng = np.random.default_rng(99)
    spins = rng.choice([-1.0, 1.0], size=(num_reads, len(h)))
    fields = kernels.init_local_fields(h, indptr, indices, data, spins)
    betas = np.geomspace(0.1, 3.0, num_sweeps)
    stats = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        accepted = kernels.run_metropolis_sweeps(
            rng, spins, fields, betas, kernel, indptr, indices, data,
            deadline=deadline, stats=stats,
        )
    return spins, fields, accepted, stats


@pytest.mark.parametrize("kernel", ["sparse", "jit"])
def test_run_metropolis_sweeps_tiers_bitwise_equal(kernel):
    model = _ring_model(70, chords=[(0, 35), (10, 50), (22, 61)])
    spins_d, fields_d, acc_d, _ = _anneal("dense", model)
    spins_k, fields_k, acc_k, _ = _anneal(kernel, model)
    np.testing.assert_array_equal(spins_d, spins_k)
    np.testing.assert_array_equal(fields_d, fields_k)
    assert acc_d == acc_k


@pytest.mark.parametrize("kernel", ["dense", "sparse", "jit"])
def test_run_metropolis_sweeps_deadline_contract(kernel):
    """Every tier stops at the same sweep boundary with the same polls.

    The second expired() poll (sweep DEADLINE_SWEEP_BATCH) reports
    expiry, so exactly one full batch of sweeps completes -- including
    on the jit tier, whose compiled chunks must not cross the
    DEADLINE_SWEEP_BATCH boundary.
    """
    model = _ring_model(70, chords=[(0, 35)])
    deadline = _ExpireAfter(1)
    spins, _, _, stats = _anneal(
        kernel, model, deadline=deadline,
        num_sweeps=kernels.DEADLINE_SWEEP_BATCH * 3,
    )
    assert stats["sweeps_completed"] == kernels.DEADLINE_SWEEP_BATCH
    assert deadline.calls == 2
    # Every tier lands on the bit-identical partial state.
    ref_spins, _, _, _ = _anneal(
        "dense", model, deadline=_ExpireAfter(1),
        num_sweeps=kernels.DEADLINE_SWEEP_BATCH * 3,
    )
    np.testing.assert_array_equal(spins, ref_spins)


def test_jit_chunking_respects_memory_cap(monkeypatch):
    """A tiny JIT_CHUNK_ELEMENTS forces 1-sweep chunks; results and the
    deadline poll schedule must not change."""
    model = _ring_model(70, chords=[(3, 40)])
    reference, ref_fields, ref_acc, _ = _anneal("dense", model)
    monkeypatch.setattr(kernels, "JIT_CHUNK_ELEMENTS", 1)
    deadline = _ExpireAfter(10**9)
    spins, fields, acc, _ = _anneal("jit", model, deadline=deadline)
    np.testing.assert_array_equal(spins, reference)
    np.testing.assert_array_equal(fields, ref_fields)
    assert acc == ref_acc
    # Polled once per DEADLINE_SWEEP_BATCH window, as ever (40 sweeps).
    assert deadline.calls == 3


# ----------------------------------------------------------------------
# Satellite: initial_states validation in neal
# ----------------------------------------------------------------------
def test_neal_rejects_non_spin_initial_states():
    model = _ring_model(4)
    sampler = SimulatedAnnealingSampler(seed=0)
    states = np.ones((3, 4))
    states[1, 2] = 0.0
    with pytest.raises(ValueError, match=r"\+/-1"):
        sampler.sample(model, num_reads=3, num_sweeps=5, initial_states=states)


def test_neal_rejects_out_of_range_initial_states():
    model = _ring_model(4)
    sampler = SimulatedAnnealingSampler(seed=0)
    states = np.ones((2, 4), dtype=np.int64)
    states[0, 0] = 257  # would silently wrap to 1 under a naive int8 cast
    with pytest.raises(ValueError, match="257"):
        sampler.sample(model, num_reads=2, num_sweeps=5, initial_states=states)


def test_neal_rejects_wrong_shape_initial_states():
    model = _ring_model(4)
    sampler = SimulatedAnnealingSampler(seed=0)
    with pytest.raises(ValueError, match="must be"):
        sampler.sample(
            model, num_reads=3, num_sweeps=5, initial_states=np.ones((2, 4))
        )


def test_neal_accepts_valid_initial_states():
    model = _ring_model(4)
    sampler = SimulatedAnnealingSampler(seed=0)
    states = np.array([[1, -1, 1, -1], [-1, 1, -1, 1]])
    result = sampler.sample(
        model, num_reads=2, num_sweeps=5, initial_states=states
    )
    assert len(result) == 2


# ----------------------------------------------------------------------
# Satellite: SQA throughput counters
# ----------------------------------------------------------------------
def test_sqa_reports_throughput_counters():
    model = _ring_model(6)
    result = PathIntegralAnnealer(seed=1).sample(
        model, num_reads=4, num_sweeps=20, trotter_slices=4
    )
    info = result.info
    assert info["num_reads"] == 4
    assert info["num_sweeps"] == 20
    assert info["sampling_time_s"] > 0
    assert info["sweeps_per_s"] > 0
    assert info["kernel"] in kernels.KERNELS
