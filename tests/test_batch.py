"""Tests for cross-problem sweep batching (repro.solvers.batch).

Covers the packed-layout invariants (energies stay exact under column
padding and slot padding), determinism, ragged batches, the shared
deadline contract, and the two opt-in integration points: gauge-batched
machine sampling and shard rounds packed into one kernel invocation.
"""

import warnings

import numpy as np
import pytest

from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.batch import BatchedSweepJob, sample_batched
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.shard import ShardSolver


def _chain(n, coupling=-1.0, field=0.1):
    """A ferromagnetic chain: ground state all-up, easy to anneal."""
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -abs(field))
    for i in range(n - 1):
        model.add_interaction(i, i + 1, coupling)
    return model


def _random_model(n, seed):
    rng = np.random.default_rng(seed)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, float(rng.normal(0, 0.5)))
        model.add_interaction(i, (i + 1) % n, float(rng.choice([-1.0, 1.0])))
    return model


def _assert_identical(a, b):
    assert list(a.variables) == list(b.variables)
    np.testing.assert_array_equal(a.records, b.records)
    np.testing.assert_array_equal(a.energies, b.energies)


# ----------------------------------------------------------------------
# Packing invariants
# ----------------------------------------------------------------------
def test_batched_energies_are_exact_per_model():
    """Padding columns / padding slots must never leak into energies."""
    models = [_random_model(9, 1), _random_model(23, 2), _chain(5)]
    job = BatchedSweepJob(seed=4)
    for model in models:
        job.add(model, num_reads=7)
    results = job.run(num_sweeps=30)
    assert len(results) == len(models)
    for model, result in zip(models, results):
        assert list(result.variables) == list(model.variables)
        np.testing.assert_allclose(
            result.energies, model.energies(result.records)
        )


def test_batched_anneal_solves_easy_chains():
    sizes = [6, 11, 17, 9]
    results = sample_batched(
        [_chain(n) for n in sizes], num_reads=20, num_sweeps=200, seed=1
    )
    for n, result in zip(sizes, results):
        ground = -(n - 1) - 0.1 * n  # all-up: every bond and field happy
        assert result.first.energy == pytest.approx(ground)


def test_batched_same_seed_reproducible():
    models = [_random_model(12, 3), _random_model(30, 4)]
    first = sample_batched(models, num_reads=9, num_sweeps=40, seed=77)
    second = sample_batched(models, num_reads=9, num_sweeps=40, seed=77)
    for a, b in zip(first, second):
        _assert_identical(a, b)


def test_ragged_reads_and_sizes():
    job = BatchedSweepJob(seed=0)
    specs = [(_random_model(4, 5), 3), (_random_model(40, 6), 11),
             (_chain(2), 1)]
    for model, reads in specs:
        job.add(model, num_reads=reads)
    assert len(job) == 3
    results = job.run(num_sweeps=20)
    for p, ((model, reads), result) in enumerate(zip(specs, results)):
        assert result.records.shape[1] == len(model)
        assert int(result.occurrences.sum()) == reads
        assert result.info["batch_index"] == p
        assert result.info["batch_size"] == 3
        assert result.info["solver"] == "batched-sa"
        assert result.info["kernel"] in kernels.KERNELS


def test_per_problem_beta_range_override():
    job = BatchedSweepJob(seed=2)
    job.add(_chain(6), num_reads=4)
    job.add(_chain(6), num_reads=4, beta_range=(0.5, 9.0))
    default, overridden = job.run(num_sweeps=25)
    assert overridden.info["beta_range"] == (0.5, 9.0)
    assert default.info["beta_range"] != (0.5, 9.0)


def test_empty_job_and_validation():
    assert BatchedSweepJob().run() == []
    with pytest.raises(ValueError):
        BatchedSweepJob(kernel="blas")
    job = BatchedSweepJob()
    with pytest.raises(ValueError):
        job.add(_chain(3), num_reads=0)
    with pytest.raises(ValueError):
        job.add(_chain(3), beta_range=(2.0, 1.0))


def test_explicit_jit_without_numba_warns(monkeypatch):
    monkeypatch.setitem(kernels._JIT_STATE, "checked", True)
    monkeypatch.setitem(kernels._JIT_STATE, "module", None)
    monkeypatch.setitem(kernels._JIT_STATE, "warned", False)
    job = BatchedSweepJob(seed=0, kernel="jit")
    job.add(_chain(4), num_reads=2)
    with pytest.warns(RuntimeWarning, match="requires numba"):
        (result,) = job.run(num_sweeps=10)
    assert result.info["kernel"] == "sparse"


@pytest.mark.skipif(not kernels.jit_available(), reason="numba not installed")
def test_batched_jit_matches_numpy_bitwise():
    models = [_random_model(10, 8), _random_model(25, 9), _chain(7)]

    def run(kernel):
        return sample_batched(
            models, num_reads=6, num_sweeps=35, seed=13, kernel=kernel
        )

    for a, b in zip(run("sparse"), run("jit")):
        _assert_identical(a, b)
        assert b.info["kernel"] == "jit"


# ----------------------------------------------------------------------
# Deadline contract
# ----------------------------------------------------------------------
class _ExpireAfter:
    def __init__(self, polls):
        self.polls = polls
        self.calls = 0

    def expired(self):
        self.calls += 1
        return self.calls > self.polls


def test_deadline_interrupts_whole_batch():
    models = [_random_model(8, 10), _random_model(12, 11)]
    job = BatchedSweepJob(seed=5)
    for model in models:
        job.add(model, num_reads=3)
    results = job.run(
        num_sweeps=kernels.DEADLINE_SWEEP_BATCH * 4,
        deadline=_ExpireAfter(1),
    )
    for result in results:
        assert result.info["deadline_interrupted"] is True
        assert (
            result.info["num_sweeps_completed"]
            == kernels.DEADLINE_SWEEP_BATCH
        )
        # Partial results still carry exact energies.
        np.testing.assert_allclose(
            result.energies,
            models[result.info["batch_index"]].energies(result.records),
        )


# ----------------------------------------------------------------------
# Integration: gauge-batched machine sampling
# ----------------------------------------------------------------------
def _machine_problem():
    props = MachineProperties(cells=4, dropout_fraction=0.0)
    machine = DWaveSimulator(properties=props, seed=11)
    model = IsingModel()
    for u, v in list(machine.working_graph.edges())[:12]:
        model.add_variable(u, 0.25)
        model.add_variable(v, -0.25)
        model.add_interaction(u, v, -1.0)
    return props, model


def test_machine_batch_gauges_deterministic_and_flagged():
    props, model = _machine_problem()

    def run():
        return DWaveSimulator(properties=props, seed=11).sample_ising(
            model,
            num_reads=12,
            num_spin_reversal_transforms=4,
            batch_gauges=True,
        )

    first = run()
    assert first.info.get("batched_gauges") is True
    assert int(first.occurrences.sum()) == 12
    _assert_identical(first, run())


# ----------------------------------------------------------------------
# Integration: batched shard rounds
# ----------------------------------------------------------------------
def _planted_model(n, seed=5):
    rng = np.random.default_rng(seed)
    planted = rng.choice([-1, 1], size=n)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -0.25 * float(planted[i]))
    for i in range(n - 1):
        model.add_interaction(i, i + 1, -float(planted[i] * planted[i + 1]))
    ground = model.energy({i: int(planted[i]) for i in range(n)})
    return model, ground


def test_shard_batch_rounds_solves_and_reproduces():
    model, ground = _planted_model(48)

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return ShardSolver(
                properties=MachineProperties(cells=2, dropout_fraction=0.0),
                machines=4,
                seed=3,
                num_reads_per_shard=10,
                batch_rounds=True,
            ).sample(model, num_reads=2)

    first = run()
    assert first.info["shard_completion"] == 1.0
    assert first.first.energy == pytest.approx(ground)
    _assert_identical(first, run())
