"""Differential fuzzing of the whole synthesis pipeline.

Random combinational Verilog modules are compiled three ways --
unoptimized, optimized + techmapped, and EDIF-roundtripped -- and
simulated on every input combination.  All three must agree bit for
bit; a disagreement pinpoints a bug in the optimizer, the techmapper,
or the EDIF serialization.  A restricted-subset oracle (pure bitwise
operators, where Verilog semantics are unambiguous) is additionally
checked against Python integer semantics.
"""

import random

import pytest

from repro.edif.reader import read_edif
from repro.edif.writer import write_edif
from repro.hdl import elaborate
from repro.synth.opt import optimize
from repro.synth.simulate import NetlistSimulator
from repro.synth.techmap import techmap

INPUTS = [("a", 3), ("b", 3), ("c", 2), ("d", 1)]


def _random_expression(rng: random.Random, depth: int) -> str:
    if depth == 0 or rng.random() < 0.25:
        choice = rng.random()
        if choice < 0.55:
            name, width = rng.choice(INPUTS)
            if rng.random() < 0.3:
                return f"{name}[{rng.randrange(width)}]"
            return name
        if choice < 0.8:
            return f"{rng.randint(1, 3)}'d{rng.randrange(8)}"
        return str(rng.randrange(8))
    operator = rng.choice(
        ["+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!=",
         "&&", "||", "<<", ">>"]
    )
    left = _random_expression(rng, depth - 1)
    right = _random_expression(rng, depth - 1)
    if rng.random() < 0.15:
        return f"(~({left}))"
    if rng.random() < 0.1:
        cond = _random_expression(rng, 0)
        return f"(({cond}) ? ({left}) : ({right}))"
    return f"(({left}) {operator} ({right}))"


def _random_module(seed: int) -> str:
    rng = random.Random(seed)
    expressions = [
        _random_expression(rng, rng.randint(1, 3)) for _ in range(3)
    ]
    declarations = "\n".join(
        f"    input [{width - 1}:0] {name};" for name, width in INPUTS
    )
    assigns = "\n".join(
        f"    assign y{i} = {expr};" for i, expr in enumerate(expressions)
    )
    outputs = "\n".join(f"    output [3:0] y{i};" for i in range(3))
    ports = ", ".join([name for name, _ in INPUTS] + [f"y{i}" for i in range(3)])
    return (
        f"module fuzz ({ports});\n{declarations}\n{outputs}\n{assigns}\n"
        "endmodule\n"
    )


def _all_inputs():
    total = sum(width for _, width in INPUTS)
    for value in range(1 << total):
        inputs, shift = {}, 0
        for name, width in INPUTS:
            inputs[name] = (value >> shift) & ((1 << width) - 1)
            shift += width
        yield inputs


@pytest.mark.parametrize("seed", range(20))
def test_three_way_differential(seed):
    source = _random_module(seed)
    raw = elaborate(source)
    optimized = techmap(optimize(raw))
    roundtripped = read_edif(write_edif(optimized))

    sims = [NetlistSimulator(n) for n in (raw, optimized, roundtripped)]
    for inputs in _all_inputs():
        results = [sim.evaluate(inputs) for sim in sims]
        assert results[0] == results[1] == results[2], (seed, inputs, source)


@pytest.mark.parametrize("seed", range(10))
def test_bitwise_subset_against_python(seed):
    """Pure bitwise ops on equal widths: unambiguous semantics."""
    rng = random.Random(seed + 1000)

    def expr(depth):
        if depth == 0:
            return rng.choice(["a", "b", "x"])
        op = rng.choice(["&", "|", "^"])
        if rng.random() < 0.2:
            return f"(~({expr(depth - 1)}))"
        return f"(({expr(depth - 1)}) {op} ({expr(depth - 1)}))"

    body = expr(3)
    source = (
        "module bits (a, b, x, y);\n"
        "    input [3:0] a, b, x;\n"
        "    output [3:0] y;\n"
        f"    assign y = {body};\n"
        "endmodule\n"
    )
    sim = NetlistSimulator(techmap(optimize(elaborate(source))))
    python_expr = body.replace("~", "~")
    for a in range(0, 16, 3):
        for b in range(0, 16, 5):
            for x in range(0, 16, 7):
                expected = eval(python_expr, {}, {"a": a, "b": b, "x": x}) & 0xF
                assert sim.evaluate({"a": a, "b": b, "x": x})["y"] == expected


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_qmasm_ground_truth(seed):
    """For tiny fuzzed circuits, the Hamiltonian's ground states must be
    exactly the circuit's truth table -- the end-to-end semantic check."""
    rng = random.Random(seed + 2000)

    def expr(depth):
        if depth == 0:
            return rng.choice(["p", "q", "r"])
        op = rng.choice(["&", "|", "^"])
        if rng.random() < 0.25:
            return f"(~({expr(depth - 1)}))"
        return f"(({expr(depth - 1)}) {op} ({expr(depth - 1)}))"

    body = expr(2)
    source = (
        "module tiny (p, q, r, y);\n"
        "    input p, q, r;\n"
        "    output y;\n"
        f"    assign y = {body};\n"
        "endmodule\n"
    )
    from repro.edif2qmasm.translate import netlist_to_qmasm
    from repro.ising.model import spin_to_bool
    from repro.qmasm.assembler import assemble
    from repro.qmasm.parser import parse_qmasm
    from repro.solvers.exact import ExactSolver

    netlist = techmap(optimize(elaborate(source)))
    simulator = NetlistSimulator(netlist)
    logical = assemble(parse_qmasm(netlist_to_qmasm(netlist)))
    model, representative = logical.to_ising()
    if len(model) > 18:
        pytest.skip("fuzzed model too large for exhaustive enumeration")
    ground = ExactSolver(max_variables=18).ground_states(model)

    observed = set()
    for sample in ground:
        full = logical.expand_sample(sample.assignment, representative)
        observed.add(
            tuple(spin_to_bool(full[n]) for n in ("p", "q", "r", "y"))
        )
    expected = {
        (bool(p), bool(q), bool(r),
         bool(simulator.evaluate({"p": p, "q": q, "r": r})["y"]))
        for p in (0, 1) for q in (0, 1) for r in (0, 1)
    }
    assert observed == expected, source
