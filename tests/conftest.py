"""Shared fixtures: paper listings, small models, compilers, servers."""

from __future__ import annotations

import faulthandler
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import VerilogAnnealerCompiler
from repro.ising.model import IsingModel

# ----------------------------------------------------------------------
# The paper's Verilog listings, verbatim.
# ----------------------------------------------------------------------
FIGURE_2A = """
module circuit (s, a, b, c);
    input s, a, b;
    output [1:0] c;
    assign c = s ? a+b : a-b;
endmodule
"""

LISTING_3_COUNTER = """
module count (clk, inc, reset, out);
    input clk;
    input inc;
    input reset;
    output [5:0] out;
    reg [5:0] var;
    always @(posedge clk)
      if (reset)
        var <= 0;
      else
        if (inc)
          var <= var + 1;
    assign out = var;
endmodule
"""

LISTING_5_CIRCSAT = """
module circsat (a, b, c, y);
    input a, b, c;
    output y;
    wire [1:10] x;
    assign x[1] = a;
    assign x[2] = b;
    assign x[3] = c;
    assign x[4] = ~x[3];
    assign x[5] = x[1] | x[2];
    assign x[6] = ~x[4];
    assign x[7] = x[1] & x[2] & x[4];
    assign x[8] = x[5] | x[6];
    assign x[9] = x[6] | x[7];
    assign x[10] = x[8] & x[9] & x[7];
    assign y = x[10];
endmodule
"""

LISTING_6_MULT = """
module mult (A, B, C);
   input [3:0] A;
   input [3:0] B;
   output[7:0] C;
   assign C = A * B;
endmodule
"""

LISTING_7_AUSTRALIA = """
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
   input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
   output valid;
   assign valid = WA != NT && WA != SA && NT != SA && NT != QLD
       && SA != QLD && SA != NSW && SA != VIC && QLD != NSW
       && NSW != VIC && NSW != ACT;
endmodule
"""

LISTING_8_MINIZINC = """
var 1..4: NSW;
var 1..4: QLD;
var 1..4: SA;
var 1..4: VIC;
var 1..4: WA;
var 1..4: NT;
var 1..4: ACT;
constraint WA != NT;
constraint WA != SA;
constraint NT != SA;
constraint NT != QLD;
constraint SA != QLD;
constraint SA != NSW;
constraint SA != VIC;
constraint QLD != NSW;
constraint NSW != VIC;
constraint NSW != ACT;
solve satisfy;
"""

AUSTRALIA_REGIONS = ["NSW", "QLD", "SA", "VIC", "WA", "NT", "ACT"]
AUSTRALIA_ADJACENT = [
    ("WA", "NT"), ("WA", "SA"), ("NT", "SA"), ("NT", "QLD"),
    ("SA", "QLD"), ("SA", "NSW"), ("SA", "VIC"), ("QLD", "NSW"),
    ("NSW", "VIC"), ("NSW", "ACT"),
]


@pytest.fixture(scope="session")
def compiler() -> VerilogAnnealerCompiler:
    """A session-wide compiler with a fixed seed."""
    return VerilogAnnealerCompiler(seed=2019)


@pytest.fixture(scope="session")
def circsat_program(compiler):
    return compiler.compile(LISTING_5_CIRCSAT)


@pytest.fixture(scope="session")
def figure2_program(compiler):
    return compiler.compile(FIGURE_2A)


@pytest.fixture()
def triangle_model() -> IsingModel:
    """A frustrated 3-spin antiferromagnet (6 degenerate ground states)."""
    model = IsingModel()
    for pair in (("a", "b"), ("b", "c"), ("c", "a")):
        model.add_interaction(*pair, 1.0)
    return model


# ----------------------------------------------------------------------
# Annealing-service fixtures (tests/test_service.py, benchmarks).
#
# Server tests must never hang the suite: every fixture below is
# wall-clock bounded, and an autouse faulthandler guard (the stdlib
# stand-in for pytest-timeout, which is not a dependency of this repo)
# dumps all stacks and kills the process if a service test wedges.
# ----------------------------------------------------------------------
SERVICE_TEST_TIMEOUT_S = 120.0


@pytest.fixture(autouse=True)
def _service_hang_guard(request):
    """Hard wall-clock bound for service/benchmark tests only."""
    path = str(getattr(request, "fspath", ""))
    if "test_service" not in path:
        yield
        return
    faulthandler.dump_traceback_later(SERVICE_TEST_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


class ServiceClient:
    """A tiny JSON-over-HTTP client for the test server.

    Returns ``(status, decoded_body)`` and never raises on HTTP error
    statuses -- 4xx/5xx bodies are part of the contract under test.
    """

    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")

    def request(
        self, method, path, payload=None, tenant="tests", timeout_s=30.0, headers=None
    ):
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        all_headers = {"Content-Type": "application/json", "X-Tenant": tenant}
        if headers:
            all_headers.update(headers)
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers=all_headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout_s) as reply:
                body = reply.read().decode("utf-8")
                headers = dict(reply.headers)
                status = reply.status
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8")
            headers = dict(exc.headers)
            status = exc.code
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError:
            decoded = body
        return status, decoded, headers

    def get(self, path, **kwargs):
        status, body, _ = self.request("GET", path, **kwargs)
        return status, body

    def post(self, path, payload, **kwargs):
        status, body, _ = self.request("POST", path, payload=payload, **kwargs)
        return status, body

    def await_terminal(self, job_id, timeout_s=60.0, poll_s=0.02):
        """Poll one job to a terminal state (bounded)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status, snapshot = self.get(f"/jobs/{job_id}")
            assert status == 200, f"poll failed: {status} {snapshot}"
            if snapshot["state"] in ("done", "error", "timeout"):
                return snapshot
            time.sleep(poll_s)
        raise AssertionError(f"job {job_id} still {snapshot['state']} after {timeout_s}s")


def start_service_server(config=None):
    """Start an AnnealingServer on an ephemeral port; bounded readiness.

    Returns ``(server, client)``; the caller owns shutdown (the
    ``service_server`` fixture wraps this with asserted-clean teardown).
    """
    from repro.service.app import AnnealingServer, ServiceConfig

    server = AnnealingServer(config or ServiceConfig(port=0, workers=2))
    thread = threading.Thread(
        target=server.serve_forever, name="service-test-server", daemon=True
    )
    thread.start()
    client = ServiceClient(server.url)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            status, body = client.get("/healthz", timeout_s=2.0)
            if status == 200 and body.get("status") == "ok":
                return server, client
        except (OSError, urllib.error.URLError):
            pass
        time.sleep(0.02)
    server.shutdown_service(drain=False, timeout_s=5.0)
    raise AssertionError("service did not become healthy within 10s")


@pytest.fixture()
def service_server():
    """A running server + client; teardown asserts a clean wind-down.

    The thread-leak check is part of the serving contract: after a
    drained shutdown no worker or handler thread may survive.
    """
    baseline_threads = {t.ident for t in threading.enumerate()}
    server, client = start_service_server()
    yield server, client
    clean = server.shutdown_service(drain=True, timeout_s=30.0)
    assert clean, "service shutdown did not drain cleanly"
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [
            t
            for t in threading.enumerate()
            if t.ident not in baseline_threads and t.is_alive()
        ]
        if not leaked:
            break
        time.sleep(0.05)
    assert not leaked, f"service left threads behind: {[t.name for t in leaked]}"
