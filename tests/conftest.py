"""Shared fixtures: paper listings, small models, and compilers."""

from __future__ import annotations

import pytest

from repro import VerilogAnnealerCompiler
from repro.ising.model import IsingModel

# ----------------------------------------------------------------------
# The paper's Verilog listings, verbatim.
# ----------------------------------------------------------------------
FIGURE_2A = """
module circuit (s, a, b, c);
    input s, a, b;
    output [1:0] c;
    assign c = s ? a+b : a-b;
endmodule
"""

LISTING_3_COUNTER = """
module count (clk, inc, reset, out);
    input clk;
    input inc;
    input reset;
    output [5:0] out;
    reg [5:0] var;
    always @(posedge clk)
      if (reset)
        var <= 0;
      else
        if (inc)
          var <= var + 1;
    assign out = var;
endmodule
"""

LISTING_5_CIRCSAT = """
module circsat (a, b, c, y);
    input a, b, c;
    output y;
    wire [1:10] x;
    assign x[1] = a;
    assign x[2] = b;
    assign x[3] = c;
    assign x[4] = ~x[3];
    assign x[5] = x[1] | x[2];
    assign x[6] = ~x[4];
    assign x[7] = x[1] & x[2] & x[4];
    assign x[8] = x[5] | x[6];
    assign x[9] = x[6] | x[7];
    assign x[10] = x[8] & x[9] & x[7];
    assign y = x[10];
endmodule
"""

LISTING_6_MULT = """
module mult (A, B, C);
   input [3:0] A;
   input [3:0] B;
   output[7:0] C;
   assign C = A * B;
endmodule
"""

LISTING_7_AUSTRALIA = """
module australia (NSW, QLD, SA, VIC, WA, NT, ACT, valid);
   input [1:0] NSW, QLD, SA, VIC, WA, NT, ACT;
   output valid;
   assign valid = WA != NT && WA != SA && NT != SA && NT != QLD
       && SA != QLD && SA != NSW && SA != VIC && QLD != NSW
       && NSW != VIC && NSW != ACT;
endmodule
"""

LISTING_8_MINIZINC = """
var 1..4: NSW;
var 1..4: QLD;
var 1..4: SA;
var 1..4: VIC;
var 1..4: WA;
var 1..4: NT;
var 1..4: ACT;
constraint WA != NT;
constraint WA != SA;
constraint NT != SA;
constraint NT != QLD;
constraint SA != QLD;
constraint SA != NSW;
constraint SA != VIC;
constraint QLD != NSW;
constraint NSW != VIC;
constraint NSW != ACT;
solve satisfy;
"""

AUSTRALIA_REGIONS = ["NSW", "QLD", "SA", "VIC", "WA", "NT", "ACT"]
AUSTRALIA_ADJACENT = [
    ("WA", "NT"), ("WA", "SA"), ("NT", "SA"), ("NT", "QLD"),
    ("SA", "QLD"), ("SA", "NSW"), ("SA", "VIC"), ("QLD", "NSW"),
    ("NSW", "VIC"), ("NSW", "ACT"),
]


@pytest.fixture(scope="session")
def compiler() -> VerilogAnnealerCompiler:
    """A session-wide compiler with a fixed seed."""
    return VerilogAnnealerCompiler(seed=2019)


@pytest.fixture(scope="session")
def circsat_program(compiler):
    return compiler.compile(LISTING_5_CIRCSAT)


@pytest.fixture(scope="session")
def figure2_program(compiler):
    return compiler.compile(FIGURE_2A)


@pytest.fixture()
def triangle_model() -> IsingModel:
    """A frustrated 3-spin antiferromagnet (6 degenerate ground states)."""
    model = IsingModel()
    for pair in (("a", "b"), ("b", "c"), ("c", "a")):
        model.add_interaction(*pair, 1.0)
    return model
