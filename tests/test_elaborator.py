"""Differential tests for Verilog elaboration.

Each supported construct is elaborated and its netlist simulated
against a Python model of the expected Verilog semantics, usually over
all input combinations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import elaborate
from repro.hdl.errors import ElaborationError
from repro.synth.simulate import NetlistSimulator


def _sim(source: str, **kwargs) -> NetlistSimulator:
    return NetlistSimulator(elaborate(source, **kwargs))


def _check_exhaustive(source, widths, oracle, **kwargs):
    """Compare the circuit against ``oracle(**inputs)`` on all inputs."""
    sim = _sim(source, **kwargs)
    names = list(widths)
    total_bits = sum(widths.values())
    assert total_bits <= 16, "too many input bits for exhaustive check"
    for value in range(1 << total_bits):
        inputs = {}
        shift = 0
        for name in names:
            inputs[name] = (value >> shift) & ((1 << widths[name]) - 1)
            shift += widths[name]
        assert sim.evaluate(inputs) == oracle(**inputs), inputs


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
def test_bitwise_operators():
    _check_exhaustive(
        """
        module m (a, b, x, o, n, e);
            input [2:0] a, b;
            output [2:0] x, o, n, e;
            assign x = a ^ b;
            assign o = a | b;
            assign n = ~a;
            assign e = a & b;
        endmodule
        """,
        {"a": 3, "b": 3},
        lambda a, b: {"x": a ^ b, "o": a | b, "n": (~a) & 7, "e": a & b},
    )


def test_arithmetic_operators():
    _check_exhaustive(
        """
        module m (a, b, s, d, p);
            input [2:0] a, b;
            output [3:0] s;
            output [2:0] d;
            output [5:0] p;
            assign s = a + b;
            assign d = a - b;
            assign p = a * b;
        endmodule
        """,
        {"a": 3, "b": 3},
        lambda a, b: {"s": a + b, "d": (a - b) & 7, "p": a * b},
    )


def test_carry_preserved_by_lhs_context():
    """Figure 2 semantics: `c = a + b` with wider c keeps the carry."""
    _check_exhaustive(
        """
        module m (a, b, c);
            input a, b;
            output [1:0] c;
            assign c = a + b;
        endmodule
        """,
        {"a": 1, "b": 1},
        lambda a, b: {"c": a + b},
    )


def test_division_and_modulo():
    _check_exhaustive(
        """
        module m (a, b, q, r);
            input [2:0] a, b;
            output [2:0] q, r;
            assign q = a / b;
            assign r = a % b;
        endmodule
        """,
        {"a": 3, "b": 3},
        lambda a, b: {
            "q": a // b if b else 7,
            "r": a % b if b else a,
        },
    )


def test_relational_operators():
    _check_exhaustive(
        """
        module m (a, b, lt, le, gt, ge, eq, ne);
            input [2:0] a, b;
            output lt, le, gt, ge, eq, ne;
            assign lt = a < b;
            assign le = a <= b;
            assign gt = a > b;
            assign ge = a >= b;
            assign eq = a == b;
            assign ne = a != b;
        endmodule
        """,
        {"a": 3, "b": 3},
        lambda a, b: {
            "lt": int(a < b), "le": int(a <= b), "gt": int(a > b),
            "ge": int(a >= b), "eq": int(a == b), "ne": int(a != b),
        },
    )


def test_logical_operators_are_boolean():
    _check_exhaustive(
        """
        module m (a, b, land, lor, lnot);
            input [1:0] a, b;
            output land, lor, lnot;
            assign land = a && b;
            assign lor = a || b;
            assign lnot = !a;
        endmodule
        """,
        {"a": 2, "b": 2},
        lambda a, b: {
            "land": int(bool(a) and bool(b)),
            "lor": int(bool(a) or bool(b)),
            "lnot": int(not a),
        },
    )


def test_reduction_operators():
    _check_exhaustive(
        """
        module m (a, rand, ror, rxor);
            input [3:0] a;
            output rand, ror, rxor;
            assign rand = &a;
            assign ror = |a;
            assign rxor = ^a;
        endmodule
        """,
        {"a": 4},
        lambda a: {
            "rand": int(a == 15),
            "ror": int(a != 0),
            "rxor": bin(a).count("1") % 2,
        },
    )


def test_shift_operators():
    _check_exhaustive(
        """
        module m (a, n, l, r, lc);
            input [3:0] a;
            input [1:0] n;
            output [3:0] l, r, lc;
            assign l = a << n;
            assign r = a >> n;
            assign lc = a << 2;
        endmodule
        """,
        {"a": 4, "n": 2},
        lambda a, n: {
            "l": (a << n) & 15, "r": a >> n, "lc": (a << 2) & 15
        },
    )


def test_ternary_and_nesting():
    _check_exhaustive(
        """
        module m (s, t, a, b, c, y);
            input s, t;
            input [1:0] a, b, c;
            output [1:0] y;
            assign y = s ? (t ? a : b) : c;
        endmodule
        """,
        {"s": 1, "t": 1, "a": 2, "b": 2, "c": 2},
        lambda s, t, a, b, c: {"y": (a if t else b) if s else c},
    )


def test_unary_minus():
    _check_exhaustive(
        """
        module m (a, y);
            input [2:0] a;
            output [2:0] y;
            assign y = -a;
        endmodule
        """,
        {"a": 3},
        lambda a: {"y": (-a) & 7},
    )


# ----------------------------------------------------------------------
# Bit selects, part selects, concatenation
# ----------------------------------------------------------------------
def test_bit_and_part_selects():
    _check_exhaustive(
        """
        module m (a, hi, lo, mid);
            input [5:0] a;
            output hi, lo;
            output [3:0] mid;
            assign hi = a[5];
            assign lo = a[0];
            assign mid = a[4:1];
        endmodule
        """,
        {"a": 6},
        lambda a: {
            "hi": (a >> 5) & 1, "lo": a & 1, "mid": (a >> 1) & 15
        },
    )


def test_ascending_range_declaration():
    """Listing 5 uses `wire [1:10] x;` -- x[1] is the MSB."""
    _check_exhaustive(
        """
        module m (a, b, first, last);
            input a, b;
            output first, last;
            wire [1:2] x;
            assign x[1] = a;
            assign x[2] = b;
            assign first = x[1];
            assign last = x[2];
        endmodule
        """,
        {"a": 1, "b": 1},
        lambda a, b: {"first": a, "last": b},
    )


def test_variable_bit_select():
    _check_exhaustive(
        """
        module m (a, i, y);
            input [3:0] a;
            input [1:0] i;
            output y;
            assign y = a[i];
        endmodule
        """,
        {"a": 4, "i": 2},
        lambda a, i: {"y": (a >> i) & 1},
    )


def test_concatenation_and_replication():
    _check_exhaustive(
        """
        module m (a, b, cat, rep);
            input [1:0] a;
            input b;
            output [2:0] cat;
            output [3:0] rep;
            assign cat = {a, b};
            assign rep = {4{b}};
        endmodule
        """,
        {"a": 2, "b": 1},
        lambda a, b: {"cat": (a << 1) | b, "rep": 0b1111 * b},
    )


def test_concat_lvalue():
    _check_exhaustive(
        """
        module m (x, hi, lo);
            input [3:0] x;
            output [1:0] hi, lo;
            assign {hi, lo} = x;
        endmodule
        """,
        {"x": 4},
        lambda x: {"hi": x >> 2, "lo": x & 3},
    )


def test_partselect_lvalue():
    _check_exhaustive(
        """
        module m (a, b, y);
            input [1:0] a, b;
            output [3:0] y;
            assign y[1:0] = a;
            assign y[3:2] = b;
        endmodule
        """,
        {"a": 2, "b": 2},
        lambda a, b: {"y": (b << 2) | a},
    )


# ----------------------------------------------------------------------
# Widths, truncation, literals
# ----------------------------------------------------------------------
def test_assignment_truncates_and_extends():
    _check_exhaustive(
        """
        module m (a, narrow, wide);
            input [3:0] a;
            output [1:0] narrow;
            output [5:0] wide;
            assign narrow = a;
            assign wide = a;
        endmodule
        """,
        {"a": 4},
        lambda a: {"narrow": a & 3, "wide": a},
    )


def test_sized_literals_in_expressions():
    sim = _sim(
        """
        module m (y, z);
            output [7:0] y;
            output [3:0] z;
            assign y = 8'hA5;
            assign z = 4'b0110 ^ 4'd3;
        endmodule
        """
    )
    assert sim.evaluate({}) == {"y": 0xA5, "z": 0b0101}


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def test_parameters_size_signals():
    sim = _sim(
        """
        module m (a, y);
            parameter W = 5;
            input [W-1:0] a;
            output [W-1:0] y;
            assign y = a + 1;
        endmodule
        """
    )
    assert sim.evaluate({"a": 31})["y"] == 0  # wraps at 5 bits


def test_parameter_overrides():
    netlist = elaborate(
        """
        module m (a, y);
            parameter W = 2;
            input [W-1:0] a;
            output [W-1:0] y;
            assign y = a;
        endmodule
        """,
        parameters={"W": 7},
    )
    assert netlist.ports["a"].width == 7


def test_localparam_cannot_be_overridden():
    with pytest.raises(ElaborationError):
        elaborate(
            "module m; localparam W = 2; endmodule", parameters={"W": 3}
        )


def test_unknown_parameter_override_rejected():
    with pytest.raises(ElaborationError):
        elaborate("module m; endmodule", parameters={"X": 1})


# ----------------------------------------------------------------------
# Always blocks
# ----------------------------------------------------------------------
def test_combinational_always_with_case():
    _check_exhaustive(
        """
        module m (sel, y);
            input [1:0] sel;
            output reg [2:0] y;
            always @* begin
                case (sel)
                    0: y = 1;
                    1: y = 2;
                    2: y = 4;
                    default: y = 7;
                endcase
            end
        endmodule
        """,
        {"sel": 2},
        lambda sel: {"y": [1, 2, 4, 7][sel]},
    )


def test_combinational_if_else():
    _check_exhaustive(
        """
        module m (a, b, y);
            input [1:0] a, b;
            output reg [1:0] y;
            always @(a or b)
                if (a > b)
                    y = a;
                else
                    y = b;
        endmodule
        """,
        {"a": 2, "b": 2},
        lambda a, b: {"y": max(a, b)},
    )


def test_blocking_assignment_ordering():
    _check_exhaustive(
        """
        module m (a, y);
            input [2:0] a;
            output reg [2:0] y;
            reg [2:0] t;
            always @* begin
                t = a + 1;
                y = t + 1;
            end
        endmodule
        """,
        {"a": 3},
        lambda a: {"y": (a + 2) & 7},
    )


def test_sequential_register_and_hold():
    sim = _sim(
        """
        module m (clk, en, d, q);
            input clk, en;
            input [1:0] d;
            output [1:0] q;
            reg [1:0] state;
            always @(posedge clk)
                if (en)
                    state <= d;
            assign q = state;
        endmodule
        """
    )
    trace = sim.run(
        [
            {"clk": 0, "en": 1, "d": 2},
            {"clk": 0, "en": 0, "d": 3},
            {"clk": 0, "en": 1, "d": 1},
        ]
    )
    assert [t["q"] for t in trace] == [0, 2, 2]
    assert sim.step({"clk": 0, "en": 0, "d": 0})["q"] == 1


def test_nonblocking_swap():
    """The classic: two regs swap values with nonblocking assigns."""
    sim = _sim(
        """
        module m (clk, a, b);
            input clk;
            output a, b;
            reg x, y;
            always @(posedge clk) begin
                x <= y;
                y <= x;
            end
            assign a = x;
            assign b = y;
        endmodule
        """
    )
    sim.reset()
    # Seed state: x=0, y=0 -> force via reset(True) for a distinguishable swap.
    sim.reset(initial_state=True)
    # both start 1; swap keeps them 1 -- instead check blocking difference:
    out = sim.step({"clk": 0})
    assert (out["a"], out["b"]) == (1, 1)


def test_for_loop_unrolls():
    _check_exhaustive(
        """
        module m (a, y);
            input [3:0] a;
            output reg [3:0] y;
            integer i;
            always @* begin
                y = 0;
                for (i = 0; i < 4; i = i + 1)
                    y[i] = a[3 - i];
            end
        endmodule
        """,
        {"a": 4},
        lambda a: {"y": int(f"{a:04b}"[::-1][::-1], 2) if False else int(bin(a)[2:].zfill(4)[::-1], 2)},
    )


def test_latch_inference_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (a, y);
                input a;
                output reg y;
                always @* if (a) y = 1;
            endmodule
            """
        )


def test_read_before_write_in_comb_block_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (a, y);
                input a;
                output reg y;
                always @* y = y | a;
            endmodule
            """
        )


def test_assign_to_non_reg_in_always_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (a, y);
                input a;
                output y;
                always @* y = a;
            endmodule
            """
        )


def test_multiple_clock_edges_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (clk, rst, q);
                input clk, rst;
                output reg q;
                always @(posedge clk or posedge rst) q <= 1;
            endmodule
            """
        )


def test_non_constant_loop_bound_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (n, y);
                input [3:0] n;
                output reg y;
                integer i;
                always @* begin
                    y = 0;
                    for (i = 0; i < n; i = i + 1) y = ~y;
                end
            endmodule
            """
        )


# ----------------------------------------------------------------------
# Hierarchy
# ----------------------------------------------------------------------
def test_module_instantiation_named():
    _check_exhaustive(
        """
        module half_adder (a, b, s, c);
            input a, b;
            output s, c;
            assign s = a ^ b;
            assign c = a & b;
        endmodule

        module m (x, y, sum, carry);
            input x, y;
            output sum, carry;
            half_adder ha (.a(x), .b(y), .s(sum), .c(carry));
        endmodule
        """,
        {"x": 1, "y": 1},
        lambda x, y: {"sum": x ^ y, "carry": x & y},
        top="m",
    )


def test_module_instantiation_positional_and_nested():
    _check_exhaustive(
        """
        module inv (a, y);
            input a;
            output y;
            assign y = ~a;
        endmodule

        module buf2 (a, y);
            input a;
            output y;
            wire mid;
            inv i1 (a, mid);
            inv i2 (mid, y);
        endmodule

        module m (p, q);
            input p;
            output q;
            buf2 b (.a(p), .y(q));
        endmodule
        """,
        {"p": 1},
        lambda p: {"q": p},
        top="m",
    )


def test_parameterized_instance():
    _check_exhaustive(
        """
        module addk (a, y);
            parameter K = 1;
            input [3:0] a;
            output [3:0] y;
            assign y = a + K;
        endmodule

        module m (a, y);
            input [3:0] a;
            output [3:0] y;
            addk #(.K(3)) u (.a(a), .y(y));
        endmodule
        """,
        {"a": 4},
        lambda a: {"y": (a + 3) & 15},
        top="m",
    )


def test_unconnected_input_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module inv (a, y); input a; output y; assign y = ~a; endmodule
            module m (q); output q; inv u (.y(q)); endmodule
            """,
            top="m",
        )


def test_unknown_module_rejected():
    with pytest.raises(ElaborationError):
        elaborate("module m; ghost u (.a(1'b0)); endmodule")


# ----------------------------------------------------------------------
# Miscellaneous semantics and errors
# ----------------------------------------------------------------------
def test_top_module_selection():
    source = """
    module a (y); output y; assign y = 1'b0; endmodule
    module b (y); output y; assign y = 1'b1; endmodule
    """
    assert _sim(source, top="a").evaluate({})["y"] == 0
    assert _sim(source, top="b").evaluate({})["y"] == 1
    # default: last module
    assert _sim(source).evaluate({})["y"] == 1


def test_unknown_identifier_rejected():
    with pytest.raises(ElaborationError):
        elaborate("module m (y); output y; assign y = ghost; endmodule")


def test_duplicate_declaration_rejected():
    with pytest.raises(ElaborationError):
        elaborate("module m; wire x; wire x; endmodule")


def test_index_out_of_range_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            "module m (a, y); input [3:0] a; output y; assign y = a[9]; endmodule"
        )


def test_inout_unsupported():
    with pytest.raises(ElaborationError):
        elaborate("module m (x); inout x; endmodule")


def test_signed_unsupported():
    with pytest.raises(ElaborationError):
        elaborate("module m; wire signed [3:0] x; endmodule")


def test_output_reg_declaration_styles():
    # "output reg [1:0] y" and separate "output y; reg y;" both work.
    for source in (
        "module m (clk, y); input clk; output reg y; always @(posedge clk) y <= 1; endmodule",
        "module m (clk, y); input clk; output y; reg y; always @(posedge clk) y <= 1; endmodule",
    ):
        sim = _sim(source)
        assert sim.step({"clk": 0})["y"] == 0
        assert sim.step({"clk": 0})["y"] == 1


@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_wide_expression_property(a, b):
    sim = _sim(
        """
        module m (a, b, y);
            input [7:0] a, b;
            output [8:0] y;
            assign y = (a + b) ^ (a & b);
        endmodule
        """
    )
    assert sim.evaluate({"a": a, "b": b})["y"] == ((a + b) ^ (a & b)) & 0x1FF
