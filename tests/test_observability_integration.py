"""End-to-end observability: tracing + metrics through real runs.

Runs the paper's map-coloring example (Listing 7) under an installed
tracer and asserts the span tree covers every compile and run stage,
the solver/cache metrics land on the ambient registry, and -- the key
determinism property -- two same-seed runs produce *identical* trace
content once timestamps are stripped.  A second, smaller hardware run
exercises the embedding and retry/fallback instrumentation.
"""

import json

from repro.core import trace
from repro.core.compiler import VerilogAnnealerCompiler
from repro.core.faults import FaultSpec
from repro.qmasm.runner import QmasmRunner, RetryPolicy
from repro.solvers.machine import DWaveSimulator, MachineProperties

from tests.conftest import LISTING_7_AUSTRALIA

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"

COMPILE_STAGES = [
    "compile.elaborate",
    "compile.optimize",
    "compile.techmap",
    "compile.unroll",
    "compile.emit_edif",
    "compile.edif_roundtrip",
    "compile.translate_qmasm",
    "compile.assemble",
]
RUN_STAGES = [
    "run.roof_duality",
    "run.find_embedding",
    "run.scale_to_hardware",
    "run.sample",
    "run.unembed",
    "run.postprocess",
    "run.corrupt_reads",
    "run.certify",
    "run.repair",
]


def _map_coloring_run(seed=7):
    """One full compile+run of Listing 7 on a fresh compiler.

    A fresh compiler per call means fresh caches, so repeat calls do
    identical work -- which is what makes their traces comparable.
    """
    compiler = VerilogAnnealerCompiler(seed=seed)
    program = compiler.compile(LISTING_7_AUSTRALIA)
    result = compiler.run(
        program,
        pins=["valid := true"],
        solver="sa",
        num_reads=40,
        num_sweeps=64,
    )
    return program, result


class TestTracedRun:
    def test_span_tree_covers_all_stages(self):
        with trace.capture() as (tracer, metrics):
            _map_coloring_run()
        names = set(tracer.span_names())
        for stage in COMPILE_STAGES:
            assert stage in names, f"missing compile span {stage}"
        for stage in RUN_STAGES:
            assert stage in names, f"missing run span {stage}"
        # The stage spans nest under their pipeline roots.
        compile_root = tracer.find("compile")
        assert compile_root is not None
        assert "compile.techmap" in compile_root.span_names()
        run_root = tracer.find("run")
        assert run_root is not None
        assert run_root.attributes["solver"] == "sa"
        assert "run.sample" in run_root.span_names()
        # The solver's own span nests under the sample stage.
        sample = run_root.find("run.sample")
        assert sample.find("solver.sa.sample") is not None

    def test_stage_spans_carry_pipeline_attributes(self):
        with trace.capture() as (tracer, _):
            program, result = _map_coloring_run()
        techmap = tracer.find("compile.techmap")
        assert techmap.attributes["skipped"] is False
        assert techmap.attributes["cells"] == (
            program.stats["techmap"].counters["cells"]
        )
        sample = tracer.find("run.sample")
        assert sample.attributes["samples"] == len(result.sampleset)
        assert sample.attributes["kernel"] == result.sampleset.info["kernel"]

    def test_solver_and_cache_metrics_present(self):
        with trace.capture() as (_, metrics):
            _map_coloring_run()
        assert metrics.value("solver.sa.samples") >= 1
        kernel_counters = [
            name for name in metrics.names()
            if name.startswith("solver.kernel.")
        ]
        assert kernel_counters, "no kernel-choice counter recorded"
        assert metrics.histogram("solver.energy").count >= 40
        assert metrics.histogram("solver.sweeps_per_s").count >= 1
        assert metrics.value("cache.compile.misses") == 1
        assert metrics.value("cache.compile.stores") == 1

    def test_run_result_exposes_metrics_and_trace(self):
        with trace.capture():
            _, result = _map_coloring_run()
        assert result.trace is not None
        assert result.trace.name == "run"
        assert "run.sample" in result.trace.span_names()
        assert result.metrics is not None
        assert int(result.metrics.value("runner.sample_attempts")) == 0

    def test_trace_handle_is_none_when_disabled(self):
        _, result = _map_coloring_run()
        assert result.trace is None
        assert result.metrics is not None  # run-scoped registry always kept

    def test_same_seed_runs_trace_identically(self):
        """Trace *content* is deterministic; only timestamps differ."""
        with trace.capture() as (first, _):
            _map_coloring_run(seed=7)
        with trace.capture() as (second, _):
            _map_coloring_run(seed=7)
        first_content = first.content()
        second_content = second.content()
        assert first_content == second_content
        # And the equality is meaningful: the tree is substantial.
        text = json.dumps(first_content)
        assert len(first.span_names()) > 10
        assert "run.sample" in text

    def test_chrome_export_of_real_run(self, tmp_path):
        with trace.capture() as (tracer, _):
            _map_coloring_run()
        path = tmp_path / "run.json"
        tracer.write_chrome_trace(str(path))
        data = json.loads(path.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        for stage in COMPILE_STAGES + RUN_STAGES:
            assert stage in names
        assert all("ts" in e and "pid" in e for e in data["traceEvents"])


class TestHardwareRunMetrics:
    def _machine(self, faults=None):
        return DWaveSimulator(
            properties=MachineProperties(cells=4, dropout_fraction=0.0),
            seed=0,
            faults=faults,
        )

    def test_embedding_metrics_recorded(self):
        with trace.capture() as (tracer, metrics):
            runner = QmasmRunner(machine=self._machine(), seed=0)
            result = runner.run(AND_PROGRAM, solver="dwave", num_reads=20)
        assert result.info["answered_by"] == "dwave"
        span = tracer.find("embed.find_embedding")
        assert span is not None
        assert span.attributes["attempts"] >= 1
        assert span.attributes["physical_qubits"] >= 1
        assert metrics.value("embed.attempts") >= 1
        assert metrics.value("embed.restarts") >= 1
        chains = metrics.histogram("embed.chain_length")
        assert chains.count >= 1
        assert chains.min >= 1
        # The machine's sample span is nested inside the run tree.
        assert tracer.find("solver.dwave.sample") is not None

    def test_retry_and_fallback_metrics(self):
        faults = FaultSpec(fail_first_samples=2, seed=3)
        with trace.capture() as (tracer, metrics):
            runner = QmasmRunner(machine=self._machine(faults=faults), seed=0)
            policy = RetryPolicy(max_sample_attempts=3, backoff_s=0.0)
            result = runner.run(
                AND_PROGRAM, solver="dwave", num_reads=20, retry_policy=policy
            )
        assert result.info["answered_by"] == "dwave"
        assert metrics.value("runner.sample_attempts") == 3
        assert metrics.value("runner.sample_retries") == 2
        assert metrics.value("runner.sample_failures") == 2
        # Retries surface as instant events inside the sample span.
        sample = tracer.find("run.sample")
        retry_events = [e for e in sample.events if e["name"] == "runner.retry"]
        assert len(retry_events) == 2
        # The single-source property: the run's own registry agrees with
        # info["resilience"] and the stage counters, because they are
        # all the same numbers.
        assert result.info["resilience"]["sample_retries"] == 2
        assert result.metrics.value("runner.sample_retries") == 2

    def test_fallback_metrics(self):
        faults = FaultSpec(fail_first_samples=99, seed=3)
        with trace.capture() as (tracer, metrics):
            runner = QmasmRunner(machine=self._machine(faults=faults), seed=0)
            policy = RetryPolicy(max_sample_attempts=2, backoff_s=0.0)
            result = runner.run(
                AND_PROGRAM, solver="dwave", num_reads=20, retry_policy=policy
            )
        assert result.info["answered_by"] != "dwave"
        assert metrics.value("runner.fallbacks") == 1
        assert metrics.value("runner.fallback_depth") >= 1
        assert result.info["resilience"]["fallback_depth"] >= 1

    def test_resilience_zeros_stay_omitted(self):
        """Quiet runs keep a quiet summary (no zero-valued entries)."""
        with trace.capture():
            runner = QmasmRunner(machine=self._machine(), seed=0)
            result = runner.run(AND_PROGRAM, solver="dwave", num_reads=10)
        assert result.info["resilience"].get("sample_retries") is None
        assert result.info["resilience"].get("fallback_depth") is None
        assert result.info["resilience"]["sample_attempts"] == 1
