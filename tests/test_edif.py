"""Tests for s-expressions and the EDIF writer/reader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edif.reader import EdifError, read_edif
from repro.edif.sexp import SExpError, Symbol, format_sexp, parse_sexp
from repro.edif.writer import write_edif
from repro.hdl import elaborate
from repro.synth.netlist import Netlist, PortDirection
from repro.synth.opt import optimize
from repro.synth.simulate import NetlistSimulator
from tests.conftest import FIGURE_2A, LISTING_5_CIRCSAT


# ----------------------------------------------------------------------
# S-expressions
# ----------------------------------------------------------------------
def test_parse_atoms():
    assert parse_sexp("42") == 42
    assert parse_sexp("foo") == Symbol("foo")
    assert parse_sexp('"a string"') == "a string"


def test_parse_nested_lists():
    assert parse_sexp("(a (b 1) (c (d 2)))") == [
        Symbol("a"),
        [Symbol("b"), 1],
        [Symbol("c"), [Symbol("d"), 2]],
    ]


def test_symbols_and_strings_are_distinct():
    symbol, string = parse_sexp('(x "x")')
    assert isinstance(symbol, Symbol)
    assert isinstance(string, str) and not isinstance(string, Symbol)


def test_string_escapes():
    assert parse_sexp('"say \\"hi\\""') == 'say "hi"'


@pytest.mark.parametrize("bad", ["", "(a", "a)", "(a))", '"open'])
def test_malformed_sexp_rejected(bad):
    with pytest.raises(SExpError):
        parse_sexp(bad)


def test_format_parse_roundtrip():
    expr = [Symbol("top"), [Symbol("x"), 1, "a b"], Symbol("y")]
    assert parse_sexp(format_sexp(expr)) == expr


@st.composite
def sexprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return draw(st.integers(-1000, 1000))
        if kind == 1:
            return Symbol("s" + draw(st.text("abcxyz059_", min_size=1, max_size=6)))
        return draw(st.text(min_size=0, max_size=8))
    return [
        draw(sexprs(depth=depth - 1))
        for _ in range(draw(st.integers(0, 4)))
    ]


@given(sexprs())
@settings(max_examples=60, deadline=None)
def test_format_parse_roundtrip_property(expr):
    rendered = format_sexp(expr)
    if isinstance(expr, list) or rendered.strip():
        assert parse_sexp(rendered) == expr


# ----------------------------------------------------------------------
# EDIF writing
# ----------------------------------------------------------------------
def test_edif_structure(figure2_program):
    document = parse_sexp(figure2_program.edif_text)
    heads = [item[0] for item in document if isinstance(item, list)]
    for expected in ("edifVersion", "external", "library", "design"):
        assert Symbol(expected) in heads


def test_edif_declares_used_cells_only(figure2_program):
    text = figure2_program.edif_text
    used = set(figure2_program.netlist.cell_histogram())
    for kind in used:
        assert f"(cell {kind} " in text.replace("\n", " ") or f"cell\n    {kind}" in text or kind in text


def test_edif_multibit_ports_use_arrays(figure2_program):
    assert "(array c 2)" in figure2_program.edif_text.replace("\n  ", " ")


def test_edif_renames_awkward_identifiers():
    nl = Netlist("top")
    a, y = nl.new_net(), nl.new_net()
    nl.add_port("in@0", PortDirection.INPUT, [a])
    nl.add_port("out", PortDirection.OUTPUT, [y])
    nl.add_cell("NOT", {"A": a, "Y": y}, name="g@weird")
    text = write_edif(nl)
    assert '(rename' in text
    back = read_edif(text)
    assert "in@0" in back.ports
    assert "g@weird" in back.cells


# ----------------------------------------------------------------------
# EDIF round-trips
# ----------------------------------------------------------------------
def _roundtrip_equivalent(source: str, widths):
    netlist = optimize(elaborate(source))
    back = read_edif(write_edif(netlist))
    sim_a, sim_b = NetlistSimulator(netlist), NetlistSimulator(back)
    names = list(widths)
    total = sum(widths.values())
    for value in range(1 << total):
        inputs, shift = {}, 0
        for name in names:
            inputs[name] = (value >> shift) & ((1 << widths[name]) - 1)
            shift += widths[name]
        assert sim_a.evaluate(inputs) == sim_b.evaluate(inputs)


def test_roundtrip_figure2():
    _roundtrip_equivalent(FIGURE_2A, {"s": 1, "a": 1, "b": 1})


def test_roundtrip_circsat():
    _roundtrip_equivalent(LISTING_5_CIRCSAT, {"a": 1, "b": 1, "c": 1})


def test_roundtrip_preserves_cell_histogram(figure2_program):
    back = read_edif(figure2_program.edif_text)
    assert back.cell_histogram() == figure2_program.netlist.cell_histogram()


def test_roundtrip_passthrough_port_sharing():
    netlist = elaborate(
        "module p (i, o); input i; output o; assign o = i; endmodule"
    )
    back = read_edif(write_edif(netlist))
    assert NetlistSimulator(back).evaluate({"i": 1})["o"] == 1
    assert NetlistSimulator(back).evaluate({"i": 0})["o"] == 0


# ----------------------------------------------------------------------
# EDIF reader validation
# ----------------------------------------------------------------------
def test_reader_rejects_non_edif():
    with pytest.raises(EdifError):
        read_edif("(nonsense)")


def test_reader_rejects_unknown_cell_types():
    bad = """
    (edif t (edifVersion 2 0 0) (edifLevel 0) (keywordMap (keywordLevel 0))
      (library DESIGN (edifLevel 0) (technology (numberDefinition))
        (cell t (cellType GENERIC)
          (view VIEW_NETLIST (viewType NETLIST)
            (interface (port y (direction OUTPUT)))
            (contents
              (instance bad (viewRef VIEW_NETLIST
                (cellRef WIDGET (libraryRef LIB))))
              (net n (joined (portRef y) (portRef Y (instanceRef bad))))))))
      (design t (cellRef t (libraryRef DESIGN))))
    """
    with pytest.raises(EdifError):
        read_edif(bad)


def test_reader_rejects_missing_design_cell():
    bad = """
    (edif t (edifVersion 2 0 0) (edifLevel 0) (keywordMap (keywordLevel 0))
      (library DESIGN (edifLevel 0) (technology (numberDefinition)))
      (design t (cellRef ghost (libraryRef DESIGN))))
    """
    with pytest.raises(EdifError):
        read_edif(bad)


# ----------------------------------------------------------------------
# EDIF round-trips of escaped / pathological identifiers
# ----------------------------------------------------------------------
#: Names no EDIF symbol can carry directly: every one must survive the
#: writer's ``(rename safe "original")`` form and come back verbatim.
PATHOLOGICAL_NAMES = [
    "1bad",  # leading digit
    "42",  # all digits
    "\\state.q[3]",  # Verilog backslash-escaped hierarchical name
    "has space",  # embedded space
    'say "hi"',  # embedded quotes (sexp string escaping)
    "a+b-c*d",  # operator soup
]


@pytest.mark.parametrize("name", PATHOLOGICAL_NAMES)
def test_pathological_port_name_roundtrips(name):
    nl = Netlist("top")
    a, y = nl.new_net(), nl.new_net()
    nl.add_port(name, PortDirection.INPUT, [a])
    nl.add_port("y", PortDirection.OUTPUT, [y])
    nl.add_cell("NOT", {"A": a, "Y": y})
    text = write_edif(nl)
    assert "(rename " in text
    back = read_edif(text)
    assert set(back.ports) == {name, "y"}
    assert back.ports[name].direction == PortDirection.INPUT
    sim = NetlistSimulator(back)
    assert sim.evaluate({name: 0})["y"] == 1
    assert sim.evaluate({name: 1})["y"] == 0


def test_pathological_multibit_port_roundtrips():
    """(array (rename ...) width) and its (member ...) references."""
    nl = Netlist("top")
    bits = nl.new_nets(2)
    y = nl.new_net()
    nl.add_port("2 wide\\bus", PortDirection.INPUT, bits)
    nl.add_port("y", PortDirection.OUTPUT, [y])
    nl.add_cell("AND", {"A": bits[0], "B": bits[1], "Y": y})
    back = read_edif(write_edif(nl))
    assert back.ports["2 wide\\bus"].width == 2
    sim = NetlistSimulator(back)
    assert sim.evaluate({"2 wide\\bus": 3})["y"] == 1
    assert sim.evaluate({"2 wide\\bus": 1})["y"] == 0


def test_pathological_cell_and_module_names_roundtrip():
    nl = Netlist("9 weird \\module")
    a, y = nl.new_net(), nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_port("y", PortDirection.OUTPUT, [y])
    nl.add_cell("NOT", {"A": a, "Y": y}, name="\\gen[0].u$not")
    back = read_edif(write_edif(nl))
    assert back.name == "9 weird \\module"
    assert "\\gen[0].u$not" in back.cells
    assert back.cell_histogram() == {"NOT": 1}


def test_sanitized_name_collisions_stay_distinct():
    """'a b' and 'a+b' both sanitize to 'a_b'; originals must win."""
    nl = Netlist("top")
    a, b, y = nl.new_net(), nl.new_net(), nl.new_net()
    nl.add_port("a b", PortDirection.INPUT, [a])
    nl.add_port("a+b", PortDirection.INPUT, [b])
    nl.add_port("y", PortDirection.OUTPUT, [y])
    nl.add_cell("AND", {"A": a, "B": b, "Y": y})
    back = read_edif(write_edif(nl))
    assert {"a b", "a+b", "y"} == set(back.ports)
    sim = NetlistSimulator(back)
    assert sim.evaluate({"a b": 1, "a+b": 0})["y"] == 0
    assert sim.evaluate({"a b": 1, "a+b": 1})["y"] == 1
