"""Seed-determinism suite: every solver must be bit-reproducible.

Three invariants, per the sparse-kernel acceptance criteria:

1. a fixed seed yields bit-identical SampleSets across runs;
2. the dense, sparse, and jit sweep kernels are sample-for-sample
   identical (they share the accept logic and per-sweep RNG draw
   order; the dense field update only adds exact zeros where the
   sparse one touches nothing, and the jit tier replays the same
   staged log-uniform decisions scalar-by-scalar);
3. ``max_workers > 1`` (process-pool gauge batches / qbsolv reads) is
   bit-identical to serial, because every seed, gauge, and noise draw
   happens in the parent RNG before dispatch.

The jit legs run whether or not numba is installed: without it the
explicit ``kernel="jit"`` request falls back to sparse (with a
warning), which must still be identical to dense.
"""

import warnings

import numpy as np
import pytest

from repro.ising.model import IsingModel
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.qbsolv import QBSolv
from repro.solvers.sqa import PathIntegralAnnealer
from repro.solvers.tabu import TabuSampler


def _sparse_model(n=80, seed=7):
    """A random sparse model big enough to auto-select the sparse kernel."""
    rng = np.random.default_rng(seed)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, float(rng.normal(0, 0.5)))
        model.add_interaction(i, (i + 1) % n, float(rng.choice([-1.0, 1.0])))
    for _ in range(n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            model.add_interaction(int(u), int(v), float(rng.normal(0, 0.5)))
    return model


def _assert_identical(a, b):
    assert list(a.variables) == list(b.variables)
    np.testing.assert_array_equal(a.records, b.records)
    np.testing.assert_array_equal(a.energies, b.energies)


SOLVERS = {
    "neal": lambda seed, kernel: SimulatedAnnealingSampler(seed=seed).sample(
        _sparse_model(), num_reads=8, num_sweeps=30, kernel=kernel
    ),
    "sqa": lambda seed, kernel: PathIntegralAnnealer(seed=seed).sample(
        _sparse_model(),
        num_reads=4,
        num_sweeps=15,
        trotter_slices=4,
        kernel=kernel,
    ),
    "tabu": lambda seed, kernel: TabuSampler(seed=seed).sample(
        _sparse_model(), num_reads=4, max_iter=150, kernel=kernel
    ),
    "greedy": lambda seed, kernel: SteepestDescentSolver(seed=seed).sample(
        _sparse_model(), num_reads=8, kernel=kernel
    ),
}


@pytest.mark.parametrize("name", sorted(SOLVERS))
def test_fixed_seed_is_bit_reproducible(name):
    run = SOLVERS[name]
    _assert_identical(run(123, None), run(123, None))


@pytest.mark.parametrize("name", sorted(SOLVERS))
@pytest.mark.parametrize("kernel", ["sparse", "jit"])
def test_kernel_tiers_identical(name, kernel):
    run = SOLVERS[name]
    dense = run(42, "dense")
    assert dense.info.get("kernel", "dense") == "dense"
    with warnings.catch_warnings():
        # explicit jit without numba warns once before falling back
        warnings.simplefilter("ignore", RuntimeWarning)
        other = run(42, kernel)
    _assert_identical(dense, other)
    # without numba an explicit jit request reports the sparse fallback
    assert other.info.get("kernel", kernel) in (kernel, "sparse")


def test_auto_kernel_selects_sparse_on_embedded_scale_model():
    # Wide read batches at embedded scale leave the dense einsum's
    # comfort zone; narrow ones (num_reads <= DENSE_MAX_BATCH_READS)
    # stay dense because the batched row update amortizes poorly.
    wide = SimulatedAnnealingSampler(seed=0).sample(
        _sparse_model(), num_reads=8, num_sweeps=5
    )
    assert wide.info["kernel"] in ("sparse", "jit")
    narrow = SimulatedAnnealingSampler(seed=0).sample(
        _sparse_model(), num_reads=2, num_sweeps=5
    )
    assert narrow.info["kernel"] == "dense"


# ----------------------------------------------------------------------
# Parallel outer loops: serial vs process pool
# ----------------------------------------------------------------------
def _machine_problem():
    props = MachineProperties(cells=4, dropout_fraction=0.0)
    machine = DWaveSimulator(properties=props, seed=11)
    model = IsingModel()
    for u, v in list(machine.working_graph.edges())[:12]:
        model.add_variable(u, 0.25)
        model.add_variable(v, -0.25)
        model.add_interaction(u, v, -1.0)
    return props, model


@pytest.mark.parametrize("kernel", ["sparse", "jit"])
def test_machine_kernel_tiers_identical(kernel):
    props, model = _machine_problem()

    def run(tier):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return DWaveSimulator(properties=props, seed=11).sample_ising(
                model, num_reads=6, kernel=tier
            )

    _assert_identical(run("dense"), run(kernel))


def test_machine_gauge_batches_parallel_identical_to_serial():
    props, model = _machine_problem()
    serial = DWaveSimulator(properties=props, seed=11).sample_ising(
        model, num_reads=12, num_spin_reversal_transforms=4
    )
    pooled = DWaveSimulator(properties=props, seed=11).sample_ising(
        model, num_reads=12, num_spin_reversal_transforms=4, max_workers=2
    )
    _assert_identical(serial, pooled)


def test_machine_same_seed_reproducible():
    props, model = _machine_problem()
    first = DWaveSimulator(properties=props, seed=3).sample_ising(
        model, num_reads=10, num_spin_reversal_transforms=2
    )
    second = DWaveSimulator(properties=props, seed=3).sample_ising(
        model, num_reads=10, num_spin_reversal_transforms=2
    )
    _assert_identical(first, second)


def test_qbsolv_parallel_reads_identical_to_serial():
    model = _sparse_model(40, seed=9)
    serial = QBSolv(subproblem_size=16, seed=5).sample(
        model, num_repeats=4, num_reads=3
    )
    pooled = QBSolv(subproblem_size=16, seed=5).sample(
        model, num_repeats=4, num_reads=3, max_workers=2
    )
    _assert_identical(serial, pooled)


# ----------------------------------------------------------------------
# Cross-topology determinism: every hardware family, same guarantees
# ----------------------------------------------------------------------
def _topology_problem(topology, cells):
    props = MachineProperties(
        topology=topology, cells=cells, dropout_fraction=0.0
    )
    machine = DWaveSimulator(properties=props, seed=11)
    model = IsingModel()
    # Small per-edge biases: dense families (Zephyr degree 20) revisit
    # the same node across the edge slice, and the accumulated field
    # must stay inside the machine's h_range.
    for u, v in list(machine.working_graph.edges())[:12]:
        model.add_variable(u, 0.05)
        model.add_variable(v, -0.05)
        model.add_interaction(u, v, -1.0)
    return props, model


@pytest.mark.parametrize(
    "topology,cells", [("chimera", 4), ("pegasus", 3), ("zephyr", 2)]
)
def test_machine_same_seed_reproducible_per_topology(topology, cells):
    props, model = _topology_problem(topology, cells)
    first = DWaveSimulator(properties=props, seed=3).sample_ising(
        model, num_reads=10, num_spin_reversal_transforms=2
    )
    second = DWaveSimulator(properties=props, seed=3).sample_ising(
        model, num_reads=10, num_spin_reversal_transforms=2
    )
    _assert_identical(first, second)
    assert first.info["topology"] == second.info["topology"]


@pytest.mark.parametrize(
    "topology,cells", [("pegasus", 3), ("zephyr", 2)]
)
def test_machine_parallel_identical_to_serial_per_topology(topology, cells):
    props, model = _topology_problem(topology, cells)
    serial = DWaveSimulator(properties=props, seed=11).sample_ising(
        model, num_reads=12, num_spin_reversal_transforms=4
    )
    pooled = DWaveSimulator(properties=props, seed=11).sample_ising(
        model, num_reads=12, num_spin_reversal_transforms=4, max_workers=2
    )
    _assert_identical(serial, pooled)


def test_shard_parallel_dispatch_identical_to_serial():
    from repro.solvers.shard import ShardSolver

    rng = np.random.default_rng(2)
    model = IsingModel()
    for i in range(48):
        model.add_variable(i, float(rng.normal(0, 0.3)))
        model.add_interaction(i, (i + 1) % 48, float(rng.choice([-1.0, 1.0])))
    props = MachineProperties(cells=2, dropout_fraction=0.0)

    def run(workers):
        return ShardSolver(
            properties=props, machines=4, seed=7, num_reads_per_shard=8
        ).sample(model, num_reads=2, max_workers=workers)

    _assert_identical(run(1), run(4))
