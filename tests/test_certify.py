"""Tests for result certification and self-repair (repro.qmasm.certify).

The certifier is the classical end of the NP loop: any read the
annealer returns must be checkable in polynomial time.  These tests
cover the per-read classification (energy recomputation, gate replay,
pins), the aggregated Certificate, the corrupt_reads adversary stage
(zero false "certified" under injected read corruption), the repair
loop's restore-to-1.0 guarantee, and the retry-policy regression for a
strict zero chain-break threshold.
"""

import numpy as np
import pytest

from repro.core.compiler import VerilogAnnealerCompiler
from repro.core.faults import parse_fault_spec
from repro.qmasm.certify import (
    CERTIFIED,
    CONSTRAINT_VIOLATION,
    ENERGY_MISMATCH,
    Certificate,
    ReadCheck,
    certify_sampleset,
    expand_read,
)
from repro.qmasm.runner import QmasmRunner, RetryPolicy
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.sampleset import SampleSet

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"

MAJORITY_V = """
module maj3 (a, b, c, y);
   input a, b, c;
   output y;
   assign y = (a & b) | (a & c) | (b & c);
endmodule
"""


def _machine(**kwargs):
    return DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0),
        seed=0,
        **kwargs,
    )


@pytest.fixture(scope="module")
def runner():
    return QmasmRunner(machine=_machine(), seed=0)


# ----------------------------------------------------------------------
# Per-read classification
# ----------------------------------------------------------------------
def test_clean_run_certifies_every_read(runner):
    result = runner.run(
        AND_PROGRAM, solver="sa", num_reads=20, certify=True
    )
    certificate = result.certificate
    assert certificate is not None
    assert certificate.ok
    assert certificate.certified_fraction == 1.0
    assert certificate.total_reads == len(result.sampleset)
    assert result.info["certificate"].startswith("certified ")


def test_certificate_none_when_not_requested(runner):
    result = runner.run(AND_PROGRAM, solver="sa", num_reads=5)
    assert result.certificate is None
    assert "certificate" not in result.info
    assert result.stats["certify"].skipped


def test_tampered_read_gets_energy_mismatch(runner):
    result = runner.run(
        AND_PROGRAM, solver="sa", num_reads=10, certify=True
    )
    sampleset = result.sampleset
    # Report a wrong energy for row 0 while the state itself stays a
    # valid gate assignment: only the energy check can catch this.
    energies = sampleset.energies.copy()
    energies[0] += 5.0
    tampered = SampleSet(
        sampleset.variables,
        sampleset.records.copy(),
        energies,
        sampleset.occurrences.copy(),
        dict(sampleset.info),
    )
    certificate = certify_sampleset(
        tampered,
        result.logical,
        result.representative,
        result.logical.to_ising()[0],
    )
    # SampleSet re-sorts rows by (now tampered) energy, so locate the
    # tampered row by verdict instead of assuming it stayed at index 0.
    states = certificate.states()
    assert states.count(ENERGY_MISMATCH) == 1
    row = states.index(ENERGY_MISMATCH)
    assert not certificate.ok
    assert certificate.uncertified_rows() == [row]
    read = certificate.reads[row]
    assert read.energy_reported == pytest.approx(read.energy_recomputed + 5.0)


def test_flipped_spin_is_never_falsely_certified(runner):
    """Flip one observable spin per row: no tampered row may certify."""
    result = runner.run(
        AND_PROGRAM, solver="sa", num_reads=10, certify=True
    )
    sampleset = result.sampleset
    model = result.logical.to_ising()[0]
    records = sampleset.records.copy()
    records[:, 0] *= -1  # g.A participates in the AND penalty: observable
    tampered = SampleSet(
        sampleset.variables,
        records,
        sampleset.energies.copy(),  # stale: pre-flip energies
        sampleset.occurrences.copy(),
        dict(sampleset.info),
    )
    certificate = certify_sampleset(
        tampered, result.logical, result.representative, model
    )
    assert certificate.certified_reads == 0
    assert set(certificate.states()) <= {
        ENERGY_MISMATCH, CONSTRAINT_VIOLATION
    }


# ----------------------------------------------------------------------
# Gate replay through the compiled netlist
# ----------------------------------------------------------------------
def test_gate_replay_names_the_violated_cell():
    compiler = VerilogAnnealerCompiler(seed=0)
    program = compiler.compile(MAJORITY_V)
    result = compiler.run(program, solver="sa", num_reads=15, certify=True)
    certificate = result.certificate
    assert certificate.gates_checked > 0
    assert certificate.ok

    # Break the output net in every read: some cell must be implicated.
    sampleset = result.sampleset
    column = sampleset.variables.index("y")
    records = sampleset.records.copy()
    records[:, column] *= -1
    tampered = SampleSet(
        sampleset.variables,
        records,
        sampleset.energies.copy(),
        sampleset.occurrences.copy(),
        dict(sampleset.info),
    )
    broken = certify_sampleset(
        tampered,
        result.logical,
        result.representative,
        result.logical.to_ising()[0],
        netlist=program.netlist,
    )
    assert broken.certified_reads == 0
    assert all(
        read.state == CONSTRAINT_VIOLATION for read in broken.reads
    )
    assert broken.gate_violation_counts
    assert broken.worst_cells(1)[0][1] > 0
    assert "worst cells" in broken.summary()


def test_pin_violation_is_constraint_violation(runner):
    result = runner.run(
        AND_PROGRAM,
        pins=["g.Y := true"],
        solver="sa",
        num_reads=10,
        certify=True,
    )
    assert result.certificate.ok
    sampleset = result.sampleset
    column = sampleset.variables.index("g.Y")
    records = sampleset.records.copy()
    records[:, column] = -1  # break the pin everywhere
    model = result.logical.to_ising()[0]
    energies = model.energies(
        records.astype(float), order=list(sampleset.variables)
    )
    tampered = SampleSet(
        sampleset.variables, records, np.asarray(energies),
        sampleset.occurrences.copy(), dict(sampleset.info),
    )
    certificate = certify_sampleset(
        tampered, result.logical, result.representative, model
    )
    assert all(not read.pins_respected for read in certificate.reads)
    assert all(
        read.state == CONSTRAINT_VIOLATION for read in certificate.reads
    )


def test_expand_read_covers_all_variables(runner):
    result = runner.run(AND_PROGRAM, solver="sa", num_reads=3, certify=True)
    sample = next(iter(result.sampleset))
    full = expand_read(
        sample.assignment, result.logical, result.representative,
        result.fixed_spins,
    )
    assert set(full) >= {"g.A", "g.B", "g.Y"}
    assert all(value in (-1, 1) for value in full.values())


# ----------------------------------------------------------------------
# Certificate aggregation
# ----------------------------------------------------------------------
def test_empty_certificate_is_vacuously_ok():
    certificate = Certificate()
    assert certificate.total_reads == 0
    assert certificate.certified_fraction == 1.0
    assert certificate.ok
    assert certificate.summary().startswith("certified 0/0")


def test_counts_are_occurrence_weighted():
    certificate = Certificate(counts={s: 0 for s in (
        CERTIFIED, ENERGY_MISMATCH, CONSTRAINT_VIOLATION)})
    for index, (state, occurrences) in enumerate(
        [(CERTIFIED, 3), (CONSTRAINT_VIOLATION, 2)]
    ):
        certificate.reads.append(ReadCheck(
            index=index, state=state, energy_reported=0.0,
            energy_recomputed=0.0, num_occurrences=occurrences,
        ))
        certificate.counts[state] += occurrences
    assert certificate.total_reads == 5
    assert certificate.certified_reads == 3
    assert certificate.certified_fraction == pytest.approx(0.6)
    assert certificate.uncertified_rows() == [1]


# ----------------------------------------------------------------------
# The corrupt_reads adversary and the zero-false-certified guarantee
# ----------------------------------------------------------------------
def test_injected_corruption_is_always_flagged():
    """Every corrupted read must fail certification -- no false passes."""
    machine = _machine(
        faults=parse_fault_spec("read_corruption=40%,seed=3")
    )
    runner = QmasmRunner(machine=machine, seed=7)
    result = runner.run(
        AND_PROGRAM, solver="dwave", num_reads=30, certify=True
    )
    corrupted = result.info.get("read_corruption_rows", [])
    assert corrupted, "the fault model injected nothing"
    states = result.certificate.states()
    flagged = [row for row in corrupted if states[row] != CERTIFIED]
    assert flagged == corrupted  # 100% detection, zero false certified
    assert result.stats["corrupt_reads"].counters["corrupted"] == len(
        corrupted
    )


def test_corruption_leaves_reported_energies_stale():
    machine = _machine(
        faults=parse_fault_spec("read_corruption=40%,seed=5")
    )
    runner = QmasmRunner(machine=machine, seed=7)
    result = runner.run(
        AND_PROGRAM, solver="dwave", num_reads=30, certify=True
    )
    model = result.logical.to_ising()[0]
    recomputed = model.energies(
        result.sampleset.records.astype(float),
        order=list(result.sampleset.variables),
    )
    corrupted = result.info["read_corruption_rows"]
    # The observability mask guarantees each injected flip changes the
    # true energy, so the stale report disagrees on every corrupted row.
    for row in corrupted:
        assert recomputed[row] != pytest.approx(
            result.sampleset.energies[row]
        )


def test_corrupt_reads_stage_skipped_without_faults(runner):
    result = runner.run(AND_PROGRAM, solver="sa", num_reads=5, certify=True)
    assert result.stats["corrupt_reads"].skipped
    assert "read_corruption_rows" not in result.info


# ----------------------------------------------------------------------
# Self-repair
# ----------------------------------------------------------------------
def test_repair_restores_full_certification():
    machine = _machine(
        faults=parse_fault_spec("read_corruption=40%,seed=3")
    )
    runner = QmasmRunner(machine=machine, seed=7)
    result = runner.run(
        AND_PROGRAM, solver="dwave", num_reads=30, certify=True, repair=True
    )
    certificate = result.certificate
    assert certificate.ok
    assert certificate.certified_fraction == 1.0
    repair = certificate.repair
    assert repair["rounds"] >= 1
    assert repair["certified_fraction_before"] < 1.0
    resilience = result.info["resilience"]
    assert resilience["repair_rounds"] == repair["rounds"]
    assert resilience["repair_polished_reads"] == repair["polished_reads"]
    assert "repaired in" in result.info["certificate"]


def test_repair_skipped_when_already_certified(runner):
    result = runner.run(
        AND_PROGRAM, solver="sa", num_reads=10, certify=True, repair=True
    )
    assert result.certificate.ok
    assert result.stats["repair"].skipped
    assert result.certificate.repair == {}


def test_repair_classical_path_restores_certification():
    runner = QmasmRunner(machine=_machine(), seed=0)
    result = runner.run(
        AND_PROGRAM, solver="sa", num_reads=8, num_sweeps=2,
        certify=True, repair=True,
    )
    # Two-sweep anneals leave hot reads; polish must finish the job.
    assert result.certificate.ok


# ----------------------------------------------------------------------
# Retry-policy knobs
# ----------------------------------------------------------------------
def test_repair_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_repair_rounds=-1)
    with pytest.raises(ValueError):
        RetryPolicy(repair_polish_sweeps=0)
    with pytest.raises(ValueError):
        RetryPolicy(repair_read_factor=0.5)


def test_zero_chain_break_threshold_is_strict():
    """threshold=0.0 must NOT escalate on a clean (0.0) unembedding."""
    machine = _machine()
    runner = QmasmRunner(machine=machine, seed=0)
    policy = RetryPolicy(chain_break_threshold=0.0)
    result = runner.run(
        AND_PROGRAM, solver="dwave", num_reads=30, retry_policy=policy
    )
    break_fraction = result.sampleset.info.get("chain_break_fraction", 0.0)
    assert break_fraction == 0.0  # seed chosen for a clean unembedding
    # Quiet runs omit zero counters, so the key must be absent or 0.
    resilience = result.info["resilience"]
    assert resilience.get("chain_strength_escalations", 0) == 0
