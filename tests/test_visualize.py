"""Tests for the Chimera/embedding text renderings."""

import networkx as nx
import pytest

from repro.hardware.chimera import chimera_graph, dropout
from repro.hardware.embedding import Embedding, find_embedding
from repro.hardware.visualize import (
    embedding_report,
    render_chains,
    render_occupancy,
    render_unit_cell,
)


@pytest.fixture(scope="module")
def k4_embedding():
    target = chimera_graph(2)
    source = nx.complete_graph(4)
    return find_embedding(source, target, seed=0), target


def test_occupancy_counts_match_embedding(k4_embedding):
    embedding, _ = k4_embedding
    text = render_occupancy(embedding, rows=2)
    assert f"{embedding.total_qubits()} qubits" in text
    assert f"{len(embedding)} chains" in text
    # The grid has 2 rows of cells.
    grid_lines = [l for l in text.splitlines()[1:-1]]
    assert len(grid_lines) == 2


def test_occupancy_empty_embedding():
    text = render_occupancy(Embedding({}), rows=2)
    assert "0 qubits" in text
    assert "." in text  # all cells empty


def test_chain_table_sorted_longest_first(k4_embedding):
    embedding, _ = k4_embedding
    text = render_chains(embedding)
    lengths = []
    for line in text.splitlines():
        parts = line.split()
        if len(parts) >= 2 and parts[-2].isdigit():
            lengths.append(int(parts[-2]))
    assert lengths == sorted(lengths, reverse=True)
    assert "distribution:" in text


def test_chain_table_truncates():
    chains = {i: frozenset({i * 8}) for i in range(40)}
    text = render_chains(Embedding(chains), limit=5)
    assert "... 35 more" in text


def test_unit_cell_rendering_marks_couplers():
    graph = chimera_graph(2)
    text = render_unit_cell(graph, 0, 0, rows=2)
    # A full unit cell shows 4 rows of 4 working couplers.
    star_rows = [l for l in text.splitlines() if "****" in l]
    assert len(star_rows) == 4


def test_unit_cell_marks_dropped_qubits():
    graph = dropout(chimera_graph(2), num_qubits=0)
    graph.remove_node(0)
    text = render_unit_cell(graph, 0, 0, rows=2)
    assert "0x" in text.replace(" ", "")  # qubit 0 marked dead


def test_unit_cell_shows_owners():
    graph = chimera_graph(2)
    text = render_unit_cell(graph, 0, 0, rows=2, occupied={0: "NSW[1]"})
    assert "(NSW[1])" in text


def test_embedding_report_combines_views(k4_embedding):
    embedding, _ = k4_embedding
    text = embedding_report(embedding, rows=2)
    assert "occupancy" in text
    assert "chain lengths" in text
