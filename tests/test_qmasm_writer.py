"""Round-trip tests for the QMASM writer."""

import pytest

from repro.qmasm.assembler import assemble
from repro.qmasm.parser import parse_qmasm
from repro.qmasm.writer import write_logical, write_qmasm


SAMPLE = """
!begin_macro PAIR
!assert X = Y
X Y -1
X 0.5
!end_macro PAIR
!use_macro PAIR p1 p2
A -1
A B 2.5
A = B
C /= D
C := true
!alias OUT A
"""


def test_write_parse_roundtrip_preserves_model():
    original = assemble(parse_qmasm(SAMPLE))
    rendered = write_qmasm(parse_qmasm(SAMPLE))
    roundtripped = assemble(parse_qmasm(rendered))
    assert roundtripped.model == original.model
    assert roundtripped.pins == original.pins
    assert sorted(roundtripped.chains) == sorted(original.chains)


def test_write_qmasm_contains_every_construct():
    rendered = write_qmasm(parse_qmasm(SAMPLE))
    for fragment in (
        "!begin_macro PAIR", "!end_macro PAIR", "!assert X = Y",
        "!use_macro PAIR p1 p2", "A -1", "A B 2.5", "A = B", "C /= D",
        "C := true", "!alias OUT A",
    ):
        assert fragment in rendered, fragment


def test_write_logical_roundtrip():
    original = assemble(parse_qmasm(SAMPLE))
    flattened = write_logical(original)
    reparsed = assemble(parse_qmasm(flattened))
    assert reparsed.model == original.model
    assert reparsed.pins == original.pins


def test_write_logical_of_generated_program(figure2_program):
    """The edif2qmasm output survives a flatten-and-reparse cycle."""
    original = figure2_program.logical
    reparsed = assemble(parse_qmasm(write_logical(original)))
    model_a, _ = original.to_ising(apply_pins=False)
    model_b, _ = reparsed.to_ising(apply_pins=False)
    assert model_a == model_b


def test_include_statement_not_doubled():
    source = "!include <stdcell>\n!use_macro AND g\n"
    program = parse_qmasm(source)
    rendered = write_qmasm(program)
    # The include's contents were inlined; re-rendering must not emit a
    # second live !include (it would redefine every macro).
    assert "!include" not in rendered or "# (was:" in rendered
    reparsed = assemble(parse_qmasm(rendered))
    assert reparsed.model == assemble(program).model


def test_number_formatting_roundtrips_exactly():
    source = "A 0.3333333333333333\nA B -0.6666666666666666\n"
    rendered = write_qmasm(parse_qmasm(source))
    reparsed = assemble(parse_qmasm(rendered))
    assert reparsed.model.get_linear("A") == pytest.approx(1 / 3, abs=0)
    assert reparsed.model.get_interaction("A", "B") == pytest.approx(
        -2 / 3, abs=0
    )
