"""Tests for the penalty-model synthesizer (Section 4.3.2, Tables 2-4)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ising.model import SPIN_FALSE, SPIN_TRUE
from repro.ising.penalty import (
    PenaltySynthesisError,
    synthesize_penalty,
    truth_table_of,
    verify_penalty,
)

#: All 16 two-input Boolean functions, keyed by their truth vector
#: (f(0,0), f(0,1), f(1,0), f(1,1)).
ALL_2IN_FUNCTIONS = {
    bits: (lambda a, b, bits=bits: bool(bits[(int(a) << 1) | int(b)]))
    for bits in itertools.product((0, 1), repeat=4)
}


def test_truth_table_of_lists_output_first():
    rows = truth_table_of(lambda a, b: a and b, 2)
    assert (True, True, True) in rows
    assert (False, False, True) in rows
    assert len(rows) == 4


def test_and_without_ancillas():
    """Table 2: the AND system of inequalities is feasible as-is."""
    rows = truth_table_of(lambda a, b: a and b, 2)
    penalty = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=0)
    assert not penalty.ancillas
    assert verify_penalty(penalty, rows)
    assert penalty.gap > 0


def test_and_gap_is_maximized():
    """The LP maximizes the gap; with |h|<=2, |J|<=1 AND reaches gap 2."""
    rows = truth_table_of(lambda a, b: a and b, 2)
    penalty = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=0)
    assert penalty.gap == pytest.approx(2.0, abs=1e-6)


@pytest.mark.parametrize("name", ["xor", "xnor"])
def test_xor_xnor_infeasible_without_ancilla(name):
    """The paper: 'only XOR and XNOR lead to an unsolvable system'."""
    func = (lambda a, b: a != b) if name == "xor" else (lambda a, b: a == b)
    rows = truth_table_of(func, 2)
    with pytest.raises(PenaltySynthesisError):
        synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=0)


@pytest.mark.parametrize("name", ["xor", "xnor"])
def test_xor_xnor_need_exactly_one_ancilla(name):
    """Table 3: a single ancilla makes the XOR system solvable."""
    func = (lambda a, b: a != b) if name == "xor" else (lambda a, b: a == b)
    rows = truth_table_of(func, 2)
    penalty = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=1)
    assert len(penalty.ancillas) == 1
    assert verify_penalty(penalty, rows)


def test_all_sixteen_two_input_functions():
    """Every 2-input function gets a working penalty within one ancilla,
    and only XOR/XNOR (truth vectors 0110 and 1001) need the ancilla."""
    for bits, func in ALL_2IN_FUNCTIONS.items():
        rows = truth_table_of(func, 2)
        penalty = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=1)
        assert verify_penalty(penalty, rows), f"function {bits} failed"
        needs_ancilla = bits in ((0, 1, 1, 0), (1, 0, 0, 1))
        assert bool(penalty.ancillas) == needs_ancilla, f"function {bits}"


def test_three_input_majority():
    rows = truth_table_of(lambda a, b, c: (a + b + c) >= 2, 3)
    penalty = synthesize_penalty(rows, ["Y", "A", "B", "C"], max_ancillas=1)
    assert verify_penalty(penalty, rows)


def test_mux_synthesis():
    rows = truth_table_of(lambda s, a, b: b if s else a, 3)
    penalty = synthesize_penalty(rows, ["Y", "S", "A", "B"], max_ancillas=1)
    assert verify_penalty(penalty, rows)


def test_ground_energy_is_reported_k():
    rows = truth_table_of(lambda a, b: a or b, 2)
    penalty = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=0)
    sample = {"Y": SPIN_TRUE, "A": SPIN_TRUE, "B": SPIN_FALSE}
    assert penalty.model.energy(sample) == pytest.approx(penalty.ground_energy)


def test_coefficients_respect_ranges():
    rows = truth_table_of(lambda a, b: a and b, 2)
    penalty = synthesize_penalty(
        rows, ["Y", "A", "B"], max_ancillas=0,
        h_range=(-1.0, 1.0), j_range=(-0.5, 0.5),
    )
    for bias in penalty.model.linear.values():
        assert -1.0 - 1e-9 <= bias <= 1.0 + 1e-9
    for coupling in penalty.model.quadratic.values():
        assert -0.5 - 1e-9 <= coupling <= 0.5 + 1e-9


def test_tight_ranges_shrink_gap():
    rows = truth_table_of(lambda a, b: a and b, 2)
    wide = synthesize_penalty(rows, ["Y", "A", "B"], max_ancillas=0)
    narrow = synthesize_penalty(
        rows, ["Y", "A", "B"], max_ancillas=0,
        h_range=(-1.0, 1.0), j_range=(-0.5, 0.5),
    )
    assert narrow.gap < wide.gap


def test_input_validation():
    with pytest.raises(ValueError):
        synthesize_penalty([], ["Y"], max_ancillas=0)
    with pytest.raises(ValueError):
        synthesize_penalty([(True,), (True,)], ["Y"], max_ancillas=0)
    with pytest.raises(ValueError):
        synthesize_penalty([(True, False, True)], ["Y"], max_ancillas=0)
    with pytest.raises(ValueError):
        synthesize_penalty([(2,)], ["Y"], max_ancillas=0)


def test_accepts_spin_and_bool_rows():
    bool_version = synthesize_penalty(
        [(True, True), (False, False)], ["Y", "A"], max_ancillas=0
    )
    spin_version = synthesize_penalty(
        [(1, 1), (-1, -1)], ["Y", "A"], max_ancillas=0
    )
    assert bool_version.model == spin_version.model


def test_single_variable_pin():
    """A one-variable 'always true' table is H_VCC up to scaling."""
    penalty = synthesize_penalty([(True,)], ["Y"], max_ancillas=0)
    assert penalty.model.energy({"Y": SPIN_TRUE}) < penalty.model.energy(
        {"Y": SPIN_FALSE}
    )


@given(st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=7))
@settings(max_examples=25, deadline=None)
def test_random_three_variable_tables(valid_indices):
    """Any nonempty, proper subset of {0,1}^3 gets a verified penalty
    within two ancillas (full tables are trivially verified too)."""
    rows = [
        tuple(bool((index >> bit) & 1) for bit in range(3))
        for index in sorted(valid_indices)
    ]
    penalty = synthesize_penalty(rows, ["x", "y", "z"], max_ancillas=2)
    assert verify_penalty(penalty, rows)
