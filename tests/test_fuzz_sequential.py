"""Differential fuzzing of sequential compilation (Section 4.3.3).

Random small state machines are compiled, then checked two ways:

1. the sequential netlist stepped cycle by cycle must match the
   time-unrolled combinational netlist evaluated once;
2. the unrolled netlist's Hamiltonian, with inputs pinned, must have its
   ground state reproduce the same output trace (for tiny machines).
"""

import random

import pytest

from repro.hdl import elaborate
from repro.synth.opt import optimize
from repro.synth.simulate import NetlistSimulator
from repro.synth.unroll import unroll


def _random_fsm(seed: int) -> str:
    """A random 3-bit state machine with one input and one output."""
    rng = random.Random(seed)
    op = rng.choice(["+", "^", "-"])
    shift = rng.randint(0, 2)
    update_true = rng.choice(
        [f"state {op} 1", f"state {op} 3", "(state << 1) | inp",
         f"state ^ (state >> {max(shift, 1)})"]
    )
    update_false = rng.choice(["state", "state + 2", "~state"])
    return f"""
    module fsm (clk, inp, out);
        input clk, inp;
        output [2:0] out;
        reg [2:0] state;
        always @(posedge clk)
            if (inp)
                state <= {update_true};
            else
                state <= {update_false};
        assign out = state;
    endmodule
    """


STEPS = 4


@pytest.mark.parametrize("seed", range(12))
def test_unroll_matches_step_simulation(seed):
    source = _random_fsm(seed)
    netlist = optimize(elaborate(source))
    unrolled = unroll(netlist, STEPS, initial_value=0)

    step_sim = NetlistSimulator(netlist)
    flat_sim = NetlistSimulator(unrolled)
    for pattern in range(1 << STEPS):
        inputs = [(pattern >> t) & 1 for t in range(STEPS)]
        step_sim.reset()
        reference = [
            step_sim.step({"clk": 0, "inp": bit})["out"] for bit in inputs
        ]
        flat = flat_sim.evaluate(
            {f"inp@{t}": bit for t, bit in enumerate(inputs)}
        )
        measured = [flat[f"out@{t}"] for t in range(STEPS)]
        assert measured == reference, (seed, inputs, source)


@pytest.mark.parametrize("seed", range(3))
def test_unrolled_hamiltonian_reproduces_trace(seed):
    """End-to-end: pin the input sequence, read the trace from the
    annealed (exactly solved) Hamiltonian."""
    from repro import VerilogAnnealerCompiler

    source = _random_fsm(seed)
    compiler = VerilogAnnealerCompiler(seed=seed)
    program = compiler.compile(source, unroll_steps=2, initial_state=0)

    reference_sim = NetlistSimulator(optimize(elaborate(source)))
    for pattern in (0b01, 0b10, 0b11):
        inputs = [(pattern >> t) & 1 for t in range(2)]
        reference_sim.reset()
        expected = [
            reference_sim.step({"clk": 0, "inp": bit})["out"]
            for bit in inputs
        ]
        result = compiler.run(
            program,
            pins=[f"inp@{t} := {bit}" for t, bit in enumerate(inputs)],
            solver="sa",
            num_reads=120,
        )
        best = result.valid_solutions[0]
        measured = [best.value_of(f"out@{t}") for t in range(2)]
        assert measured == expected, (seed, inputs)
