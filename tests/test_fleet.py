"""Fleet resilience: health, breakers, re-dispatch, checkpoint/resume.

The acceptance story: with one of four machines crashed mid-run and
another straggling, a planted instance several times any single chip's
capacity still reaches its ground state; the results are bit-identical
across reruns with the same seed; and a run killed mid-solve resumes
from its last completed stitch round without re-solving finished work.
"""

import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
import types

import numpy as np
import pytest

from repro.core import trace
from repro.core.cache import CheckpointCache
from repro.core.faults import (
    FaultSpec,
    MachineCrashError,
    TransientSolverError,
    parse_fault_spec,
)
from repro.ising.model import IsingModel
from repro.solvers.fleet import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Fleet,
    HealthPolicy,
    MachineFaultPlan,
    MachineHealth,
    make_fleet,
    modeled_latency_us,
    parse_fleet_spec,
)
from repro.solvers.machine import MachineProperties
from repro.solvers.shard import ShardSolver

SMALL_CHIP = MachineProperties(cells=2, dropout_fraction=0.0)


def _planted_model(n: int, seed: int = 5):
    """Planted-ground-state instance (same construction as test_shard)."""
    rng = np.random.default_rng(seed)
    planted = rng.choice([-1, 1], size=n)
    model = IsingModel()
    for i in range(n):
        model.add_variable(i, -0.25 * float(planted[i]))
    for i in range(n - 1):
        model.add_interaction(i, i + 1, -float(planted[i] * planted[i + 1]))
    for _ in range(n // 2):
        i, j = rng.choice(n, size=2, replace=False)
        model.add_interaction(int(i), int(j), -float(planted[i] * planted[j]))
    ground = model.energy({i: int(planted[i]) for i in range(n)})
    return model, ground


def _solver(**overrides) -> ShardSolver:
    kwargs = dict(
        properties=SMALL_CHIP, machines=4, seed=3, num_reads_per_shard=10,
        max_workers=1,
    )
    kwargs.update(overrides)
    return ShardSolver(**kwargs)


def _events(tracer, name):
    """All instant events named ``name``, as attribute dicts.

    Events fired inside an open span land on ``span.events``; with no
    open span the tracer records them as zero-length root spans.
    """
    out = []
    for span in tracer.walk():
        if span.name == name:
            out.append(span.attributes)
        for entry in span.events:
            if entry["name"] == name:
                out.append(entry.get("attributes", {}))
    return out


# ----------------------------------------------------------------------
# Health statistics
# ----------------------------------------------------------------------
class TestMachineHealth:
    def test_rolling_window_and_rates(self):
        health = MachineHealth(window=4)
        for _ in range(3):
            health.record_success(100.0, wall_s=0.1, chain_break_fraction=0.5)
        health.record_failure()
        assert health.samples == 4
        assert health.failure_rate() == pytest.approx(0.25)
        assert health.mean_latency_us() == pytest.approx(100.0)
        assert health.mean_chain_breaks() == pytest.approx(0.5)
        # The window slides: four more failures evict every success.
        for _ in range(4):
            health.record_failure()
        assert health.failure_rate() == pytest.approx(1.0)
        # Lifetime counters do not slide.
        assert health.successes == 3
        assert health.failures == 5

    def test_crash_kind_counts_separately(self):
        health = MachineHealth()
        health.record_failure(kind="crash")
        health.record_failure(kind="transient")
        assert health.crashes == 1
        assert health.failures == 2

    def test_state_round_trip(self):
        health = MachineHealth(window=8)
        health.record_success(42.0, wall_s=0.5, chain_break_fraction=0.1)
        health.record_failure()
        restored = MachineHealth()
        restored.load_state(health.state_dict())
        assert restored.state_dict() == health.state_dict()
        assert restored.failure_rate() == health.failure_rate()


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_closed_to_open_to_half_open_to_recovered(self):
        breaker = CircuitBreaker(HealthPolicy(cooldown_rounds=2))
        assert breaker.admit(1)
        breaker.trip(1, reason="failure_rate")
        assert breaker.state == OPEN
        assert not breaker.admit(2)      # cooling down
        assert breaker.admit(3)          # cooldown over: half-open probe
        assert breaker.state == HALF_OPEN
        assert breaker.record(True, 3) == "recovered"
        assert breaker.state == CLOSED
        assert breaker.reason is None

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(HealthPolicy(cooldown_rounds=1))
        breaker.trip(1, reason="straggler")
        assert breaker.admit(2)
        assert breaker.state == HALF_OPEN
        assert breaker.record(False, 2) is None
        assert breaker.state == OPEN
        assert breaker.reason == "straggler"
        assert breaker.opens == 2

    def test_permanent_open_never_admits(self):
        breaker = CircuitBreaker(HealthPolicy(cooldown_rounds=1))
        breaker.trip(1, reason="crash", permanent=True)
        assert not breaker.admit(100)
        assert breaker.state == OPEN

    def test_state_round_trip(self):
        breaker = CircuitBreaker()
        breaker.trip(5, reason="corruption")
        restored = CircuitBreaker()
        restored.load_state(breaker.state_dict())
        assert restored.state == OPEN
        assert restored.reason == "corruption"
        assert restored.opened_round == 5

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(window=0)
        with pytest.raises(ValueError):
            HealthPolicy(failure_threshold=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(straggler_factor=1.0)
        with pytest.raises(ValueError):
            HealthPolicy(cooldown_rounds=0)


# ----------------------------------------------------------------------
# The deterministic fault plan
# ----------------------------------------------------------------------
class TestMachineFaultPlan:
    def test_crash_fires_at_scheduled_dispatch(self):
        plan = MachineFaultPlan(parse_fault_spec("machine_crash=1:3,seed=7"))
        assert plan.check_dispatch(1, 1) == 1.0
        assert plan.check_dispatch(1, 2) == 1.0
        with pytest.raises(MachineCrashError) as err:
            plan.check_dispatch(1, 3)
        assert err.value.machine == 1
        # Dead is dead: every later dispatch crashes too.
        with pytest.raises(MachineCrashError):
            plan.check_dispatch(1, 4)
        assert plan.crashes_fired == 2
        # Other machines are untouched.
        assert plan.check_dispatch(0, 99) == 1.0

    def test_straggler_factor_returned(self):
        plan = MachineFaultPlan(
            parse_fault_spec("machine_straggler=2:8,seed=7")
        )
        assert plan.check_dispatch(2, 1) == pytest.approx(8.0)
        assert plan.check_dispatch(0, 1) == 1.0

    def test_flaky_failures_are_seed_deterministic(self):
        def outcomes():
            plan = MachineFaultPlan(
                parse_fault_spec("machine_flaky=0:50%,seed=11")
            )
            out = []
            for dispatch in range(1, 21):
                try:
                    plan.check_dispatch(0, dispatch)
                    out.append(True)
                except TransientSolverError as exc:
                    assert exc.kind == "machine_flaky"
                    out.append(False)
            return out
        first, second = outcomes(), outcomes()
        assert first == second
        assert False in first and True in first

    def test_flaky_rng_state_round_trips(self):
        spec = parse_fault_spec("machine_flaky=0:50%,seed=11")
        plan = MachineFaultPlan(spec)
        for dispatch in range(1, 6):
            try:
                plan.check_dispatch(0, dispatch)
            except TransientSolverError:
                pass
        restored = MachineFaultPlan(spec)
        restored.load_state(plan.state_dict())

        def drain(p):
            out = []
            for dispatch in range(6, 16):
                try:
                    p.check_dispatch(0, dispatch)
                    out.append(True)
                except TransientSolverError:
                    out.append(False)
            return out
        assert drain(restored) == drain(plan)


# ----------------------------------------------------------------------
# Fleet construction and the spec grammar
# ----------------------------------------------------------------------
class TestFleetSpec:
    def test_letter_codes_prefixes_and_sizes(self):
        machines = parse_fleet_spec("C16,P8,Z6", template=SMALL_CHIP)
        assert [(m.topology, m.cells) for m in machines] == [
            ("chimera", 16), ("pegasus", 8), ("zephyr", 6),
        ]
        machines = parse_fleet_spec("chim4,pegasus-2,zephyr:3")
        assert [(m.topology, m.cells) for m in machines] == [
            ("chimera", 4), ("pegasus", 2), ("zephyr", 3),
        ]

    def test_sizeless_token_uses_flagship_default(self):
        (machine,) = parse_fleet_spec("C")
        assert machine.topology == "chimera"
        assert machine.cells is None

    def test_template_properties_are_inherited(self):
        template = MachineProperties(dropout_fraction=0.0, noise_h=0.005)
        machines = parse_fleet_spec("C2,P2", template=template)
        assert all(m.dropout_fraction == 0.0 for m in machines)
        assert all(m.noise_h == 0.005 for m in machines)

    def test_rejects_bad_tokens(self):
        with pytest.raises(ValueError):
            parse_fleet_spec("C16,???")
        with pytest.raises(ValueError):
            parse_fleet_spec("Q16")  # unknown family
        with pytest.raises(ValueError):
            parse_fleet_spec("  ,  ,")  # names no machines

    def test_make_fleet_normalization(self):
        homogeneous = make_fleet(None, properties=SMALL_CHIP, machines=3)
        assert len(homogeneous) == 3
        spec = make_fleet("C2,P2", properties=SMALL_CHIP)
        assert [m.properties.topology for m in spec] == ["chimera", "pegasus"]
        explicit = make_fleet([SMALL_CHIP, SMALL_CHIP])
        assert len(explicit) == 2
        assert make_fleet(explicit) is explicit

    def test_machine_labels_and_class_keys(self):
        fleet = make_fleet("C2,C2,P2", properties=SMALL_CHIP)
        assert fleet.labels() == ["m0:chimera2", "m1:chimera2", "m2:pegasus2"]
        assert fleet.machines[0].class_key == fleet.machines[1].class_key
        assert fleet.machines[0].class_key != fleet.machines[2].class_key

    def test_modeled_latency_formula(self):
        props = MachineProperties(
            programming_time_us=1000.0, readout_time_us=100.0,
            delay_time_us=20.0,
        )
        assert modeled_latency_us(props, reads=10, annealing_time_us=30.0) == (
            pytest.approx(1000.0 + 10 * (30.0 + 100.0 + 20.0))
        )


# ----------------------------------------------------------------------
# Fleet-level quarantine policy
# ----------------------------------------------------------------------
class TestFleetPolicy:
    def _fleet(self, count=3, **policy):
        kwargs = dict(min_samples=2, cooldown_rounds=1)
        kwargs.update(policy)
        return Fleet.homogeneous(SMALL_CHIP, count, policy=HealthPolicy(**kwargs))

    def test_failure_rate_trips_breaker(self):
        fleet = self._fleet()
        machine = fleet.machines[0]
        fleet.begin_round()
        fleet.record_failure(machine, kind="transient", reason="failure_rate")
        assert machine.breaker.state == CLOSED  # below min_samples
        fleet.record_failure(machine, kind="transient", reason="failure_rate")
        assert machine.breaker.state == OPEN
        assert machine.breaker.reason == "failure_rate"
        assert fleet.quarantined() == [machine.label]

    def test_crash_quarantines_permanently(self):
        fleet = self._fleet()
        machine = fleet.machines[1]
        fleet.begin_round()
        fleet.record_failure(machine, kind="crash", reason="crash")
        assert machine.breaker.permanent
        assert fleet.crashed() == [machine.label]
        fleet.begin_round()
        fleet.begin_round()
        assert machine not in fleet.admitted()

    def test_straggler_quarantine_uses_modeled_latency(self):
        fleet = self._fleet(straggler_factor=3.0)
        fleet.begin_round()
        for machine in fleet.machines:
            slow = 10.0 if machine.index == 2 else 1.0
            for _ in range(2):
                fleet.record_success(machine, 100.0 * slow, 0.0, 0.0)
        fleet.check_quarantines()
        assert fleet.quarantined() == [fleet.machines[2].label]
        assert fleet.machines[2].breaker.reason == "straggler"

    def test_corruption_quarantine_on_chain_breaks(self):
        fleet = self._fleet(corruption_threshold=0.4)
        fleet.begin_round()
        for machine in fleet.machines:
            breaks = 0.9 if machine.index == 0 else 0.0
            for _ in range(2):
                fleet.record_success(machine, 100.0, 0.0, breaks)
        fleet.check_quarantines()
        assert fleet.quarantined() == [fleet.machines[0].label]
        assert fleet.machines[0].breaker.reason == "corruption"

    def test_recovery_emits_event_and_counter(self):
        fleet = self._fleet()
        machine = fleet.machines[0]
        fleet.begin_round()
        machine.breaker.trip(fleet.round, reason="failure_rate")
        fleet.begin_round()
        fleet.begin_round()
        with trace.capture() as (tracer, metrics):
            assert machine in fleet.admitted()  # half-opens
            fleet.record_success(machine, 100.0, 0.0, 0.0)
            assert machine.breaker.state == CLOSED
            assert metrics.value("fleet.recoveries") == 1
        events = _events(tracer, "fleet.recovery")
        assert events and events[0]["machine"] == machine.label

    def test_state_dict_round_trips_everything(self):
        fleet = Fleet.homogeneous(
            SMALL_CHIP, 2,
            policy=HealthPolicy(min_samples=2),
            faults=parse_fault_spec("machine_flaky=0:50%,seed=3"),
        )
        fleet.begin_round()
        fleet.record_success(fleet.machines[0], 50.0, 0.1, 0.0)
        fleet.record_failure(fleet.machines[1], kind="crash", reason="crash")
        fleet.redispatches = 4
        restored = Fleet.homogeneous(
            SMALL_CHIP, 2,
            policy=HealthPolicy(min_samples=2),
            faults=parse_fault_spec("machine_flaky=0:50%,seed=3"),
        )
        restored.load_state(fleet.state_dict())
        assert restored.state_dict() == fleet.state_dict()
        assert restored.crashed() == fleet.crashed()
        assert restored.round == fleet.round


# ----------------------------------------------------------------------
# ShardSolver on a chaotic fleet
# ----------------------------------------------------------------------
CHAOS = "machine_crash=1:2,machine_straggler=2:8,seed=7"


def test_crashed_machine_orphans_are_redispatched():
    model, ground = _planted_model(48)
    with trace.capture() as (tracer, metrics):
        result = _solver(faults="machine_crash=1:1,seed=7").sample(model)
    info = result.info
    assert info["fleet"]["crashed"] == ["m1:chimera2"]
    assert info["redispatches"] >= 1
    assert info["shard_completion"] == 1.0
    assert result.first.energy == pytest.approx(ground)
    # The orphaned shards landed somewhere: the crash is an event, the
    # re-dispatches are counted, and machine 1 never ran a shard.
    assert _events(tracer, "fleet.redispatch")
    assert _events(tracer, "fleet.quarantine")
    assert metrics.value("fleet.redispatches") == info["redispatches"]
    assert metrics.value("fleet.crashes") == 1
    assert metrics.value("machine.1.samples") == 0


def test_chaos_acceptance_ground_state_and_bit_identity():
    """1 of 4 machines crashed + 1 straggling: ground state, identical."""
    capacity = ShardSolver(properties=SMALL_CHIP, machines=4).chip_qubits // 4
    model, ground = _planted_model(4 * capacity)
    first = _solver(faults=CHAOS).sample(model, num_reads=2)
    assert first.info["fleet"]["crashed"] == ["m1:chimera2"]
    assert "m2:chimera2" in first.info["fleet"]["quarantined"]
    assert first.info["shard_completion"] == 1.0
    assert first.first.energy == pytest.approx(ground)

    second = _solver(faults=CHAOS).sample(model, num_reads=2)
    assert np.array_equal(first.records, second.records)
    assert np.array_equal(first.energies, second.energies)


def test_chaos_results_identical_pooled_and_serial():
    model, _ = _planted_model(40)
    serial = _solver(faults=CHAOS).sample(model, max_workers=1)
    pooled = _solver(faults=CHAOS).sample(model, max_workers=4)
    assert np.array_equal(serial.records, pooled.records)


def test_straggler_is_quarantined_by_modeled_latency():
    model, _ = _planted_model(48)
    policy = HealthPolicy(min_samples=2, straggler_factor=4.0)
    result = _solver(
        faults="machine_straggler=2:8,seed=7", health_policy=policy,
        patience=4,
    ).sample(model)
    fleet_info = result.info["fleet"]
    assert "m2:chimera2" in fleet_info["quarantined"]
    assert "m2:chimera2" not in fleet_info["crashed"]


def test_flaky_machine_trips_breaker():
    model, _ = _planted_model(48)
    policy = HealthPolicy(min_samples=2, failure_threshold=0.5)
    with trace.capture() as (tracer, metrics):
        result = _solver(
            faults="machine_flaky=0:100%,seed=7", health_policy=policy,
        ).sample(model)
    info = result.info
    assert "m0:chimera2" in info["fleet"]["quarantined"]
    assert info["redispatches"] >= 2
    assert metrics.value("fleet.transient_failures") >= 2
    assert info["shard_completion"] == 1.0
    # Health snapshot shows the failures.
    assert info["fleet"]["health"]["m0:chimera2"]["failures"] >= 2


def test_whole_fleet_dead_degrades_to_local_fallback():
    model, ground = _planted_model(24)
    faults = "machine_crash=0:1+1:1+2:1+3:1,seed=7"
    with trace.capture() as (tracer, metrics):
        result = _solver(faults=faults).sample(model)
    info = result.info
    assert len(info["fleet"]["crashed"]) == 4
    assert info["shard_fallbacks"] >= 1
    assert info["shard_completion"] == 1.0
    assert result.first.energy == pytest.approx(ground)
    events = _events(tracer, "shard.fallback")
    assert events
    assert events[0]["reason"] == "no_healthy_machine"
    assert metrics.value("shard.fallbacks") == info["shard_fallbacks"]


def test_heterogeneous_fleet_solves_and_shares_embeddings():
    model, ground = _planted_model(40)
    solver = _solver(fleet="C2,C2,P2,Z2", shard_size=10)
    result = solver.sample(model)
    assert result.info["machines"] == 4
    assert result.info["fleet"]["machines"] == [
        "m0:chimera2", "m1:chimera2", "m2:pegasus2", "m3:zephyr2",
    ]
    # Embeddings are keyed per machine *class*: the two chimera machines
    # share entries, so there are at most 3 classes' worth of keys.
    classes = {key[0] for key in solver._embedding_cache}
    assert len(classes) <= 3
    # Shard size defaulted against the smallest machine would also work;
    # here it is explicit and every region fits every chip.
    rerun = _solver(fleet="C2,C2,P2,Z2", shard_size=10).sample(model)
    assert np.array_equal(result.records, rerun.records)


def test_fleet_state_gauges_exported():
    model, _ = _planted_model(32)
    with trace.capture() as (_tracer, metrics):
        _solver(faults="machine_crash=3:1,seed=7").sample(model)
    assert metrics.value("fleet.machine.3.state") == 2  # open
    assert metrics.value("fleet.machine.0.state") == 0  # closed


def test_runner_lifts_shard_fallbacks_into_resilience():
    from repro.core.trace import MetricsRegistry
    from repro.qmasm.runner import _RESILIENCE_COUNTERS, SampleStage

    assert "shard_fallbacks" in _RESILIENCE_COUNTERS
    assert "shard_redispatches" in _RESILIENCE_COUNTERS
    artifact = types.SimpleNamespace(
        sampleset=types.SimpleNamespace(
            info={"shard_fallbacks": 3, "redispatches": 2}
        )
    )
    context = types.SimpleNamespace(metrics=MetricsRegistry())
    SampleStage._lift_shard_stats(artifact, context)
    assert context.metrics.value("runner.shard_fallbacks") == 3
    assert context.metrics.value("runner.shard_redispatches") == 2


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_checkpointed_run_resumes_complete_without_resolving(tmp_path):
    model, _ = _planted_model(40)
    kwargs = dict(checkpoint=str(tmp_path))
    first = _solver(**kwargs).sample(model, num_reads=2)
    resumed = _solver(resume=True, **kwargs).sample(model, num_reads=2)
    assert resumed.info.get("resumed") is True
    assert resumed.info["rounds_executed"] == 0  # nothing re-solved
    assert np.array_equal(first.records, resumed.records)
    assert np.array_equal(first.energies, resumed.energies)


def test_resume_ignores_checkpoints_of_other_runs(tmp_path):
    model, _ = _planted_model(40)
    other, _ = _planted_model(40, seed=9)
    _solver(checkpoint=str(tmp_path)).sample(other, num_reads=1)
    result = _solver(checkpoint=str(tmp_path), resume=True).sample(
        model, num_reads=1
    )
    assert "resumed" not in result.info
    assert result.info["rounds_executed"] > 0


def test_mid_run_checkpoint_resumes_bit_identically(tmp_path):
    """Kill after round K (simulated): resume matches the full run."""
    model, _ = _planted_model(48)
    reference = _solver().sample(model, num_reads=2)

    # Run a checkpointing solve that dies (by exception) mid-read --
    # after the first round completed (and checkpointed) but before the
    # second finishes.
    round_one_jobs = len(_solver()._partition(model, list(model.variables)))
    import repro.solvers.shard as shard_mod
    real = shard_mod._solve_shard
    calls = {"n": 0}
    boom = RuntimeError("simulated SIGKILL")

    def dying(job):
        calls["n"] += 1
        if calls["n"] > round_one_jobs + 1:
            raise boom
        return real(job)

    shard_mod._solve_shard = dying
    try:
        with pytest.raises(RuntimeError):
            _solver(checkpoint=str(tmp_path)).sample(model, num_reads=2)
    finally:
        shard_mod._solve_shard = real

    resumed = _solver(checkpoint=str(tmp_path), resume=True).sample(
        model, num_reads=2
    )
    assert resumed.info.get("resumed") is True
    assert resumed.info["rounds_executed"] < reference.info["rounds_executed"]
    assert np.array_equal(reference.records, resumed.records)
    assert np.array_equal(reference.energies, resumed.energies)


def test_sigkill_resume_completes_without_resolving(tmp_path):
    """A real SIGKILL mid-run, then an in-process --resume completes."""
    script = textwrap.dedent(
        """
        import numpy as np
        from tests.test_fleet import _planted_model, _solver
        model, _ = _planted_model(48)
        _solver(checkpoint={ckpt!r}).sample(model, num_reads=4)
        """
    ).format(ckpt=str(tmp_path))
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
    )
    child = subprocess.Popen([sys.executable, "-c", script], env=env)
    try:
        # Kill as soon as the first checkpoint lands on disk.
        deadline = time.time() + 120.0
        while time.time() < deadline:
            if any(name.endswith(".pkl") for name in os.listdir(tmp_path)):
                break
            if child.poll() is not None:
                break
            time.sleep(0.005)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
    assert any(name.endswith(".pkl") for name in os.listdir(tmp_path))

    model, _ = _planted_model(48)
    reference = _solver().sample(model, num_reads=4)
    resumed = _solver(checkpoint=str(tmp_path), resume=True).sample(
        model, num_reads=4
    )
    assert resumed.info.get("resumed") is True
    # Finished iterations are not re-solved: the resumed run executes
    # strictly fewer rounds than the full run did.
    assert resumed.info["rounds_executed"] < reference.info["rounds_executed"]
    assert np.array_equal(reference.records, resumed.records)
    assert np.array_equal(reference.energies, resumed.energies)


def test_checkpoint_resume_with_chaos_is_bit_identical(tmp_path):
    """Fleet/breaker/fault-plan state survives the checkpoint too."""
    model, _ = _planted_model(48)
    reference = _solver(faults=CHAOS).sample(model, num_reads=2)

    round_one_jobs = len(_solver()._partition(model, list(model.variables)))
    import repro.solvers.shard as shard_mod
    real = shard_mod._solve_shard
    calls = {"n": 0}

    def dying(job):
        calls["n"] += 1
        if calls["n"] > round_one_jobs + 2:
            raise RuntimeError("simulated crash")
        return real(job)

    shard_mod._solve_shard = dying
    try:
        with pytest.raises(RuntimeError):
            _solver(faults=CHAOS, checkpoint=str(tmp_path)).sample(
                model, num_reads=2
            )
    finally:
        shard_mod._solve_shard = real

    resumed = _solver(
        faults=CHAOS, checkpoint=str(tmp_path), resume=True
    ).sample(model, num_reads=2)
    assert np.array_equal(reference.records, resumed.records)
    assert resumed.info["fleet"]["crashed"] == ["m1:chimera2"]


def test_checkpoint_cache_key_is_stable():
    key = CheckpointCache.key_for("some-run-fingerprint")
    assert key == CheckpointCache.key_for("some-run-fingerprint")
    assert key != CheckpointCache.key_for("another-run")


def test_run_fingerprint_covers_fleet_and_faults():
    model, _ = _planted_model(16)
    base = _solver()._run_fingerprint(model, 2)
    assert _solver()._run_fingerprint(model, 2) == base
    assert _solver(faults=CHAOS)._run_fingerprint(model, 2) != base
    assert _solver(fleet="C2,P2")._run_fingerprint(model, 2) != base
    assert _solver(seed=99)._run_fingerprint(model, 2) != base
    assert _solver()._run_fingerprint(model, 3) != base
