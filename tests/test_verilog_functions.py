"""Tests for Verilog functions and net-declaration assignments."""

import pytest

from repro.hdl import elaborate
from repro.hdl.errors import ElaborationError, VerilogSyntaxError
from repro.synth.simulate import NetlistSimulator


def _sim(source):
    return NetlistSimulator(elaborate(source))


# ----------------------------------------------------------------------
# wire x = expr;
# ----------------------------------------------------------------------
def test_wire_declaration_assignment():
    sim = _sim(
        """
        module m (a, b, y);
            input [2:0] a, b;
            output [2:0] y;
            wire [2:0] t = a & b;
            assign y = ~t;
        endmodule
        """
    )
    for a in range(8):
        for b in range(8):
            assert sim.evaluate({"a": a, "b": b})["y"] == (~(a & b)) & 7


def test_multiple_initializers_per_decl():
    sim = _sim(
        """
        module m (a, y);
            input [1:0] a;
            output [1:0] y;
            wire [1:0] p = a + 1, q = a - 1;
            assign y = p & q;
        endmodule
        """
    )
    for a in range(4):
        assert sim.evaluate({"a": a})["y"] == ((a + 1) & 3) & ((a - 1) & 3)


def test_reg_initializer_rejected():
    with pytest.raises(VerilogSyntaxError):
        elaborate("module m; reg r = 1; endmodule")


# ----------------------------------------------------------------------
# Functions
# ----------------------------------------------------------------------
MAX4 = """
    function [3:0] max4;
        input [3:0] p;
        input [3:0] q;
        if (p > q)
            max4 = p;
        else
            max4 = q;
    endfunction
"""


def test_function_basic():
    sim = _sim(
        f"""
        module m (a, b, y);
            input [3:0] a, b;
            output [3:0] y;
            {MAX4}
            assign y = max4(a, b);
        endmodule
        """
    )
    for a in range(16):
        for b in range(0, 16, 3):
            assert sim.evaluate({"a": a, "b": b})["y"] == max(a, b)


def test_function_nested_calls():
    sim = _sim(
        f"""
        module m (a, b, c, y);
            input [3:0] a, b, c;
            output [3:0] y;
            {MAX4}
            assign y = max4(max4(a, b), c);
        endmodule
        """
    )
    for a in range(0, 16, 5):
        for b in range(0, 16, 3):
            for c in range(0, 16, 7):
                assert sim.evaluate({"a": a, "b": b, "c": c})["y"] == max(a, b, c)


def test_function_with_locals_and_case():
    sim = _sim(
        """
        module m (op, a, b, y);
            input [1:0] op;
            input [3:0] a, b;
            output [3:0] y;
            function [3:0] alu;
                input [1:0] f;
                input [3:0] p, q;
                reg [3:0] t;
                begin
                    case (f)
                        0: t = p + q;
                        1: t = p - q;
                        2: t = p & q;
                        default: t = p ^ q;
                    endcase
                    alu = t;
                end
            endfunction
            assign y = alu(op, a, b);
        endmodule
        """
    )
    import operator

    ops = [operator.add, operator.sub, operator.and_, operator.xor]
    for op in range(4):
        for a in range(0, 16, 3):
            for b in range(0, 16, 5):
                expected = ops[op](a, b) & 15
                assert sim.evaluate({"op": op, "a": a, "b": b})["y"] == expected


def test_function_with_for_loop():
    sim = _sim(
        """
        module m (x, y);
            input [5:0] x;
            output [2:0] y;
            function [2:0] popcount;
                input [5:0] v;
                integer i;
                begin
                    popcount = 0;
                    for (i = 0; i < 6; i = i + 1)
                        popcount = popcount + v[i];
                end
            endfunction
            assign y = popcount(x);
        endmodule
        """
    )
    for x in range(64):
        assert sim.evaluate({"x": x})["y"] == bin(x).count("1")


def test_function_usable_in_always_block():
    sim = _sim(
        f"""
        module m (clk, a, b, q);
            input clk;
            input [3:0] a, b;
            output [3:0] q;
            reg [3:0] state;
            {MAX4}
            always @(posedge clk)
                state <= max4(a, b);
            assign q = state;
        endmodule
        """
    )
    sim.step({"clk": 0, "a": 9, "b": 4})
    assert sim.step({"clk": 0, "a": 0, "b": 0})["q"] == 9


def test_function_argument_count_checked():
    with pytest.raises(ElaborationError):
        elaborate(
            f"""
            module m (a, y);
                input [3:0] a;
                output [3:0] y;
                {MAX4}
                assign y = max4(a);
            endmodule
            """
        )


def test_unknown_function_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            "module m (a, y); input a; output y; assign y = ghost(a); endmodule"
        )


def test_recursive_function_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (a, y);
                input [3:0] a;
                output [3:0] y;
                function [3:0] f;
                    input [3:0] v;
                    f = f(v) + 1;
                endfunction
                assign y = f(a);
            endmodule
            """
        )


def test_function_must_assign_return_value():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m (a, y);
                input a;
                output y;
                function f;
                    input v;
                    if (v)
                        f = 1;
                endfunction
                assign y = f(a);
            endmodule
            """
        )


def test_function_return_width_respected():
    sim = _sim(
        """
        module m (a, y);
            input [3:0] a;
            output [7:0] y;
            function [1:0] low2;
                input [3:0] v;
                low2 = v;
            endfunction
            assign y = low2(a);
        endmodule
        """
    )
    assert sim.evaluate({"a": 0b1111})["y"] == 0b11  # truncated to 2 bits


def test_duplicate_function_rejected():
    with pytest.raises(ElaborationError):
        elaborate(
            """
            module m;
                function f; input v; f = v; endfunction
                function f; input v; f = ~v; endfunction
            endmodule
            """
        )


# ----------------------------------------------------------------------
# Generate blocks
# ----------------------------------------------------------------------
RIPPLE = """
module full_adder (a, b, cin, s, cout);
    input a, b, cin;
    output s, cout;
    assign s = a ^ b ^ cin;
    assign cout = (a & b) | (cin & (a ^ b));
endmodule

module ripple #(parameter N = 4) (a, b, s);
    input [N-1:0] a, b;
    output [N:0] s;
    wire [N:0] carry;
    genvar i;
    assign carry[0] = 1'b0;
    generate
    for (i = 0; i < N; i = i + 1) begin : stage
        full_adder fa (.a(a[i]), .b(b[i]), .cin(carry[i]),
                       .s(s[i]), .cout(carry[i+1]));
    end
    endgenerate
    assign s[N] = carry[N];
endmodule
"""


def test_generate_ripple_adder():
    sim = NetlistSimulator(elaborate(RIPPLE, top="ripple"))
    for a in range(16):
        for b in range(16):
            assert sim.evaluate({"a": a, "b": b})["s"] == a + b


def test_generate_respects_parameter_override():
    netlist = elaborate(RIPPLE, top="ripple", parameters={"N": 2})
    sim = NetlistSimulator(netlist)
    for a in range(4):
        for b in range(4):
            assert sim.evaluate({"a": a, "b": b})["s"] == a + b


def test_generate_with_assigns():
    source = """
    module rev (x, y);
        input [3:0] x;
        output [3:0] y;
        genvar i;
        generate
        for (i = 0; i < 4; i = i + 1) begin : flip
            assign y[i] = x[3 - i];
        end
        endgenerate
    endmodule
    """
    sim = NetlistSimulator(elaborate(source))
    for x in range(16):
        expected = int(f"{x:04b}"[::-1], 2)
        assert sim.evaluate({"x": x})["y"] == expected


def test_generate_requires_genvar():
    source = """
    module m (x, y);
        input x;
        output y;
        generate
        for (i = 0; i < 1; i = i + 1) begin : g
            assign y = x;
        end
        endgenerate
    endmodule
    """
    with pytest.raises(ElaborationError):
        elaborate(source)


def test_generate_rejects_declarations_inside():
    source = """
    module m (x, y);
        input x;
        output y;
        genvar i;
        generate
        for (i = 0; i < 2; i = i + 1) begin : g
            wire t;
        end
        endgenerate
        assign y = x;
    endmodule
    """
    with pytest.raises(VerilogSyntaxError):
        elaborate(source)


def test_generate_instance_names_are_scoped():
    netlist = elaborate(RIPPLE, top="ripple")
    prefixes = {name.split(".")[0] for name in netlist.net_names if "." in name}
    assert any(p.startswith("stage[") for p in prefixes)
