"""Tests for minor embedding (Section 4.4)."""

import networkx as nx
import numpy as np
import pytest

from repro.hardware.chimera import chimera_graph
from repro.hardware.embedding import (
    Embedding,
    EmbeddingError,
    default_chain_strength,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.ising.cells import cell_hamiltonian
from repro.ising.model import IsingModel
from repro.solvers.exact import ExactSolver
from repro.solvers.sampleset import SampleSet


@pytest.fixture(scope="module")
def c4():
    return chimera_graph(4)


# ----------------------------------------------------------------------
# find_embedding
# ----------------------------------------------------------------------
def test_k5_embeds_validly(c4):
    source = nx.complete_graph(5)
    embedding = find_embedding(source, c4, seed=0)
    embedding.validate(source.edges(), c4)
    assert embedding.total_qubits() >= 5  # K5 is non-planar: needs chains
    assert embedding.max_chain_length() >= 2


def test_triangle_needs_chains_on_bipartite_target(c4):
    """Chimera has no odd cycles, so a triangle cannot map 1:1."""
    source = nx.complete_graph(3)
    embedding = find_embedding(source, c4, seed=1)
    embedding.validate(source.edges(), c4)
    assert embedding.total_qubits() > 3


def test_path_graph_embeds_with_singletons(c4):
    source = nx.path_graph(6)
    embedding = find_embedding(source, c4, seed=2)
    embedding.validate(source.edges(), c4)


def test_cell_hamiltonian_interaction_graphs_embed(c4):
    for cell in ("XOR", "MUX", "AOI3", "OAI4"):
        model = cell_hamiltonian(cell)
        source = source_graph_of(model)
        embedding = find_embedding(source, c4, seed=3)
        embedding.validate(source.edges(), c4)


def test_embedding_is_seed_dependent(c4):
    """Section 6.1: 'a randomized, heuristic minor embedder ... the
    number of physical qubits varies from compilation to compilation'."""
    source = nx.complete_graph(6)
    embeddings = set()
    for s in range(6):
        chains = find_embedding(source, c4, seed=s).chains
        embeddings.add(
            tuple(sorted(tuple(sorted(chain)) for chain in chains.values()))
        )
    assert len(embeddings) > 1  # different runs, different embeddings


def test_empty_source(c4):
    assert len(find_embedding(nx.Graph(), c4)) == 0


def test_too_large_source_rejected():
    tiny = chimera_graph(1)
    big = nx.complete_graph(9)
    with pytest.raises(EmbeddingError):
        find_embedding(big, tiny, seed=0, tries=2)


def test_infeasible_embedding_raises():
    # K9 needs more couplers than one unit cell (8 qubits) offers.
    tiny = chimera_graph(1)
    with pytest.raises(EmbeddingError):
        find_embedding(nx.complete_graph(8), tiny, seed=0, tries=2, rounds=4)


def test_disconnected_source(c4):
    source = nx.Graph()
    source.add_edge("a", "b")
    source.add_edge("c", "d")
    source.add_node("e")
    embedding = find_embedding(source, c4, seed=4)
    embedding.validate(source.edges(), c4)
    assert "e" in embedding


# ----------------------------------------------------------------------
# Embedding validation
# ----------------------------------------------------------------------
def test_validate_rejects_overlap(c4):
    bad = Embedding({"a": frozenset({0}), "b": frozenset({0})})
    with pytest.raises(EmbeddingError):
        bad.validate([], c4)


def test_validate_rejects_disconnected_chain(c4):
    # Qubits 0 and 1 are both "vertical" in cell (0,0): no edge.
    bad = Embedding({"a": frozenset({0, 1})})
    with pytest.raises(EmbeddingError):
        bad.validate([], c4)


def test_validate_rejects_uncoupled_edge(c4):
    bad = Embedding({"a": frozenset({0}), "b": frozenset({1})})
    with pytest.raises(EmbeddingError):
        bad.validate([("a", "b")], c4)


def test_validate_rejects_empty_chain(c4):
    bad = Embedding({"a": frozenset()})
    with pytest.raises(EmbeddingError):
        bad.validate([], c4)


def test_validate_rejects_foreign_qubits(c4):
    bad = Embedding({"a": frozenset({99999})})
    with pytest.raises(EmbeddingError):
        bad.validate([], c4)


# ----------------------------------------------------------------------
# embed_ising
# ----------------------------------------------------------------------
def _embedded_pair(c4, seed=0):
    model = cell_hamiltonian("AND")
    model.update(IsingModel({"Y": -0.5}))  # bias to break degeneracy
    source = source_graph_of(model)
    embedding = find_embedding(source, c4, seed=seed)
    physical = embed_ising(model, embedding, c4)
    return model, embedding, physical


def test_embed_ising_energy_identity(c4):
    """For chain-consistent samples, physical energy == logical energy
    minus chain_strength per intra-chain coupler (a constant)."""
    model, embedding, physical = _embedded_pair(c4)
    strength = default_chain_strength(model)
    intra_edges = sum(
        c4.subgraph(chain).number_of_edges()
        for chain in embedding.chains.values()
    )
    for logical_sample in (
        {"Y": 1, "A": 1, "B": 1},
        {"Y": -1, "A": 1, "B": -1},
        {"Y": -1, "A": -1, "B": -1},
    ):
        physical_sample = {
            q: logical_sample[v]
            for v, chain in embedding.chains.items()
            for q in chain
        }
        expected = model.energy(logical_sample) - strength * intra_edges
        assert physical.energy(physical_sample) == pytest.approx(expected)


def test_embed_ising_ground_states_project_correctly(c4):
    """The physical argmin, unembedded, is the logical argmin."""
    model, embedding, physical = _embedded_pair(c4)
    if len(physical) > 20:
        pytest.skip("physical model too large for exhaustive check")
    physical_ground = ExactSolver(max_variables=20).ground_states(physical)
    logical = unembed_sampleset(physical_ground, embedding, model)
    truth, _ = model.ground_states()
    assert logical.first.energy == pytest.approx(truth)


def test_embed_ising_respects_topology(c4):
    model, embedding, physical = _embedded_pair(c4)
    for (u, v), coupling in physical.quadratic.items():
        if coupling != 0.0:
            assert c4.has_edge(u, v)


def test_embed_ising_splits_linear_bias(c4):
    model, embedding, physical = _embedded_pair(c4)
    for v, bias in model.linear.items():
        chain_total = sum(
            physical.get_linear(q) for q in embedding[v]
        )
        assert chain_total == pytest.approx(bias)


def test_embed_requires_positive_chain_strength(c4):
    model, embedding, _ = _embedded_pair(c4)
    with pytest.raises(ValueError):
        embed_ising(model, embedding, c4, chain_strength=-1.0)


def test_default_chain_strength_rule():
    """QMASM's default: twice the largest-in-magnitude J."""
    model = IsingModel(j={("a", "b"): -1.5, ("b", "c"): 0.25})
    assert default_chain_strength(model) == pytest.approx(3.0)


# ----------------------------------------------------------------------
# unembed_sampleset
# ----------------------------------------------------------------------
def test_unembed_majority_vote(c4):
    model = IsingModel(j={("x", "y"): -1.0})
    embedding = find_embedding(source_graph_of(model), c4, seed=5)
    physical = embed_ising(model, embedding, c4)
    qubits = list(physical.variables)
    # Build one physical sample with all +1.
    records = np.ones((1, len(qubits)), dtype=np.int8)
    physical_samples = SampleSet.from_array(qubits, records, physical)
    logical = unembed_sampleset(physical_samples, embedding, model)
    assert logical.first.assignment == {"x": 1, "y": 1}
    assert logical.info["chain_break_fraction"] == 0.0


def test_unembed_counts_broken_chains(c4):
    model = IsingModel(j={("x", "y"): -1.0})
    embedding = Embedding({"x": frozenset({0, 4}), "y": frozenset({5})})
    physical = embed_ising(model, embedding, c4)
    qubits = sorted(physical.variables)
    records = np.array([[1, -1, 1]], dtype=np.int8)  # chain {0,4} disagrees
    physical_samples = SampleSet.from_array(qubits, records, physical)
    logical = unembed_sampleset(physical_samples, embedding, model)
    assert logical.info["chain_break_fraction"] == pytest.approx(0.5)


def test_unembed_discard_method(c4):
    model = IsingModel(j={("x", "y"): -1.0})
    embedding = Embedding({"x": frozenset({0, 4}), "y": frozenset({5})})
    physical = embed_ising(model, embedding, c4)
    qubits = sorted(physical.variables)
    records = np.array([[1, -1, 1], [1, 1, 1]], dtype=np.int8)
    physical_samples = SampleSet.from_array(qubits, records, physical)
    kept = unembed_sampleset(physical_samples, embedding, model, method="discard")
    assert len(kept) == 1


def test_source_graph_of_skips_zero_couplings():
    model = IsingModel(j={("a", "b"): 0.0, ("b", "c"): 1.0})
    graph = source_graph_of(model)
    assert not graph.has_edge("a", "b")
    assert graph.has_edge("b", "c")
    assert set(graph.nodes()) == {"a", "b", "c"}


# ----------------------------------------------------------------------
# Property test: random graphs embed validly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_random_graphs_embed_validly(seed, c4):
    import random as _random

    rng = _random.Random(seed)
    n = rng.randint(3, 10)
    source = nx.gnp_random_graph(n, 0.4, seed=seed)
    embedding = find_embedding(source, c4, seed=seed)
    embedding.validate(source.edges(), c4)
    assert set(embedding.chains) == set(source.nodes())
