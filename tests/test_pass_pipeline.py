"""Tests for the staged pass-pipeline layer (pipeline, stats, caches).

Covers stage ordering, per-stage stats population on both the compile
and run pipelines, compilation-cache hit/miss/invalidation behavior,
embedding-cache reuse across runs of the same compiled program, the
trace-event callback, and the new CLI flags.
"""

import os

import pytest

from repro import CompileOptions, VerilogAnnealerCompiler
from repro.core.cache import (
    CompilationCache,
    EmbeddingCache,
    options_fingerprint,
)
from repro.core.cli import main
from repro.core.pipeline import (
    PassManager,
    PipelineContext,
    PipelineStats,
    Stage,
    StageRecord,
)
from repro.hardware.embedding import graph_fingerprint
from repro.qmasm.runner import QmasmRunner
from repro.solvers.machine import DWaveSimulator, MachineProperties
from tests.conftest import FIGURE_2A, LISTING_3_COUNTER

COMPILE_STAGES = [
    "elaborate",
    "optimize",
    "techmap",
    "unroll",
    "emit_edif",
    "edif_roundtrip",
    "translate_qmasm",
    "assemble",
]
RUN_STAGES = [
    "roof_duality",
    "find_embedding",
    "scale_to_hardware",
    "sample",
    "unembed",
    "postprocess",
    "corrupt_reads",
    "certify",
    "repair",
]

AND_PROGRAM = "!include <stdcell>\n!use_macro AND g\n"

#: A one-gate design whose logical graph embeds into the tiny (C4) test
#: machine quickly; FIGURE_2A's ~74-variable graph needs the full C16.
TINY_AND = """
module tiny (a, b, y);
    input a, b;
    output y;
    assign y = a & b;
endmodule
"""


@pytest.fixture()
def fresh_compiler():
    """A compiler with its own (empty) caches, on a tiny machine."""
    machine = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0), seed=0
    )
    return VerilogAnnealerCompiler(machine=machine, seed=0)


# ----------------------------------------------------------------------
# PassManager / PipelineStats mechanics
# ----------------------------------------------------------------------
class _Doubler(Stage):
    name = "double"

    def run(self, artifact, context):
        return artifact * 2

    def counters(self, artifact, context):
        return {"value": artifact}


class _SkipMe(Stage):
    name = "skipped_stage"

    def skip(self, artifact, context):
        return True

    def run(self, artifact, context):  # pragma: no cover
        raise AssertionError("skipped stage must not run")


def test_pass_manager_runs_stages_in_order():
    context = PipelineContext()
    result = PassManager([_Doubler(), _SkipMe(), _Doubler()]).run(3, context)
    assert result == 12
    assert context.stats.stage_names() == ["double", "skipped_stage", "double"]
    assert context.stats.executed_names() == ["double", "double"]
    assert context.stats.records[1].skipped


def test_pass_manager_records_counters_and_times():
    context = PipelineContext()
    PassManager([_Doubler()]).run(5, context)
    record = context.stats["double"]
    assert record.counters == {"value": 10}
    assert record.wall_time_s >= 0.0
    with pytest.raises(KeyError):
        context.stats["missing"]


def test_trace_callback_sees_begin_and_end_events():
    events = []
    context = PipelineContext(trace=events.append)
    PassManager([_Doubler(), _SkipMe()]).run(1, context)
    kinds = [(e["stage"], e["event"]) for e in events]
    assert kinds == [
        ("double", "begin"),
        ("double", "end"),
        ("skipped_stage", "begin"),
        ("skipped_stage", "end"),
    ]
    end = events[1]
    assert end["counters"] == {"value": 2}
    assert end["skipped"] is False
    assert events[3]["skipped"] is True


def test_stats_format_table_lists_every_stage():
    stats = PipelineStats()
    stats.record(StageRecord("alpha", 0.25, {"cells": 7}))
    stats.record(StageRecord("beta", 0.5, cached=True))
    table = stats.format_table(title="passes:")
    assert "passes:" in table
    assert "alpha" in table and "beta" in table
    assert "cells=7" in table
    assert "cached" in table
    assert "total" in table


# ----------------------------------------------------------------------
# Compile pipeline: ordering and stats population
# ----------------------------------------------------------------------
def test_compile_stats_cover_every_stage(fresh_compiler):
    program = fresh_compiler.compile(FIGURE_2A)
    assert program.stats.stage_names() == COMPILE_STAGES
    # Combinational design: everything but unroll actually runs.
    assert program.stats.executed_names() == [
        s for s in COMPILE_STAGES if s != "unroll"
    ]
    for record in program.stats:
        assert record.wall_time_s >= 0.0
    assert program.stats["elaborate"].counters["cells"] > 0
    assert program.stats["emit_edif"].counters["edif_lines"] > 0
    assert program.stats["translate_qmasm"].counters["qmasm_lines"] > 0
    assert program.stats["assemble"].counters["variables"] > 0
    assert program.stats["assemble"].counters["couplers"] > 0


def test_compile_stats_unroll_runs_for_sequential(fresh_compiler):
    program = fresh_compiler.compile(LISTING_3_COUNTER, unroll_steps=2)
    unroll = program.stats["unroll"]
    assert not unroll.skipped
    assert unroll.counters["steps"] == 2
    assert unroll.counters["cells"] > 0


def test_disabled_passes_are_recorded_as_skipped(fresh_compiler):
    program = fresh_compiler.compile(
        FIGURE_2A, run_optimizer=False, run_techmap=False
    )
    assert program.stats["optimize"].skipped
    assert program.stats["techmap"].skipped
    assert not program.stats["elaborate"].skipped


# ----------------------------------------------------------------------
# Compilation cache
# ----------------------------------------------------------------------
def test_repeated_compile_hits_cache(fresh_compiler):
    first = fresh_compiler.compile(FIGURE_2A)
    assert fresh_compiler.compile_cache.stats.hits == 0
    second = fresh_compiler.compile(FIGURE_2A)
    assert second is first
    assert fresh_compiler.compile_cache.stats.hits == 1


def test_cache_invalidated_by_option_change(fresh_compiler):
    first = fresh_compiler.compile(FIGURE_2A)
    other = fresh_compiler.compile(FIGURE_2A, run_techmap=False)
    assert other is not first
    assert fresh_compiler.compile_cache.stats.hits == 0
    # Equal options (object vs kwargs spelling) share one entry.
    again = fresh_compiler.compile(FIGURE_2A, CompileOptions(run_techmap=False))
    assert again is other


def test_cache_invalidated_by_source_change(fresh_compiler):
    first = fresh_compiler.compile(FIGURE_2A)
    changed = fresh_compiler.compile(FIGURE_2A + "\n// comment\n")
    assert changed is not first
    assert fresh_compiler.compile_cache.stats.hits == 0


def test_cache_disabled_recompiles():
    compiler = VerilogAnnealerCompiler(seed=0, cache=False)
    first = compiler.compile(FIGURE_2A)
    second = compiler.compile(FIGURE_2A)
    assert second is not first
    assert compiler.compile_cache.stats.hits == 0
    assert not compiler.runner.embedding_cache.enabled


def test_disk_cache_shared_between_compilers(tmp_path):
    cache_dir = str(tmp_path / "cache")
    producer = VerilogAnnealerCompiler(seed=0, cache_dir=cache_dir)
    producer.compile(FIGURE_2A)
    consumer = VerilogAnnealerCompiler(seed=0, cache_dir=cache_dir)
    program = consumer.compile(FIGURE_2A)
    assert consumer.compile_cache.stats.hits == 1
    assert program.statistics()["verilog_lines"] == 5


def test_options_fingerprint_is_field_sensitive():
    a = options_fingerprint(CompileOptions())
    b = options_fingerprint(CompileOptions(unroll_steps=4))
    c = options_fingerprint(CompileOptions())
    assert a != b
    assert a == c


def test_compilation_cache_key_depends_on_source_and_options():
    base = CompilationCache.key_for("module m; endmodule", CompileOptions())
    assert base == CompilationCache.key_for("module m; endmodule", CompileOptions())
    assert base != CompilationCache.key_for("module n; endmodule", CompileOptions())
    assert base != CompilationCache.key_for(
        "module m; endmodule", CompileOptions(unroll_steps=2)
    )


# ----------------------------------------------------------------------
# Crash-safe disk tier (atomic temp-file + rename writes)
# ----------------------------------------------------------------------
_KILL_MID_WRITE_CHILD = """
import os
import sys
import time

from repro.core.cache import ArtifactCache

cache = ArtifactCache(cache_dir=sys.argv[1])
real_fsync = os.fsync


def fsync_then_hang(fd):
    # The temp file's bytes are durable, but os.replace() has not run
    # yet: SIGKILL here is exactly "process died mid-store".
    real_fsync(fd)
    print("MID-WRITE", flush=True)
    time.sleep(60)


os.fsync = fsync_then_hang
cache.put(sys.argv[2], "NEW-" + "x" * 100000)
"""


def test_kill_mid_write_never_leaves_a_corrupt_entry(tmp_path):
    """SIGKILL between temp-write and rename must not corrupt the cache.

    A previous valid entry under the same key survives intact, the
    final path never shows a partial pickle, and a fresh cache reads
    cleanly with zero disk errors (the pre-atomic code wrote straight
    to ``<key>.pkl.tmp`` then renamed without fsync, and before PR 1
    to the final name directly -- both could leave torn entries).
    """
    import signal
    import subprocess
    import sys

    import repro.core.cache as cache_mod
    from repro.core.cache import ArtifactCache

    cache_dir = str(tmp_path / "cache")
    key = "entry"
    seeded = ArtifactCache(cache_dir=cache_dir)
    seeded.put(key, "OLD")

    src_dir = os.path.dirname(  # .../src, from src/repro/core/cache.py
        os.path.dirname(os.path.dirname(os.path.dirname(cache_mod.__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-c", _KILL_MID_WRITE_CHILD, cache_dir, key],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        line = child.stdout.readline()
        assert b"MID-WRITE" in line, "child never reached the write window"
        child.kill()  # SIGKILL: no cleanup handlers run
    finally:
        child.wait()
        child.stdout.close()
    assert child.returncode == -signal.SIGKILL

    # The interrupted overwrite left its temp file (if anything) but
    # the final name still holds the old, fully-written entry.
    leftovers = sorted(os.listdir(cache_dir))
    assert f"{key}.pkl" in leftovers
    assert all(
        name == f"{key}.pkl" or ".tmp" in name for name in leftovers
    )

    fresh = ArtifactCache(cache_dir=cache_dir)
    assert fresh.get(key) == "OLD"
    assert fresh.stats.disk_errors == 0


def test_failed_disk_write_cleans_up_temp_file(tmp_path, monkeypatch):
    """A failed rename degrades to memory-only and removes its temp."""
    from repro.core.cache import ArtifactCache

    cache_dir = str(tmp_path / "cache")
    cache = ArtifactCache(cache_dir=cache_dir)

    def broken_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr("repro.core.cache.os.replace", broken_replace)
    cache.put("key", "value")
    assert cache.stats.disk_errors == 1
    assert os.listdir(cache_dir) == []  # no final entry, no stray temp
    assert cache.get("key") == "value"  # memory tier still serves it

    monkeypatch.undo()
    fresh = ArtifactCache(cache_dir=cache_dir)
    assert fresh.get("key") is None  # disk tier was a clean miss


# ----------------------------------------------------------------------
# Run pipeline: stats and the embedding cache
# ----------------------------------------------------------------------
def test_run_stats_cover_every_stage(fresh_compiler):
    program = fresh_compiler.compile(FIGURE_2A)
    result = fresh_compiler.run(program, solver="exact")
    assert result.stats.stage_names() == RUN_STAGES
    # Classical solver: only 'sample' runs, embedding stages skip.
    assert result.stats.executed_names() == ["sample"]
    assert result.stats["sample"].counters["samples"] == len(result.sampleset)


def test_dwave_run_stats_populate_embedding_stages(fresh_compiler):
    result = fresh_compiler.run(TINY_AND, solver="dwave", num_reads=20)
    for name in ("find_embedding", "scale_to_hardware", "sample", "unembed"):
        assert not result.stats[name].skipped, name
    embed = result.stats["find_embedding"]
    assert embed.counters["physical_qubits"] >= embed.counters["variables"]
    scale = result.stats["scale_to_hardware"]
    assert scale.counters["physical_variables"] >= result.num_logical_variables()
    assert result.info["wall_time_s"] > 0.0


def test_embedding_cache_reused_across_runs(fresh_compiler):
    program = fresh_compiler.compile(TINY_AND)
    first = fresh_compiler.run(program, solver="dwave", num_reads=10)
    assert first.info["embedding_cache"] == "miss"
    assert not first.stats["find_embedding"].cached
    second = fresh_compiler.run(program, solver="dwave", num_reads=10)
    assert second.info["embedding_cache"] == "hit"
    assert second.stats["find_embedding"].cached
    assert second.embedding.chains == first.embedding.chains


def test_embedding_cache_reused_across_different_pins(fresh_compiler):
    """Pins only bias existing variables -- the interaction graph, and
    therefore the embedding, is identical."""
    program = fresh_compiler.compile(TINY_AND)
    fresh_compiler.run(
        program, pins=["a := 1", "b := 0"], solver="dwave", num_reads=10
    )
    rerun = fresh_compiler.run(
        program, pins=["a := 0", "b := 1"], solver="dwave", num_reads=10
    )
    assert rerun.info["embedding_cache"] == "hit"


def test_roof_duality_changes_embedding_cache_key(fresh_compiler):
    """Roof duality elides variables, producing a different logical
    graph -- it must never reuse the full graph's embedding."""
    program = fresh_compiler.compile(TINY_AND)
    fresh_compiler.run(
        program, pins=["a := 1", "b := 1"], solver="dwave", num_reads=10
    )
    elided = fresh_compiler.run(
        program,
        pins=["a := 1", "b := 1"],
        solver="dwave",
        num_reads=10,
        use_roof_duality=True,
    )
    assert elided.info["roof_duality_fixed"] > 0
    # Either the reduced graph embeds afresh, or everything was elided
    # and no embedding was needed at all -- but never a stale hit.
    assert elided.info.get("embedding_cache") != "hit"


def test_explicit_embedding_seed_misses_cache(fresh_compiler):
    """Section 6.1's variance sweep re-embeds per seed; an explicit
    seed must bypass entries recorded under other seeds."""
    program = fresh_compiler.compile(TINY_AND)
    fresh_compiler.run(program, solver="dwave", num_reads=10)
    reseeded = fresh_compiler.run(
        program, solver="dwave", num_reads=10, embedding_seed=123
    )
    assert reseeded.info["embedding_cache"] == "miss"


def test_runner_embedding_cache_disabled():
    machine = DWaveSimulator(
        properties=MachineProperties(cells=4, dropout_fraction=0.0), seed=0
    )
    runner = QmasmRunner(
        machine=machine, seed=0, embedding_cache=EmbeddingCache(enabled=False)
    )
    first = runner.run(AND_PROGRAM, solver="dwave", num_reads=10)
    second = runner.run(AND_PROGRAM, solver="dwave", num_reads=10)
    assert first.info["embedding_cache"] == "off"
    assert second.info["embedding_cache"] == "off"
    assert runner.embedding_cache.stats.hits == 0


def test_graph_fingerprint_tracks_structure():
    import networkx as nx

    a = nx.Graph([("x", "y"), ("y", "z")])
    b = nx.Graph([("y", "z"), ("x", "y")])  # same structure, other order
    c = nx.Graph([("x", "y")])
    assert graph_fingerprint(a) == graph_fingerprint(b)
    assert graph_fingerprint(a) != graph_fingerprint(c)


# ----------------------------------------------------------------------
# run() with raw source and compile options (satellite fix)
# ----------------------------------------------------------------------
def test_run_raw_source_accepts_compile_options(fresh_compiler):
    options = CompileOptions(unroll_steps=2, initial_state=0)
    result = fresh_compiler.run(
        LISTING_3_COUNTER,
        solver="sa",
        num_reads=40,
        compile_options=options,
    )
    assert result.solutions


def test_run_raw_sequential_source_without_options_still_raises(fresh_compiler):
    with pytest.raises(ValueError):
        fresh_compiler.run(LISTING_3_COUNTER, solver="sa")


def test_run_rejects_compile_options_for_compiled_program(fresh_compiler):
    program = fresh_compiler.compile(FIGURE_2A)
    with pytest.raises(TypeError):
        fresh_compiler.run(
            program, solver="exact", compile_options=CompileOptions()
        )


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
@pytest.fixture()
def verilog_file(tmp_path):
    path = tmp_path / "circuit.v"
    path.write_text(FIGURE_2A)
    return str(path)


def test_cli_time_passes(verilog_file, capsys):
    assert main([verilog_file, "--time-passes"]) == 0
    out = capsys.readouterr().out
    for stage in COMPILE_STAGES:
        assert stage in out
    assert "total" in out


def test_cli_time_passes_with_run(verilog_file, capsys):
    code = main(
        [
            verilog_file, "--run", "--solver", "exact", "--time-passes",
            "--pin", "s := 1", "--pin", "a := 1", "--pin", "b := 1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "compile passes:" in out
    assert "run passes:" in out
    assert "sample" in out


def test_cli_stats_flag(verilog_file, capsys):
    assert main([verilog_file, "--stats"]) == 0
    out = capsys.readouterr().out
    assert "logical variables" in out
    # --stats suppresses the default qmasm dump.
    assert "!use_macro" not in out


def test_cli_no_cache(verilog_file, capsys):
    assert main([verilog_file, "--no-cache"]) == 0
    assert "!use_macro" in capsys.readouterr().out
