"""Durability: the write-ahead job journal and startup recovery.

The contract under test is the service's crash-safety story:

* **Journal** -- every state transition is an fsynced JSONL record;
  replay folds records into per-job ledgers, tolerates (and counts) a
  torn tail line, and compaction atomically rewrites the file to the
  retained jobs.
* **Recovery** -- a restarted service keeps answering ``GET
  /jobs/<id>`` for jobs that finished before the crash, re-enqueues
  orphans through the deterministic pipeline (seeds journaled at
  accept time make the replayed result bit-identical), and quarantines
  poison jobs that crashed the worker twice instead of crash-looping.
* **Idempotency** -- a retried submission carrying the same
  ``Idempotency-Key`` dedups to the original job, across restarts;
  keys whose job never ran (queue-full fail-outs) are *not* rebound.
* **Kill matrix** -- a real server process SIGKILLed (``os._exit``)
  mid-pipeline at each stage, restarted against the same
  ``--state-dir``, completes every acknowledged job bit-identically
  to an undisturbed run.
* **Graceful SIGTERM** -- a container stop drains and exits 0 through
  the same path as ^C.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import VerilogAnnealerCompiler
from repro.service.app import (
    CRASH_STAGE_ENV,
    AnnealingService,
    ServiceConfig,
)
from repro.service.jobs import JobRequest, JobState
from repro.service.journal import JobJournal
from tests.conftest import LISTING_6_MULT

MULT_PAYLOAD = {
    "source": LISTING_6_MULT,
    "pins": ["C[7:0] := 10001111"],
    "solver": "sa",
    "num_reads": 100,
    "seed": 4242,
    "return_samples": True,
}

TINY_PAYLOAD = {
    "source": "A -1\nA B -5\n",
    "language": "qmasm",
    "solver": "exact",
    "seed": 11,
}


def _service(state_dir, **overrides):
    cfg = dict(port=0, workers=1, rate_limit_per_s=None, state_dir=str(state_dir))
    cfg.update(overrides)
    return AnnealingService(ServiceConfig(**cfg))


def _await_job(job, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if job.is_terminal():
            return job.snapshot()
        time.sleep(0.02)
    raise AssertionError(f"job {job.id} still {job.state} after {timeout_s}s")


def _accept_record(payload, job_id, tenant="tests", key=None):
    request = JobRequest.from_payload(dict(payload))
    return job_id, tenant, dataclasses.asdict(request), key


# ----------------------------------------------------------------------
# Journal unit tests.
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.accept(
            "job-000001-aaaaaaaa",
            "alice",
            {"source": "x"},
            123.0,
            idempotency_key="k1",
            fingerprint="fp1",
        )
        journal.running("job-000001-aaaaaaaa", 1)
        journal.terminal(
            "job-000001-aaaaaaaa", {"state": "done", "result": {"ok": 1}}
        )
        journal.close()

        replay = JobJournal.replay_path(journal.path)
        assert replay.records == 3 and replay.torn_records == 0
        ledger = replay.ledgers["job-000001-aaaaaaaa"]
        assert ledger.accept["tenant"] == "alice"
        assert ledger.accept["key"] == "k1"
        assert ledger.accept["fingerprint"] == "fp1"
        assert ledger.attempts == 1
        assert ledger.terminal["state"] == "done"
        assert ledger.terminal["result"] == {"ok": 1}

    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.accept("job-000001-aaaaaaaa", "t", {"source": "x"}, 1.0)
        journal.accept("job-000002-bbbbbbbb", "t", {"source": "y"}, 2.0)
        journal.close()
        # A crash mid-append leaves a truncated final line.
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "terminal", "job_id": "job-0000')

        replay = JobJournal.replay_path(journal.path)
        assert replay.records == 2
        assert replay.torn_records == 1
        assert set(replay.ledgers) == {
            "job-000001-aaaaaaaa",
            "job-000002-bbbbbbbb",
        }

    def test_missing_journal_is_empty(self, tmp_path):
        replay = JobJournal.replay_path(str(tmp_path / "journal.jsonl"))
        assert replay.records == 0 and not replay.ledgers

    def test_compact_keeps_only_given_entries(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.accept("job-000001-aaaaaaaa", "t", {"source": "x"}, 1.0)
        journal.running("job-000001-aaaaaaaa", 1)
        journal.terminal("job-000001-aaaaaaaa", {"state": "done"})
        journal.accept("job-000002-bbbbbbbb", "t", {"source": "y"}, 2.0)

        replay = journal.replay()
        keep = replay.ledgers["job-000001-aaaaaaaa"]
        journal.compact([(keep.accept, keep.terminal)])
        assert journal.compactions == 1

        after = journal.replay()
        assert set(after.ledgers) == {"job-000001-aaaaaaaa"}
        # Running records are dropped by compaction (a retained
        # terminal job no longer needs its attempt history).
        assert after.ledgers["job-000001-aaaaaaaa"].attempts == 0

        # The journal still appends after compaction.
        journal.accept("job-000003-cccccccc", "t", {"source": "z"}, 3.0)
        journal.close()
        final = JobJournal.replay_path(journal.path)
        assert set(final.ledgers) == {
            "job-000001-aaaaaaaa",
            "job-000003-cccccccc",
        }


# ----------------------------------------------------------------------
# In-process recovery: terminal replay, orphan requeue, quarantine.
# ----------------------------------------------------------------------
class TestRecovery:
    def test_terminal_results_survive_restart(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(dict(MULT_PAYLOAD))
            before = _await_job(job)
            assert before["state"] == "done"
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)

        restarted = _service(tmp_path)
        restarted.start()
        try:
            report = restarted.recovery_report
            assert report is not None
            assert report.recovered_jobs == 1 and report.terminal_jobs == 1
            assert report.requeued_jobs == 0 and report.quarantined_jobs == 0
            recovered = restarted.store.get(job.id)
            assert recovered is not None
            after = recovered.snapshot()
            assert after["state"] == "done"
            assert after["recovered"] is True
            np.testing.assert_array_equal(
                np.asarray(after["result"]["samples"]["records"]),
                np.asarray(before["result"]["samples"]["records"]),
            )
            assert after["result"]["solutions"] == before["result"]["solutions"]
        finally:
            assert restarted.shutdown(drain=True, timeout_s=60.0)

    def test_orphan_requeued_and_bit_identical(self, tmp_path):
        # A journal holding an acknowledged-but-never-finished job: the
        # accept record exists (and carries the seed), no terminal.
        job_id, tenant, fields, _ = _accept_record(
            MULT_PAYLOAD, "job-000007-0badf00d"
        )
        journal = JobJournal(str(tmp_path))
        journal.accept(job_id, tenant, fields, 100.0)
        journal.close()

        service = _service(tmp_path)
        service.start()
        try:
            report = service.recovery_report
            assert report.requeued_jobs == 1 and report.terminal_jobs == 0
            job = service.store.get(job_id)
            assert job is not None
            replayed = _await_job(job)
            assert replayed["state"] == "done"
            assert replayed["recovered"] is True

            # Control: the same request through an undisturbed service.
            control_service = AnnealingService(
                ServiceConfig(port=0, workers=1, rate_limit_per_s=None)
            )
            control_service.start()
            try:
                control_job, _ = control_service.submit(dict(MULT_PAYLOAD))
                control = _await_job(control_job)
            finally:
                assert control_service.shutdown(drain=True, timeout_s=60.0)
            np.testing.assert_array_equal(
                np.asarray(replayed["result"]["samples"]["records"]),
                np.asarray(control["result"]["samples"]["records"]),
            )
            np.testing.assert_array_equal(
                np.asarray(replayed["result"]["samples"]["energies"]),
                np.asarray(control["result"]["samples"]["energies"]),
            )
            assert (
                replayed["result"]["solutions"] == control["result"]["solutions"]
            )
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)

    def test_unseeded_submission_journals_a_materialized_seed(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            payload = dict(MULT_PAYLOAD)
            payload.pop("seed")
            job, _ = service.submit(payload)
            assert job.request.seed is not None
            _await_job(job)
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)
        replay = JobJournal.replay_path(
            os.path.join(str(tmp_path), "journal.jsonl")
        )
        accept = replay.ledgers[job.id].accept
        assert accept["request"]["seed"] == job.request.seed

    def test_poison_job_is_quarantined(self, tmp_path):
        job_id, tenant, fields, _ = _accept_record(
            MULT_PAYLOAD, "job-000003-deadbeef"
        )
        journal = JobJournal(str(tmp_path))
        journal.accept(job_id, tenant, fields, 100.0)
        journal.running(job_id, 1)
        journal.running(job_id, 2)  # crashed the worker twice
        journal.close()

        service = _service(tmp_path)
        service.start()
        try:
            report = service.recovery_report
            assert report.quarantined_jobs == 1
            assert report.quarantined_ids == [job_id]
            assert report.requeued_jobs == 0
            job = service.store.get(job_id)
            assert job is not None and job.state == JobState.ERROR
            assert job.error["error"] == "quarantined"
            assert job.error["attempts"] == 2
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)

        # The quarantine verdict itself was journaled: the *next*
        # restart sees a terminal job, not a poison one to re-judge.
        replay = JobJournal.replay_path(
            os.path.join(str(tmp_path), "journal.jsonl")
        )
        ledger = replay.ledgers[job_id]
        assert ledger.terminal is not None
        assert ledger.terminal["error"]["error"] == "quarantined"

    def test_one_crash_is_requeued_not_quarantined(self, tmp_path):
        job_id, tenant, fields, _ = _accept_record(
            TINY_PAYLOAD, "job-000004-00c0ffee"
        )
        journal = JobJournal(str(tmp_path))
        journal.accept(job_id, tenant, fields, 100.0)
        journal.running(job_id, 1)  # one crash: unlucky, not poison
        journal.close()

        service = _service(tmp_path)
        service.start()
        try:
            assert service.recovery_report.requeued_jobs == 1
            assert service.recovery_report.quarantined_jobs == 0
            job = service.store.get(job_id)
            snapshot = _await_job(job)
            assert snapshot["state"] == "done"
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)

    def test_recovery_compacts_the_journal(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            job, _ = service.submit(dict(TINY_PAYLOAD))
            _await_job(job)
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)
        # accept + running + terminal = 3 lines before compaction.
        with open(os.path.join(str(tmp_path), "journal.jsonl")) as handle:
            assert len(handle.readlines()) == 3

        restarted = _service(tmp_path)
        restarted.start()
        try:
            assert restarted.journal.compactions == 1
        finally:
            assert restarted.shutdown(drain=True, timeout_s=60.0)
        # Compacted to the accept/terminal pair; the running record
        # (and any duplicate history) is gone.
        with open(os.path.join(str(tmp_path), "journal.jsonl")) as handle:
            lines = [json.loads(l) for l in handle if l.strip()]
        assert [r["type"] for r in lines] == ["accept", "terminal"]

    def test_health_reports_journal_and_recovery(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            body = service.health()
            assert body["journal"]["enabled"] is True
            assert body["recovery"]["recovered_jobs"] == 0
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)


# ----------------------------------------------------------------------
# Idempotency across restarts.
# ----------------------------------------------------------------------
class TestIdempotencyRecovery:
    def test_key_survives_restart_and_dedups(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            job, deduplicated = service.submit(
                dict(TINY_PAYLOAD), tenant="alice", idempotency_key="k-restart"
            )
            assert deduplicated is False
            _await_job(job)
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)

        restarted = _service(tmp_path)
        restarted.start()
        try:
            again, deduplicated = restarted.submit(
                dict(TINY_PAYLOAD), tenant="alice", idempotency_key="k-restart"
            )
            assert deduplicated is True
            assert again.id == job.id
        finally:
            assert restarted.shutdown(drain=True, timeout_s=60.0)

    def test_queue_full_key_is_not_rebound(self, tmp_path):
        # A journaled job that never ran (queue-full fail-out): its key
        # must not dedup a later retry into the failed husk.
        job_id, tenant, fields, _ = _accept_record(
            TINY_PAYLOAD, "job-000005-0defaced", key="k-full"
        )
        journal = JobJournal(str(tmp_path))
        journal.accept(job_id, tenant, fields, 100.0, idempotency_key="k-full")
        journal.terminal(
            job_id,
            {
                "state": "error",
                "error": {"error": "queue_full", "status": 503},
                "result": None,
            },
        )
        journal.close()

        service = _service(tmp_path)
        service.start()
        try:
            job, deduplicated = service.submit(
                dict(TINY_PAYLOAD), tenant=tenant, idempotency_key="k-full"
            )
            assert deduplicated is False
            assert job.id != job_id
            snapshot = _await_job(job)
            assert snapshot["state"] == "done"
        finally:
            assert service.shutdown(drain=True, timeout_s=60.0)


# ----------------------------------------------------------------------
# The kill matrix: a real server process killed at each pipeline stage.
# ----------------------------------------------------------------------
_LISTEN_RE = re.compile(r"listening on (http://\S+)")


def _spawn_server(state_dir, extra_env=None, extra_args=()):
    env = os.environ.copy()
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--state-dir",
            str(state_dir),
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before listening (rc={proc.poll()}):\n"
                + "".join(lines)
            )
        lines.append(line)
        match = _LISTEN_RE.search(line)
        if match:
            return proc, match.group(1)


def _http(url, payload=None, headers=None, timeout_s=30.0):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    all_headers = {"Content-Type": "application/json"}
    if headers:
        all_headers.update(headers)
    request = urllib.request.Request(
        url, data=data, headers=all_headers, method="POST" if data else "GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _poll_done(base, job_id, timeout_s=90.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, snapshot = _http(f"{base}/jobs/{job_id}")
        assert status == 200, f"poll failed: {status} {snapshot}"
        if snapshot.get("state") in ("done", "error", "timeout"):
            return snapshot
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal after {timeout_s}s")


@pytest.mark.slow
class TestKillMatrix:
    """SIGKILL the worker at each stage; the restart must not notice."""

    # One compile-pipeline stage, one (skipped-for-sa but still traced)
    # embedding stage, one sampling stage: the acknowledged job dies at
    # three different depths and must replay bit-identically from each.
    STAGES = ["elaborate", "find_embedding", "sample"]

    @pytest.fixture(scope="class")
    def control_result(self):
        compiler = VerilogAnnealerCompiler(seed=MULT_PAYLOAD["seed"])
        program = compiler.compile(LISTING_6_MULT)
        result = compiler.run(
            program,
            pins=list(MULT_PAYLOAD["pins"]),
            solver="sa",
            num_reads=MULT_PAYLOAD["num_reads"],
        )
        return result.result_payload(include_samples=True)

    @pytest.mark.parametrize("stage", STAGES)
    def test_killed_at_stage_replays_bit_identically(
        self, stage, tmp_path, control_result
    ):
        state_dir = tmp_path / f"state-{stage}"
        proc, base = _spawn_server(
            state_dir, extra_env={CRASH_STAGE_ENV: stage}
        )
        key = f"kill-{stage}"
        try:
            # The 202 may race the crash; the journaled accept is the
            # acknowledgement that matters, and the idempotency key
            # recovers the id either way (the lost-202 retry path).
            try:
                _http(
                    f"{base}/jobs",
                    dict(MULT_PAYLOAD),
                    headers={"Idempotency-Key": key},
                )
            except OSError:
                pass
            rc = proc.wait(timeout=90)
            assert rc == 137, f"server should have died at {stage}, rc={rc}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # Restart (no crash env) against the same state dir.
        proc, base = _spawn_server(state_dir)
        try:
            status, body = _http(
                f"{base}/jobs",
                dict(MULT_PAYLOAD),
                headers={"Idempotency-Key": key},
            )
            assert status == 202
            assert body.get("deduplicated") is True, (
                "restart should dedup the retried key to the journaled job"
            )
            snapshot = _poll_done(base, body["id"])
            assert snapshot["state"] == "done"
            assert snapshot.get("recovered") is True
            np.testing.assert_array_equal(
                np.asarray(snapshot["result"]["samples"]["records"]),
                np.asarray(control_result["samples"]["records"]),
            )
            np.testing.assert_array_equal(
                np.asarray(snapshot["result"]["samples"]["energies"]),
                np.asarray(control_result["samples"]["energies"]),
            )
            assert (
                snapshot["result"]["solutions"] == control_result["solutions"]
            )

            status, health = _http(f"{base}/healthz")
            assert health["recovery"]["requeued_jobs"] == 1
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0


@pytest.mark.slow
def test_sigterm_drains_and_exits_clean(tmp_path):
    proc, base = _spawn_server(tmp_path / "state")
    status, body = _http(f"{base}/jobs", dict(TINY_PAYLOAD))
    assert status == 202
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    output = proc.stdout.read()
    assert rc == 0, f"SIGTERM exit was not clean (rc={rc}):\n{output}"
    assert "shutting down on SIGTERM" in output
    assert "draining" in output
