"""Unit tests for the tracing + metrics subsystem (repro.core.trace).

Covers span nesting and attribute capture, counter/gauge/histogram
math (including parent forwarding), the JSON and Chrome trace_event
export schemas, and the disabled fast path's zero-span-allocation
guarantee.
"""

import json

import pytest

from repro.core import trace
from repro.core.trace import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Tracer,
)


class FakeClock:
    """A manually advanced monotonic clock for deterministic timing."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("compile.elaborate"):
                pass
            with tracer.span("compile.techmap"):
                with tracer.span("compile.techmap.inner"):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "compile"
        assert [c.name for c in root.children] == [
            "compile.elaborate",
            "compile.techmap",
        ]
        assert root.children[1].children[0].name == "compile.techmap.inner"
        assert tracer.span_names() == [
            "compile",
            "compile.elaborate",
            "compile.techmap",
            "compile.techmap.inner",
        ]

    def test_sibling_spans_are_both_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_wall_time_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            clock.advance(1.5)
        assert tracer.roots[0].wall_time_s == pytest.approx(1.5)

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("stage", phase="map") as span:
            span.set_attribute("cells", 13)
            span.set_attributes(cached=False, skipped=False)
            tracer.event("milestone", step=2)
        assert span.attributes["phase"] == "map"
        assert span.attributes["cells"] == 13
        assert span.attributes["cached"] is False
        assert span.events[0]["name"] == "milestone"
        assert span.events[0]["attributes"] == {"step": 2}

    def test_record_attaches_completed_span_under_current(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run.sample"):
            tracer.record("solver.sa.sample", duration_s=0.25, kernel="dense")
        child = tracer.roots[0].children[0]
        assert child.name == "solver.sa.sample"
        assert child.wall_time_s == pytest.approx(0.25)
        assert child.attributes["kernel"] == "dense"
        # record() never enters the stack, so the parent stayed current.
        assert tracer.roots[0].name == "run.sample"

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        assert tracer.roots[0].attributes["error"] == "ValueError"

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.find("b") is tracer.roots[0].children[0]
        assert tracer.find("nope") is None
        assert [s.name for s in tracer.walk()] == ["a", "b"]


# ----------------------------------------------------------------------
# Export schemas
# ----------------------------------------------------------------------
class TestExport:
    def _traced(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("compile", cached=False):
            clock.advance(0.5)
            with tracer.span("compile.techmap") as inner:
                inner.set_attribute("cells", 7)
                inner.set_attribute("wall_time_s", 0.123)
                clock.advance(0.25)
        return tracer

    def test_to_dict_round_trips_through_json(self):
        tracer = self._traced()
        data = json.loads(tracer.to_json())
        (root,) = data["spans"]
        assert root["name"] == "compile"
        assert root["wall_time_s"] == pytest.approx(0.75)
        assert root["children"][0]["attributes"]["cells"] == 7

    def test_content_strips_all_timing(self):
        tracer = self._traced()
        content = tracer.content()
        (root,) = content["spans"]
        assert "start_s" not in root and "wall_time_s" not in root
        child = root["children"][0]
        # Timing-derived attributes are stripped; real content stays.
        assert "wall_time_s" not in child["attributes"]
        assert child["attributes"]["cells"] == 7

    def test_chrome_trace_schema(self):
        tracer = self._traced()
        chrome = tracer.to_chrome_trace()
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        assert [e["name"] for e in events] == ["compile", "compile.techmap"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 0 and event["tid"] == 0
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
        # ts is microseconds relative to the tracer epoch.
        assert events[0]["ts"] == pytest.approx(0.0)
        assert events[1]["ts"] == pytest.approx(0.5e6)
        assert events[1]["dur"] == pytest.approx(0.25e6)
        # The category is the span-name prefix, for per-layer filtering.
        assert events[0]["cat"] == "compile"

    def test_chrome_trace_instant_events(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run"):
            clock.advance(0.1)
            tracer.event("runner.retry", attempt=1)
        chrome = tracer.to_chrome_trace()
        instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "runner.retry"
        assert instants[0]["ts"] == pytest.approx(0.1e6)
        assert instants[0]["args"] == {"attempt": 1}

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        data = json.loads(path.read_text())
        assert {e["name"] for e in data["traceEvents"]} == {
            "compile",
            "compile.techmap",
        }


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_math(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.get() == 5

    def test_gauge_last_value_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.get() == 1.5

    def test_histogram_aggregates(self):
        h = Histogram()
        h.observe(2.0)
        h.observe_many([4.0, 6.0])
        assert h.count == 3
        assert h.total == pytest.approx(12.0)
        assert h.min == 2.0 and h.max == 6.0
        assert h.mean() == pytest.approx(4.0)
        assert h.percentile(0) == 2.0
        assert h.percentile(100) == 6.0
        summary = h.summary()
        assert summary["count"] == 3 and summary["mean"] == pytest.approx(4.0)

    def test_histogram_bounds_retained_samples(self):
        h = Histogram(max_samples=10)
        h.observe_many(range(100))
        assert h.count == 100
        assert len(h.samples) == 10
        assert h.max == 99.0  # streaming aggregates still exact

    def test_empty_histogram_summary(self):
        assert Histogram().summary() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_registry_creates_on_demand_and_remembers(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.value("a") == 2
        assert registry.value("never") == 0
        assert "a" in registry and "never" not in registry

    def test_parent_forwarding_single_increment_two_scopes(self):
        process = MetricsRegistry()
        run = MetricsRegistry(parent=process)
        run.counter("runner.sample_retries").inc(3)
        run.gauge("runner.fallback_depth").set(2)
        run.histogram("solver.energy").observe_many([-1.0, -3.0])
        # One recording, visible at both scopes.
        assert run.value("runner.sample_retries") == 3
        assert process.value("runner.sample_retries") == 3
        assert process.value("runner.fallback_depth") == 2
        assert process.histogram("solver.energy").count == 2
        # Run-scoped-only metrics don't leak *from* the parent.
        process.counter("other").inc()
        assert "other" not in run

    def test_as_dict_schema(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        data = registry.as_dict()
        assert data["counters"] == {"c": 1}
        assert data["gauges"] == {"g": 7.0}
        assert data["histograms"]["h"]["count"] == 1

    def test_render_summary_derives_hit_ratio(self):
        registry = MetricsRegistry()
        registry.counter("cache.compile.hits").inc(3)
        registry.counter("cache.compile.misses").inc(1)
        text = registry.render_summary()
        assert "cache.compile.hit_ratio" in text
        assert "0.750" in text
        assert registry.hit_ratio("cache.compile") == pytest.approx(0.75)

    def test_render_summary_empty(self):
        assert "no metrics" in MetricsRegistry().render_summary()

    def test_hit_ratio_well_defined_at_zero_lookups(self):
        """Regression: a fresh server pre-registers hits/misses at zero
        and renders /metrics before any request -- the derived ratio
        must be an explicit n/a, never 0/0, never NaN."""
        registry = MetricsRegistry()
        registry.counter("cache.compile.hits")
        registry.counter("cache.compile.misses")
        assert registry.hit_ratio("cache.compile") == 0.0
        text = registry.render_summary()
        assert "cache.compile.hit_ratio" in text
        assert "n/a (0 lookups)" in text
        assert "nan" not in text.lower()

    def test_hit_ratio_emitted_when_only_one_twin_exists(self):
        registry = MetricsRegistry()
        registry.counter("cache.embedding.misses").inc(4)
        text = registry.render_summary()
        # All-miss traffic without a .hits twin still derives the line
        # (exactly once).
        assert text.count("cache.embedding.hit_ratio") == 1
        assert "0.000" in text
        assert registry.hit_ratio("cache.embedding") == 0.0

    def test_hit_ratio_clamps_non_finite_counters(self):
        registry = MetricsRegistry()
        registry.counter("cache.c.hits").inc(float("inf"))
        registry.counter("cache.c.misses").inc(1)
        assert registry.hit_ratio("cache.c") == 0.0
        assert "nan" not in registry.render_summary().lower()


# ----------------------------------------------------------------------
# Ambient installation + the disabled fast path
# ----------------------------------------------------------------------
class TestAmbient:
    def test_disabled_by_default(self):
        assert not trace.enabled()
        assert isinstance(trace.tracer(), NullTracer)
        assert isinstance(trace.metrics(), NullMetrics)

    def test_capture_installs_and_restores(self):
        assert not trace.enabled()
        with trace.capture() as (tracer, metrics):
            assert trace.enabled()
            with trace.span("outer"):
                trace.metrics().counter("hits").inc()
            assert tracer.find("outer") is not None
            assert metrics.value("hits") == 1
        assert not trace.enabled()

    def test_install_uninstall(self):
        tracer, metrics = trace.install()
        try:
            assert trace.tracer() is tracer
            assert trace.metrics() is metrics
            assert trace.enabled()
        finally:
            trace.uninstall()
        assert not trace.enabled()

    def test_disabled_path_allocates_no_spans(self):
        """The no-op fast path creates zero Span records."""
        assert not trace.enabled()
        before = trace.span_allocations()
        for _ in range(100):
            with trace.span("hot.loop", attr=1) as span:
                span.set_attribute("k", "v")
                span.add_event("tick")
            trace.record("solver.sa.sample", duration_s=0.1)
            trace.event("instant")
            trace.metrics().counter("c").inc()
            trace.metrics().histogram("h").observe(1.0)
        assert trace.span_allocations() == before

    def test_null_span_is_shared_and_inert(self):
        span = trace.span("anything")
        assert span is trace.span("something.else")
        assert not span.is_recording
        assert span.content() == {}
        assert span.span_names() == []

    def test_null_metrics_store_nothing(self):
        registry = trace.metrics()
        registry.counter("x").inc(100)
        registry.gauge("y").set(5)
        registry.histogram("z").observe(1)
        assert registry.value("x") == 0
        assert registry.as_dict()["counters"] == {}

    def test_run_scoped_registry_works_while_ambient_disabled(self):
        """Parenting to NullMetrics records locally, forwards nowhere."""
        run = MetricsRegistry(parent=trace.metrics())
        run.counter("runner.sample_attempts").inc()
        assert run.value("runner.sample_attempts") == 1

    def test_observe_sample_is_noop_when_disabled(self):
        class FakeSampleSet:
            info = {"sweeps_per_s": 10.0}
            energies = [-1.0]

            def __len__(self):
                return 1

        before = trace.span_allocations()
        trace.observe_sample("sa", FakeSampleSet(), 0.5, kernel="dense")
        assert trace.span_allocations() == before

    def test_observe_sample_records_span_and_metrics(self):
        class FakeSampleSet:
            info = {"sweeps_per_s": 10.0}
            energies = [-1.0, -2.0]

            def __len__(self):
                return 2

        with trace.capture() as (tracer, metrics):
            trace.observe_sample("sa", FakeSampleSet(), 0.5, kernel="dense")
        span = tracer.find("solver.sa.sample")
        assert span is not None
        assert span.attributes["kernel"] == "dense"
        assert span.attributes["samples"] == 2
        assert metrics.value("solver.sa.samples") == 1
        assert metrics.value("solver.kernel.dense") == 1
        assert metrics.histogram("solver.energy").count == 2
        assert metrics.histogram("solver.sweeps_per_s").count == 1
