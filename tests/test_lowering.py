"""Differential tests for the word-level circuit builder.

Every arithmetic/comparison/shift circuit is checked exhaustively (or on
dense samples) against Python integer semantics via the netlist
simulator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.lowering import CircuitBuilder
from repro.synth.netlist import Netlist, NetlistError, PortDirection
from repro.synth.simulate import NetlistSimulator


def _build(width_map, construct):
    """Create a netlist with the given input ports, let ``construct``
    wire outputs, and return a simulator."""
    nl = Netlist("dut")
    builder = CircuitBuilder(nl)
    inputs = {}
    for name, width in width_map.items():
        bits = nl.new_nets(width)
        nl.add_port(name, PortDirection.INPUT, bits)
        inputs[name] = bits
    outputs = construct(builder, inputs)
    for name, bits in outputs.items():
        nl.add_port(name, PortDirection.OUTPUT, bits)
    return NetlistSimulator(nl), nl


# ----------------------------------------------------------------------
# Adders / subtractors
# ----------------------------------------------------------------------
def test_adder_exhaustive_4bit():
    sim, _ = _build(
        {"a": 4, "b": 4},
        lambda B, i: dict(
            zip(("s", "cout"), (lambda s, c: (s, [c]))(*B.add(i["a"], i["b"])))
        ),
    )
    for a in range(16):
        for b in range(16):
            out = sim.evaluate({"a": a, "b": b})
            assert out["s"] == (a + b) & 0xF
            assert out["cout"] == (a + b) >> 4


def test_adder_with_carry_in():
    sim, _ = _build(
        {"a": 3, "b": 3, "cin": 1},
        lambda B, i: {"s": B.add(i["a"], i["b"], cin=i["cin"][0])[0]},
    )
    for a in range(8):
        for b in range(8):
            for c in (0, 1):
                assert sim.evaluate({"a": a, "b": b, "cin": c})["s"] == (
                    (a + b + c) & 7
                )


def test_subtractor_and_borrow():
    sim, _ = _build(
        {"a": 4, "b": 4},
        lambda B, i: (lambda d, c: {"d": d, "noborrow": [c]})(*B.sub(i["a"], i["b"])),
    )
    for a in range(16):
        for b in range(16):
            out = sim.evaluate({"a": a, "b": b})
            assert out["d"] == (a - b) & 0xF
            assert out["noborrow"] == int(a >= b)


def test_negation_two_complement():
    sim, _ = _build({"a": 4}, lambda B, i: {"n": B.neg(i["a"])})
    for a in range(16):
        assert sim.evaluate({"a": a})["n"] == (-a) & 0xF


# ----------------------------------------------------------------------
# Multiplier / divider
# ----------------------------------------------------------------------
def test_multiplier_exhaustive_4x4():
    sim, _ = _build({"a": 4, "b": 4}, lambda B, i: {"p": B.mul(i["a"], i["b"])})
    for a in range(16):
        for b in range(16):
            assert sim.evaluate({"a": a, "b": b})["p"] == a * b


def test_multiplier_truncating():
    sim, _ = _build(
        {"a": 4, "b": 4}, lambda B, i: {"p": B.mul(i["a"], i["b"], width=4)}
    )
    for a in range(16):
        for b in range(16):
            assert sim.evaluate({"a": a, "b": b})["p"] == (a * b) & 0xF


def test_divider_exhaustive_4bit():
    sim, _ = _build(
        {"a": 4, "b": 4},
        lambda B, i: (lambda q, r: {"q": q, "r": r})(
            *B.divmod_unsigned(i["a"], i["b"])
        ),
    )
    for a in range(16):
        for b in range(1, 16):
            out = sim.evaluate({"a": a, "b": b})
            assert out["q"] == a // b, (a, b)
            assert out["r"] == a % b, (a, b)


def test_divide_by_zero_convention():
    sim, _ = _build(
        {"a": 4, "b": 4},
        lambda B, i: (lambda q, r: {"q": q, "r": r})(
            *B.divmod_unsigned(i["a"], i["b"])
        ),
    )
    out = sim.evaluate({"a": 9, "b": 0})
    assert out["q"] == 0xF  # all ones
    assert out["r"] == 9


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "op,expected",
    [
        ("eq", lambda a, b: a == b),
        ("ne", lambda a, b: a != b),
        ("lt", lambda a, b: a < b),
        ("le", lambda a, b: a <= b),
        ("gt", lambda a, b: a > b),
        ("ge", lambda a, b: a >= b),
    ],
)
def test_comparisons_exhaustive(op, expected):
    sim, _ = _build(
        {"a": 4, "b": 4},
        lambda B, i: {"y": [getattr(B, op)(i["a"], i["b"])]},
    )
    for a in range(16):
        for b in range(16):
            assert sim.evaluate({"a": a, "b": b})["y"] == int(expected(a, b))


# ----------------------------------------------------------------------
# Shifts
# ----------------------------------------------------------------------
def test_barrel_shift_left():
    sim, _ = _build(
        {"a": 6, "n": 3}, lambda B, i: {"y": B.shl(i["a"], i["n"])}
    )
    for a in range(64):
        for n in range(8):
            assert sim.evaluate({"a": a, "n": n})["y"] == (a << n) & 0x3F


def test_barrel_shift_right():
    sim, _ = _build(
        {"a": 6, "n": 3}, lambda B, i: {"y": B.shr(i["a"], i["n"])}
    )
    for a in range(64):
        for n in range(8):
            assert sim.evaluate({"a": a, "n": n})["y"] == a >> n


def test_constant_shifts():
    sim, _ = _build(
        {"a": 5},
        lambda B, i: {
            "l2": B.shl_const(i["a"], 2),
            "r1": B.shr_const(i["a"], 1),
            "l9": B.shl_const(i["a"], 9),
        },
    )
    for a in range(32):
        out = sim.evaluate({"a": a})
        assert out["l2"] == (a << 2) & 0x1F
        assert out["r1"] == a >> 1
        assert out["l9"] == 0


# ----------------------------------------------------------------------
# Reductions and bit operations
# ----------------------------------------------------------------------
def test_reductions():
    sim, _ = _build(
        {"a": 5},
        lambda B, i: {
            "and": [B.reduce_and(i["a"])],
            "or": [B.reduce_or(i["a"])],
            "xor": [B.reduce_xor(i["a"])],
        },
    )
    for a in range(32):
        out = sim.evaluate({"a": a})
        assert out["and"] == int(a == 31)
        assert out["or"] == int(a != 0)
        assert out["xor"] == bin(a).count("1") % 2


def test_mux_vector():
    sim, _ = _build(
        {"s": 1, "a": 4, "b": 4},
        lambda B, i: {"y": B.mux_vec(i["s"][0], i["a"], i["b"])},
    )
    for a in range(0, 16, 3):
        for b in range(0, 16, 5):
            assert sim.evaluate({"s": 0, "a": a, "b": b})["y"] == a
            assert sim.evaluate({"s": 1, "a": a, "b": b})["y"] == b


def test_extend_and_constant():
    nl = Netlist("t")
    builder = CircuitBuilder(nl)
    bits = builder.constant(0b1011, 4)
    assert [builder.value_of(b) for b in bits] == [True, True, False, True]
    extended = builder.extend(bits, 6)
    assert [builder.value_of(b) for b in extended[4:]] == [False, False]
    truncated = builder.extend(bits, 2)
    assert len(truncated) == 2


def test_constant_negative_wraps():
    nl = Netlist("t")
    builder = CircuitBuilder(nl)
    bits = builder.constant(-1, 4)
    assert all(builder.value_of(b) for b in bits)


# ----------------------------------------------------------------------
# Local folding: constant inputs should never generate gates
# ----------------------------------------------------------------------
def test_constant_folding_generates_no_gates():
    nl = Netlist("t")
    builder = CircuitBuilder(nl)
    a = builder.const_bit(True)
    b = builder.const_bit(False)
    assert builder.value_of(builder.and_(a, b)) is False
    assert builder.value_of(builder.or_(a, b)) is True
    assert builder.value_of(builder.xor_(a, a)) is False
    assert builder.value_of(builder.not_(b)) is True
    assert builder.value_of(builder.mux_(a, b, a)) is True
    gate_cells = [c for c in nl.cells.values() if c.kind not in ("GND", "VCC")]
    assert not gate_cells


def test_identity_folding_passes_through():
    nl = Netlist("t")
    builder = CircuitBuilder(nl)
    x = nl.new_net()
    nl.add_port("x", PortDirection.INPUT, [x])
    one, zero = builder.const_bit(True), builder.const_bit(False)
    assert builder.and_(x, one) == x
    assert builder.or_(x, zero) == x
    assert builder.xor_(x, zero) == x
    assert builder.and_(x, x) == x


def test_structural_hashing_shares_gates():
    nl = Netlist("t")
    builder = CircuitBuilder(nl)
    a, b = nl.new_net(), nl.new_net()
    nl.add_port("a", PortDirection.INPUT, [a])
    nl.add_port("b", PortDirection.INPUT, [b])
    first = builder.and_(a, b)
    second = builder.and_(a, b)
    assert first == second
    assert nl.num_cells("AND") == 1


def test_width_mismatch_rejected():
    nl = Netlist("t")
    builder = CircuitBuilder(nl)
    with pytest.raises(NetlistError):
        builder.and_vec(nl.new_nets(3), nl.new_nets(4))


def test_empty_reduction_rejected():
    builder = CircuitBuilder(Netlist("t"))
    with pytest.raises(NetlistError):
        builder.reduce_or([])


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=255),
)
@settings(max_examples=40, deadline=None)
def test_adder_8bit_property(a, b):
    sim, _ = _build(
        {"a": 8, "b": 8}, lambda B, i: {"s": B.add(i["a"], i["b"])[0]}
    )
    assert sim.evaluate({"a": a, "b": b})["s"] == (a + b) & 0xFF
