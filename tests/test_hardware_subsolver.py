"""Tests for qbsolv-over-hardware: decomposition with embedded subproblems."""

import random

import pytest

from repro.ising.model import IsingModel
from repro.solvers.exact import ExactSolver
from repro.solvers.hardware_subsolver import HardwareSubsolver
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.qbsolv import QBSolv


@pytest.fixture(scope="module")
def small_machine():
    props = MachineProperties(cells=4, dropout_fraction=0.0, noise_h=0.0, noise_j=0.0)
    return DWaveSimulator(properties=props, seed=0)


def test_subsolver_solves_directly(small_machine):
    model = IsingModel({"a": 1.0, "b": -0.5}, {("a", "b"): -1.0})
    subsolver = HardwareSubsolver(small_machine, num_reads=20)
    result = subsolver.sample(model)
    truth = ExactSolver().ground_states(model).first
    assert result.first.energy == pytest.approx(truth.energy)


def test_subsolver_handles_triangles(small_machine):
    """Triangles need chains on the bipartite hardware."""
    model = IsingModel(
        {"x": 0.25},
        {("x", "y"): 1.0, ("y", "z"): 1.0, ("z", "x"): 1.0},
    )
    result = HardwareSubsolver(small_machine, num_reads=30).sample(model)
    truth = ExactSolver().ground_states(model).first.energy
    assert result.first.energy == pytest.approx(truth)


def test_subsolver_empty_model(small_machine):
    assert len(HardwareSubsolver(small_machine).sample(IsingModel())) == 0


def test_embedding_cache_reused(small_machine):
    model = IsingModel(j={("a", "b"): -1.0})
    subsolver = HardwareSubsolver(small_machine, num_reads=3)
    subsolver.sample(model)
    subsolver.sample(model.scaled(0.5))  # same structure, new coefficients
    assert len(subsolver._embedding_cache) == 1


def test_qbsolv_over_hardware_decomposes(small_machine):
    """A 60-variable problem cannot fit sensibly on the 128-qubit toy
    machine in one shot with chains; qbsolv + the hardware subsolver
    solves it by parts (the paper's 'split large problems' flow)."""
    rng = random.Random(5)
    model = IsingModel()
    for i in range(60):
        model.add_variable(i, rng.uniform(-1, 1))
    for i in range(59):
        model.add_interaction(i, i + 1, rng.uniform(-1, 1))
        if i % 7 == 0 and i + 5 < 60:
            model.add_interaction(i, i + 5, rng.uniform(-0.5, 0.5))

    subsolver = HardwareSubsolver(small_machine, num_reads=10)
    qb = QBSolv(subproblem_size=14, subsolver=subsolver, seed=2)
    result = qb.sample(model, num_repeats=8)

    # Compare against long-run SA as the reference optimum.
    from repro.solvers.neal import SimulatedAnnealingSampler

    reference = SimulatedAnnealingSampler(seed=0).sample(
        model, num_reads=20, num_sweeps=3000
    )
    assert result.first.energy <= reference.first.energy + abs(
        reference.first.energy
    ) * 0.05
