"""Tests for SampleSet: the statistics container for annealer reads."""

import numpy as np
import pytest

from repro.ising.model import IsingModel
from repro.solvers.sampleset import Sample, SampleSet


@pytest.fixture()
def model():
    return IsingModel({"a": 1.0}, {("a", "b"): -1.0})


def _sampleset(model, rows):
    return SampleSet.from_array(["a", "b"], np.array(rows, dtype=np.int8), model)


def test_sorted_by_energy(model):
    ss = _sampleset(model, [[1, 1], [-1, -1], [-1, 1]])
    assert list(ss.energies) == sorted(ss.energies)
    assert ss.first.energy == ss.energies[0]


def test_first_is_argmin(model):
    ss = _sampleset(model, [[1, 1], [-1, -1]])
    # E(1,1) = 1 - 1 = 0;  E(-1,-1) = -1 - 1 = -2.
    assert ss.first.assignment == {"a": -1, "b": -1}
    assert ss.first.energy == pytest.approx(-2.0)


def test_sample_booleans(model):
    ss = _sampleset(model, [[-1, 1]])
    assert ss.first.booleans() == {"a": False, "b": True}


def test_sample_getitem(model):
    sample = _sampleset(model, [[-1, 1]]).first
    assert sample["a"] == -1
    assert sample["b"] == 1


def test_lowest_filters_to_ground(model):
    ss = _sampleset(model, [[1, 1], [-1, -1], [-1, -1], [1, -1]])
    lowest = ss.lowest()
    assert len(lowest) == 2
    assert all(e == pytest.approx(-2.0) for e in lowest.energies)


def test_aggregate_merges_duplicates(model):
    ss = _sampleset(model, [[-1, -1], [-1, -1], [1, 1]])
    agg = ss.aggregate()
    assert len(agg) == 2
    assert agg.total_reads() == 3
    assert agg.first.num_occurrences == 2


def test_histogram(model):
    ss = _sampleset(model, [[-1, -1], [-1, -1], [1, 1]])
    hist = ss.histogram()
    assert hist[(-1, -1)] == 2
    assert hist[(1, 1)] == 1


def test_select_projects_variables(model):
    ss = _sampleset(model, [[-1, 1]])
    only_b = ss.select(["b"])
    assert only_b.variables == ["b"]
    assert only_b.records[0][0] == 1


def test_relabeled(model):
    ss = _sampleset(model, [[-1, 1]]).relabeled({"a": "x"})
    assert ss.variables == ["x", "b"]
    assert ss.first.assignment == {"x": -1, "b": 1}


def test_from_samples_dicts(model):
    ss = SampleSet.from_samples(
        [{"a": -1, "b": -1}, {"a": 1, "b": 1}], model
    )
    assert len(ss) == 2
    assert ss.first.energy == pytest.approx(-2.0)


def test_from_samples_empty_rejected(model):
    with pytest.raises(ValueError):
        SampleSet.from_samples([], model)


def test_empty_sampleset():
    ss = SampleSet.empty(["a"])
    assert len(ss) == 0
    with pytest.raises(ValueError):
        _ = ss.first
    assert ss.lowest() is ss


def test_shape_validation(model):
    with pytest.raises(ValueError):
        SampleSet(
            ["a", "b"],
            np.zeros((2, 3), dtype=np.int8),
            np.zeros(2),
            np.ones(2, dtype=int),
        )
    with pytest.raises(ValueError):
        SampleSet(
            ["a", "b"],
            np.zeros((2, 2), dtype=np.int8),
            np.zeros(3),
            np.ones(2, dtype=int),
        )


def test_energies_match_model(model):
    rows = [[1, -1], [-1, 1], [1, 1]]
    ss = _sampleset(model, rows)
    for sample in ss:
        assert model.energy(sample.assignment) == pytest.approx(sample.energy)


def test_iteration_yields_samples(model):
    ss = _sampleset(model, [[1, 1], [-1, -1]])
    samples = list(ss)
    assert all(isinstance(s, Sample) for s in samples)
    assert len(samples) == 2
