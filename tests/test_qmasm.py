"""Tests for the QMASM language: parser, assembler, stdcell library."""

import pytest

from repro.ising.cells import CELL_LIBRARY
from repro.ising.model import SPIN_FALSE, SPIN_TRUE
from repro.qmasm.assembler import assemble
from repro.qmasm.parser import parse_pin, parse_qmasm
from repro.qmasm.program import (
    Chain,
    Coupler,
    Pin,
    QmasmError,
    UseMacro,
    Weight,
)
from repro.qmasm.stdcell import STDCELL_NAME, stdcell_source


# ----------------------------------------------------------------------
# Parser: plain statements
# ----------------------------------------------------------------------
def test_parse_weight_coupler_chain():
    program = parse_qmasm("A -1\nA B -5\nA = B\nC /= D\n")
    kinds = [type(s) for s in program.statements]
    assert kinds == [Weight, Coupler, Chain, Chain]
    assert program.statements[0].value == -1.0
    assert program.statements[2].same is True
    assert program.statements[3].same is False


def test_parse_listing1_verbatim():
    """The paper's Listing 1 parses as 2 weights + 6 couplers."""
    listing1 = "A   -1\nB    2\nA B -5\nB C -5\nC D -5\nD A -5\nA C 10\nB D 10\n"
    program = parse_qmasm(listing1)
    weights = [s for s in program.statements if isinstance(s, Weight)]
    couplers = [s for s in program.statements if isinstance(s, Coupler)]
    assert len(weights) == 2 and len(couplers) == 6


def test_comments_and_blanks_ignored():
    program = parse_qmasm("# full comment\n\nA 1  # trailing\n")
    assert len(program.statements) == 1


def test_invalid_statements_rejected():
    for bad in ("A", "1 2 3 4", "A B C 5", "A notanumber"):
        with pytest.raises(QmasmError):
            parse_qmasm(bad)


# ----------------------------------------------------------------------
# Parser: pins
# ----------------------------------------------------------------------
def test_scalar_pin_forms():
    for text, expected in (
        ("x := true", True), ("x := TRUE", True), ("x := 1", True),
        ("x := false", False), ("x := 0", False),
    ):
        assert parse_pin(text).assignments == {"x": expected}


def test_vector_pin_binary_string():
    """The paper: --pin="C[7:0] := 10001111" (143, MSB first)."""
    pin = parse_pin("C[7:0] := 10001111")
    assert pin.assignments == {
        "C[7]": True, "C[6]": False, "C[5]": False, "C[4]": False,
        "C[3]": True, "C[2]": True, "C[1]": True, "C[0]": True,
    }


def test_vector_pin_integer():
    pin = parse_pin("C[3:0] := 5")
    assert pin.assignments == {
        "C[3]": False, "C[2]": True, "C[1]": False, "C[0]": True
    }


def test_single_bit_pin():
    assert parse_pin("C[2] := 1").assignments == {"C[2]": True}


def test_ascending_pin_range():
    pin = parse_pin("x[0:2] := 101")
    assert pin.assignments == {"x[0]": True, "x[1]": False, "x[2]": True}


def test_pin_validation():
    with pytest.raises(QmasmError):
        parse_pin("x = 1")  # wrong operator
    with pytest.raises(QmasmError):
        parse_pin("x := maybe")
    with pytest.raises(QmasmError):
        parse_pin("x[1:0] := 9")  # doesn't fit


def test_pins_inside_programs():
    program = parse_qmasm("A 1\nA := true\n")
    pins = [s for s in program.statements if isinstance(s, Pin)]
    assert pins[0].assignments == {"A": True}


# ----------------------------------------------------------------------
# Parser: directives
# ----------------------------------------------------------------------
def test_macro_definition_and_use():
    program = parse_qmasm(
        "!begin_macro CHAINED\nA B -1\n!end_macro CHAINED\n"
        "!use_macro CHAINED one two\n"
    )
    assert "CHAINED" in program.macros
    use = [s for s in program.statements if isinstance(s, UseMacro)][0]
    assert use.instances == ["one", "two"]


def test_macro_errors():
    with pytest.raises(QmasmError):
        parse_qmasm("!begin_macro M\nA 1\n")  # unterminated
    with pytest.raises(QmasmError):
        parse_qmasm("!end_macro M\n")
    with pytest.raises(QmasmError):
        parse_qmasm("!begin_macro M\n!end_macro OTHER\n")
    with pytest.raises(QmasmError):
        parse_qmasm("!begin_macro M\n!end_macro M\n!begin_macro M\n!end_macro M\n")
    with pytest.raises(QmasmError):
        parse_qmasm("!use_macro M\n")  # no instance name


def test_include_via_resolver():
    library = "!begin_macro GADGET\nA B -2\n!end_macro GADGET\n"

    def resolver(target):
        assert target == "mylib"
        return library

    program = parse_qmasm(
        "!include <mylib>\n!use_macro GADGET g\n", include_resolver=resolver
    )
    assert "GADGET" in program.macros


def test_include_stdcell_builtin():
    program = parse_qmasm(f"!include <{STDCELL_NAME}>")
    assert set(CELL_LIBRARY) <= set(program.macros)


def test_include_missing_target():
    with pytest.raises(QmasmError):
        parse_qmasm("!include <no_such_thing>")


def test_unknown_directive():
    with pytest.raises(QmasmError):
        parse_qmasm("!frobnicate A\n")


def test_assert_parses_and_evaluates():
    program = parse_qmasm("!assert Y = A|B\nA 1\nB 1\nY 1\n")
    logical = assemble(program)
    good = {"Y": SPIN_TRUE, "A": SPIN_TRUE, "B": SPIN_FALSE}
    bad = {"Y": SPIN_FALSE, "A": SPIN_TRUE, "B": SPIN_FALSE}
    assert logical.check_assertions(good) == []
    assert logical.check_assertions(bad) == ["Y = A|B"]


def test_assert_expression_grammar():
    source = "\n".join(
        [
            "!assert ~(A&B) = Y",
            "!assert A + B <= 2",
            "!assert (A ^ B) | C >= 0",
            "A 1", "B 1", "C 1", "Y 1",
        ]
    )
    logical = assemble(parse_qmasm(source))
    sample = {"A": SPIN_TRUE, "B": SPIN_FALSE, "C": SPIN_TRUE, "Y": SPIN_TRUE}
    assert logical.check_assertions(sample) == []


def test_assert_syntax_errors():
    with pytest.raises(QmasmError):
        parse_qmasm("!assert A &&& B")
    with pytest.raises(QmasmError):
        parse_qmasm("!assert (A")


# ----------------------------------------------------------------------
# Assembler
# ----------------------------------------------------------------------
def test_assemble_weights_and_couplers():
    logical = assemble(parse_qmasm("A -1\nB 2\nA B -5\n"))
    assert logical.model.get_linear("A") == pytest.approx(-1.0)
    assert logical.model.get_interaction("A", "B") == pytest.approx(-5.0)


def test_macro_expansion_prefixes_names():
    source = (
        "!begin_macro PAIR\nX Y -1\nX 0.5\n!end_macro PAIR\n"
        "!use_macro PAIR p1 p2\n"
    )
    logical = assemble(parse_qmasm(source))
    assert logical.model.get_interaction("p1.X", "p1.Y") == pytest.approx(-1.0)
    assert logical.model.get_linear("p2.X") == pytest.approx(0.5)


def test_nested_macros():
    source = (
        "!begin_macro INNER\nA 1\n!end_macro INNER\n"
        "!begin_macro OUTER\n!use_macro INNER kid\nB 2\n!end_macro OUTER\n"
        "!use_macro OUTER top\n"
    )
    logical = assemble(parse_qmasm(source))
    assert logical.model.get_linear("top.kid.A") == pytest.approx(1.0)
    assert logical.model.get_linear("top.B") == pytest.approx(2.0)


def test_undefined_macro_rejected():
    with pytest.raises(QmasmError):
        assemble(parse_qmasm("!use_macro GHOST g\n"))


def test_chain_contraction_merges_variables():
    logical = assemble(parse_qmasm("A 1\nB 2\nA = B\n"))
    model, representative = logical.to_ising()
    assert representative["A"] == representative["B"]
    merged = representative["A"]
    assert model.get_linear(merged) == pytest.approx(3.0)


def test_chain_contraction_prefers_visible_names():
    logical = assemble(parse_qmasm("$g.Y 1\nout 0\n$g.Y = out\n"))
    _, representative = logical.to_ising()
    assert representative["$g.Y"] == "out"


def test_chains_can_be_kept_as_couplers():
    logical = assemble(parse_qmasm("A 1\nB 2\nA = B\n"))
    model, representative = logical.to_ising(contract_chains=False)
    assert representative["A"] != representative["B"]
    assert model.get_interaction("A", "B") < 0


def test_anti_chain_becomes_positive_coupler():
    logical = assemble(parse_qmasm("A 0\nB 0\nA /= B\n"))
    model, _ = logical.to_ising(chain_strength=3.0)
    assert model.get_interaction("A", "B") == pytest.approx(3.0)
    _, states = model.ground_states()
    assert all(s["A"] != s["B"] for s in states)


def test_conflicting_chains_rejected():
    logical = assemble(parse_qmasm("A 0\nB 0\nA = B\nA /= B\n"))
    with pytest.raises(QmasmError):
        logical.to_ising()


def test_default_chain_strength_rule():
    """Twice the largest-in-magnitude literal J (paper Section 4.3.5)."""
    logical = assemble(parse_qmasm("A B -5\nB C 10\n"))
    assert logical.default_chain_strength() == pytest.approx(20.0)


def test_pins_become_biases():
    logical = assemble(parse_qmasm("A 0\nB 0\nA B -1\nA := true\n"))
    model, rep = logical.to_ising(pin_strength=4.0)
    assert model.get_linear(rep["A"]) == pytest.approx(-4.0)
    _, states = model.ground_states()
    assert all(s[rep["A"]] == SPIN_TRUE for s in states)


def test_with_pins_does_not_mutate():
    logical = assemble(parse_qmasm("A 0\n"))
    pinned = logical.with_pins({"A": True})
    assert logical.pins == {}
    assert pinned.pins == {"A": True}


def test_alias_renames_variables():
    logical = assemble(parse_qmasm("!alias OUT Y\nY -1\nOUT := true\n"))
    assert logical.model.get_linear("Y") == pytest.approx(-1.0)
    assert logical.pins == {"Y": True}


def test_visible_variables_hide_dollar_names():
    logical = assemble(parse_qmasm("visible 1\n$hidden 1\ninner.$x 1\n"))
    assert logical.visible_variables() == ["visible"]


# ----------------------------------------------------------------------
# stdcell.qmasm
# ----------------------------------------------------------------------
def test_stdcell_source_has_every_cell_macro():
    source = stdcell_source()
    for name in CELL_LIBRARY:
        assert f"!begin_macro {name}" in source
        assert f"!end_macro {name}" in source


def test_stdcell_macros_reproduce_cell_hamiltonians():
    """Assembling '!use_macro CELL g' must yield exactly the verified
    Table 5 Hamiltonian, instance-prefixed."""
    for name, spec in CELL_LIBRARY.items():
        source = f"!include <stdcell>\n!use_macro {name} g\n"
        logical = assemble(parse_qmasm(source))
        expected = spec.hamiltonian().relabel(
            {v: f"g.{v}" for v in spec.hamiltonian().variables}
        )
        assert logical.model == expected, name


def test_stdcell_asserts_hold_on_all_ground_states():
    for name, spec in CELL_LIBRARY.items():
        source = f"!include <stdcell>\n!use_macro {name} g\n"
        logical = assemble(parse_qmasm(source))
        _, states = logical.model.ground_states()
        for state in states:
            assert logical.check_assertions(state) == [], (name, state)


def test_stdcell_or_macro_matches_listing2():
    """Listing 2's OR macro body, line for line."""
    source = stdcell_source()
    or_block = source.split("!begin_macro OR")[1].split("!end_macro OR")[0]
    for line in ("A 0.5", "B 0.5", "Y -1", "A B 0.5", "A Y -1", "B Y -1"):
        assert line in or_block
