"""End-to-end reproduction of the paper's headline results.

These are the claims a reader would check first:

- Figure 2: the mux-add-sub circuit's Hamiltonian is minimized at valid
  input/output relations and not at invalid ones.
- Section 5.2 / Figure 4: circsat run backward finds a=1, b=1, c=0.
- Section 5.3 / Listing 6: factoring 143 yields exactly {11,13},{13,11};
  the same code multiplies and divides.
- Section 5.4 / Listing 7: pinning valid:=true yields proper 4-colorings
  of Australia, and repeated reads sample *different* colorings.
- Section 4.3.3 / Listing 3: the counter unrolls over discrete time.
"""

import pytest

from repro import VerilogAnnealerCompiler
from repro.solvers.csp import CSPSolver, parse_minizinc
from tests.conftest import (
    AUSTRALIA_ADJACENT,
    AUSTRALIA_REGIONS,
    FIGURE_2A,
    LISTING_3_COUNTER,
    LISTING_6_MULT,
    LISTING_7_AUSTRALIA,
    LISTING_8_MINIZINC,
)


@pytest.fixture(scope="module")
def paper_compiler():
    return VerilogAnnealerCompiler(seed=42)


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
def test_figure2_valid_relations_are_ground_states(paper_compiler):
    program = paper_compiler.compile(FIGURE_2A)
    result = paper_compiler.run(program, solver="exact", num_reads=1 << 16)
    ground_energy = result.solutions[0].energy
    ground = {
        (s.values["s"], s.values["a"], s.values["b"], s.value_of("c"))
        for s in result.solutions
        if s.energy == pytest.approx(ground_energy)
    }
    # The paper's examples: valid at {s=0,a=1,b=0,c=01} and
    # {s=1,a=1,b=1,c=10}; invalid at {s=1,a=0,b=0,c=11}.
    assert (False, True, False, 0b01) in ground
    assert (True, True, True, 0b10) in ground
    assert (True, False, False, 0b11) not in ground
    # Exactly one c per (s, a, b): 8 ground states.
    assert len(ground) == 8


# ----------------------------------------------------------------------
# Section 5.2: circuit satisfiability
# ----------------------------------------------------------------------
def test_circsat_backward_finds_paper_solution(paper_compiler, circsat_program):
    result = paper_compiler.run(
        circsat_program, pins=["y := true"], solver="dwave", num_reads=150
    )
    answers = {
        (s.value_of("a"), s.value_of("b"), s.value_of("c"))
        for s in result.valid_solutions
    }
    assert (1, 1, 0) in answers  # the unique satisfying assignment
    # No invalid proposals should pass the forward check.
    simulator = circsat_program.simulator()
    for a, b, c in answers:
        assert simulator.evaluate({"a": a, "b": b, "c": c})["y"] == 1


# ----------------------------------------------------------------------
# Section 5.3: factoring
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mult_program(paper_compiler):
    return paper_compiler.compile(LISTING_6_MULT)


def test_factoring_143(paper_compiler, mult_program):
    result = paper_compiler.run(
        mult_program, pins=["C[7:0] := 10001111"], solver="sa", num_reads=800
    )
    factorizations = {
        (s.value_of("A"), s.value_of("B"))
        for s in result.valid_solutions
        if s.value_of("A") * s.value_of("B") == 143
    }
    # "returns two unique solutions: {A=11, B=13} and {A=13, B=11}"
    assert factorizations == {(11, 13), (13, 11)}


def test_multiplication_forward(paper_compiler, mult_program):
    result = paper_compiler.run(
        mult_program,
        pins=["A[3:0] := 1101", "B[3:0] := 1011"],
        solver="sa",
        num_reads=300,
    )
    assert result.valid_solutions[0].value_of("C") == 143


def test_division_via_partial_pinning(paper_compiler, mult_program):
    result = paper_compiler.run(
        mult_program,
        pins=["C[7:0] := 10001111", "A[3:0] := 1101"],
        solver="sa",
        num_reads=500,
    )
    assert result.valid_solutions[0].value_of("B") == 11


# ----------------------------------------------------------------------
# Section 5.4: map coloring
# ----------------------------------------------------------------------
def _valid_coloring(solution):
    colors = {r: solution.value_of(r) for r in AUSTRALIA_REGIONS}
    return all(colors[a] != colors[b] for a, b in AUSTRALIA_ADJACENT)


def test_australia_four_coloring(paper_compiler):
    program = paper_compiler.compile(LISTING_7_AUSTRALIA)
    result = paper_compiler.run(
        program, pins=["valid := true"], solver="sa", num_reads=400
    )
    colorings = {
        tuple(s.value_of(r) for r in AUSTRALIA_REGIONS)
        for s in result.valid_solutions
        if _valid_coloring(s)
    }
    assert colorings, "no valid coloring sampled"
    # Stochastic sampling: many distinct colorings, not one (Section 5.4
    # contrasts this with the deterministic classical solver).
    assert len(colorings) > 5


def test_minizinc_baseline_agrees(paper_compiler):
    """Listing 8 and Listing 7 describe the same constraint problem."""
    csp = parse_minizinc(LISTING_8_MINIZINC)
    solution = CSPSolver().solve(csp)
    program = paper_compiler.compile(LISTING_7_AUSTRALIA)
    simulator = program.simulator()
    inputs = {r: solution[r] - 1 for r in AUSTRALIA_REGIONS}  # 1..4 -> 0..3
    assert simulator.evaluate(inputs)["valid"] == 1


# ----------------------------------------------------------------------
# Section 4.3.3: sequential logic
# ----------------------------------------------------------------------
def test_counter_unrolled_forward(paper_compiler):
    program = paper_compiler.compile(
        LISTING_3_COUNTER, unroll_steps=3, initial_state=0
    )
    pins = []
    for step, (inc, reset) in enumerate([(1, 0), (1, 0), (0, 0)]):
        pins += [f"inc@{step} := {inc}", f"reset@{step} := {reset}"]
    result = paper_compiler.run(program, pins=pins, solver="sa", num_reads=200)
    best = result.valid_solutions[0]
    assert [best.value_of(f"out@{t}") for t in range(3)] == [0, 1, 2]


def test_counter_reset_dominates(paper_compiler):
    program = paper_compiler.compile(
        LISTING_3_COUNTER, unroll_steps=3, initial_state=0
    )
    pins = []
    for step, (inc, reset) in enumerate([(1, 0), (1, 1), (1, 0)]):
        pins += [f"inc@{step} := {inc}", f"reset@{step} := {reset}"]
    result = paper_compiler.run(program, pins=pins, solver="sa", num_reads=200)
    best = result.valid_solutions[0]
    # Cycle 1 resets, so out@2 restarts from 0.
    assert [best.value_of(f"out@{t}") for t in range(3)] == [0, 1, 0]


# ----------------------------------------------------------------------
# Section 6.1 sanity: Verilog-flow overhead relationships
# ----------------------------------------------------------------------
def test_static_property_relationships(paper_compiler):
    program = paper_compiler.compile(LISTING_7_AUSTRALIA)
    stats = program.statistics()
    # Verilog << EDIF << ... : each lowering adds lines.
    assert stats["verilog_lines"] < 10
    assert stats["edif_lines"] > 10 * stats["verilog_lines"]
    # The paper's hand-coded unary encoding needs 28 logical variables;
    # the Verilog flow pays a multiple of that (74 in the paper).
    assert stats["logical_variables"] > 2 * 28
    assert stats["logical_variables"] < 4 * 28
