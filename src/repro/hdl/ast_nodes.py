"""Abstract syntax tree for the supported Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base AST node; ``line`` points back at the source."""

    line: int = field(default=0, compare=False)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr(Node):
    pass


@dataclass
class Number(Expr):
    value: int = 0
    width: Optional[int] = None  # None for unsized literals (32-bit)


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Bit select ``base[index]``."""

    base: str = ""
    index: Optional[Expr] = None


@dataclass
class PartSelect(Expr):
    """Part select ``base[msb:lsb]`` (bounds must be constant)."""

    base: str = ""
    msb: Optional[Expr] = None
    lsb: Optional[Expr] = None


@dataclass
class Concat(Expr):
    """``{a, b, c}`` -- first element is most significant."""

    parts: List[Expr] = field(default_factory=list)


@dataclass
class Repeat(Expr):
    """``{count{expr}}``."""

    count: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class FunctionCall(Expr):
    """``name(arg, ...)`` -- a call to a module-level function."""

    name: str = ""
    arguments: List[Expr] = field(default_factory=list)


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


# ----------------------------------------------------------------------
# Statements (inside always blocks)
# ----------------------------------------------------------------------
@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class Assignment(Stmt):
    """Procedural assignment; ``blocking`` distinguishes ``=`` from ``<=``."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    blocking: bool = True


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class CaseItem(Node):
    labels: List[Expr] = field(default_factory=list)  # empty == default
    body: Optional[Stmt] = None


@dataclass
class Case(Stmt):
    subject: Optional[Expr] = None
    items: List[CaseItem] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (var = init; cond; var = update) body`` with constant trip count."""

    var: str = ""
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    update_var: str = ""
    update: Optional[Expr] = None
    body: Optional[Stmt] = None


# ----------------------------------------------------------------------
# Module items
# ----------------------------------------------------------------------
@dataclass
class Item(Node):
    pass


@dataclass
class Decl(Item):
    """``input/output/wire/reg [msb:lsb] name1, name2 [= init];``"""

    kind: str = "wire"  # input | output | wire | reg | integer | genvar
    msb: Optional[Expr] = None
    lsb: Optional[Expr] = None
    names: List[str] = field(default_factory=list)
    is_reg: bool = False  # for "output reg [..] x"
    signed: bool = False
    #: Net-declaration assignments: name -> initializer expression
    #: (``wire x = a & b;``).
    initializers: dict = field(default_factory=dict)


@dataclass
class FunctionDecl(Item):
    """``function [msb:lsb] name; input ...; <body> endfunction``."""

    name: str = ""
    msb: Optional[Expr] = None
    lsb: Optional[Expr] = None
    ports: List[Decl] = field(default_factory=list)
    locals: List[Decl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ParamDecl(Item):
    name: str = ""
    value: Optional[Expr] = None
    local: bool = False


@dataclass
class ContinuousAssign(Item):
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class SensitivityItem(Node):
    edge: str = "level"  # posedge | negedge | level | star
    signal: Optional[str] = None


@dataclass
class Always(Item):
    sensitivity: List[SensitivityItem] = field(default_factory=list)
    body: Optional[Stmt] = None

    def is_sequential(self) -> bool:
        return any(s.edge in ("posedge", "negedge") for s in self.sensitivity)


@dataclass
class PortConnection(Node):
    port: Optional[str] = None  # None for positional
    expr: Optional[Expr] = None


@dataclass
class Instance(Item):
    module: str = ""
    name: str = ""
    connections: List[PortConnection] = field(default_factory=list)
    parameters: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class GenerateFor(Item):
    """``generate for (i = 0; i < N; i = i + 1) begin : label ... end``.

    The loop bounds must be elaboration-time constants; each iteration
    replicates the contained items with instance names scoped as
    ``label[i].<name>``.
    """

    var: str = ""
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    update_var: str = ""
    update: Optional[Expr] = None
    label: str = ""
    items: List[Item] = field(default_factory=list)


@dataclass
class Module(Node):
    name: str = ""
    port_order: List[str] = field(default_factory=list)
    items: List[Item] = field(default_factory=list)


@dataclass
class SourceFile(Node):
    modules: List[Module] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(f"no module named {name!r}")
