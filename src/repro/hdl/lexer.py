"""Verilog tokenizer.

Produces a flat token stream with line/column positions.  Handles
``//`` and ``/* */`` comments, sized literals (``4'b1010``, ``8'hFF``,
``'d10``), plain decimal literals, identifiers/keywords, and the
operator set of the synthesizable subset.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.hdl.errors import VerilogSyntaxError

KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "begin", "end", "if", "else", "case", "casez",
    "casex", "endcase", "default", "for", "while", "posedge", "negedge",
    "or", "parameter", "localparam", "integer", "genvar", "generate",
    "endgenerate", "function", "endfunction", "signed", "initial",
}

#: Multi-character operators, longest first.
OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "?", "=", "#", "@",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_SIZED_RE = re.compile(r"(\d+)?\s*'\s*(s?)([bBoOdDhH])\s*([0-9a-fA-FxXzZ_?]+)")
_DECIMAL_RE = re.compile(r"\d[\d_]*")

_BASES = {"b": 2, "o": 8, "d": 10, "h": 16}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    kind: "ident", "keyword", "number", "op", or "eof".
    value: the text (operators/idents) or an (int value, width-or-None)
        tuple for numbers.
    """

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize Verilog source, raising on unlexable input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise VerilogSyntaxError("unterminated block comment", line, column())
            line += source.count("\n", pos, end)
            newline = source.rfind("\n", pos, end)
            if newline != -1:
                line_start = newline + 1
            pos = end + 2
            continue

        match = _SIZED_RE.match(source, pos)
        if match:
            width_text, _signed, base_char, digits = match.groups()
            base = _BASES[base_char.lower()]
            digits = digits.replace("_", "")
            if re.search(r"[xXzZ?]", digits):
                raise VerilogSyntaxError(
                    "x/z digits are not supported (two-valued logic only)",
                    line,
                    column(),
                )
            try:
                value = int(digits, base)
            except ValueError:
                raise VerilogSyntaxError(
                    f"bad digits {digits!r} for base {base}", line, column()
                ) from None
            width = int(width_text) if width_text else None
            if width is not None and width > 0 and value >= (1 << width):
                value &= (1 << width) - 1  # Verilog truncates oversized literals
            tokens.append(Token("number", (value, width), line, column()))
            pos = match.end()
            continue

        match = _IDENT_RE.match(source, pos)
        if match:
            text = match.group()
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column()))
            pos = match.end()
            continue

        match = _DECIMAL_RE.match(source, pos)
        if match:
            value = int(match.group().replace("_", ""))
            tokens.append(Token("number", (value, None), line, column()))
            pos = match.end()
            continue

        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line, column()))
                pos += len(op)
                break
        else:
            raise VerilogSyntaxError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token("eof", None, line, column()))
    return tokens
