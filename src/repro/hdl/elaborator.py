"""Elaboration: Verilog AST -> gate-level netlist.

This is the synthesis front half of the Yosys role: resolve parameters,
flatten the module hierarchy, infer flip-flops from edge-sensitive
always blocks, turn conditionals into mux trees, and lower all word
operations through :class:`repro.synth.lowering.CircuitBuilder`.

Width semantics follow Verilog's context-determination rules closely
enough for the paper's programs: operands of arithmetic/bitwise
operators are extended to the maximum of their self-determined widths
and the assignment target's width (so ``assign c = a + b;`` with a
2-bit ``c`` keeps the carry, as Figure 2 requires), comparisons and
reductions are self-determined and produce one bit, and assignments
truncate or zero-extend to the target width (so the Listing 3 counter
wraps at 6 bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.hdl import ast_nodes as ast
from repro.hdl.errors import ElaborationError
from repro.hdl.parser import parse
from repro.synth.lowering import Bits, CircuitBuilder
from repro.synth.netlist import Net, Netlist, PortDirection

_MAX_LOOP_ITERATIONS = 65536
_UNSIZED_WIDTH = 32


@dataclass
class _Signal:
    """A declared signal within one module instance."""

    name: str  # unqualified
    kind: str  # input | output | wire | reg
    msb: int
    lsb: int
    nets: Bits  # storage, LSB first
    is_reg: bool = False

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1

    def position(self, index: int, line: int = 0) -> int:
        """Map a Verilog bit index to LSB-first storage position."""
        low, high = min(self.msb, self.lsb), max(self.msb, self.lsb)
        if not low <= index <= high:
            raise ElaborationError(
                f"index {index} out of range [{self.msb}:{self.lsb}] "
                f"for {self.name!r}", line,
            )
        if self.msb >= self.lsb:
            return index - self.lsb
        return self.lsb - index


@dataclass
class _Scope:
    """One module instance: its signals, parameters, and name prefix."""

    prefix: str
    signals: Dict[str, _Signal] = field(default_factory=dict)
    parameters: Dict[str, int] = field(default_factory=dict)
    loop_vars: Dict[str, int] = field(default_factory=dict)
    functions: Dict[str, "ast.FunctionDecl"] = field(default_factory=dict)

    def constant(self, name: str) -> Optional[int]:
        if name in self.loop_vars:
            return self.loop_vars[name]
        return self.parameters.get(name)


class _UnionFind:
    """Net unification: ``assign``/port connections equate nets."""

    def __init__(self):
        self._parent: Dict[Net, Net] = {}

    def find(self, net: Net) -> Net:
        root = net
        while root in self._parent:
            root = self._parent[root]
        while net in self._parent:  # path compression
            self._parent[net], net = root, self._parent[net]
        return root

    def union(self, a: Net, b: Net) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


class _Elaborator:
    def __init__(self, source: ast.SourceFile):
        self.source = source
        self.netlist: Optional[Netlist] = None
        self.builder: Optional[CircuitBuilder] = None
        self.unify = _UnionFind()
        self._instance_counter = 0
        self._function_stack: List[str] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self, top: Optional[str] = None, parameters: Optional[Dict[str, int]] = None
    ) -> Netlist:
        module = (
            self.source.module(top) if top else self.source.modules[-1]
        )
        self.netlist = Netlist(module.name)
        self.builder = CircuitBuilder(self.netlist)
        scope = self._elaborate_module(module, prefix="", overrides=parameters or {})

        # Expose the top module's ports.
        for port_name in module.port_order:
            signal = scope.signals.get(port_name)
            if signal is None:
                raise ElaborationError(f"port {port_name!r} never declared")
            direction = (
                PortDirection.INPUT if signal.kind == "input" else PortDirection.OUTPUT
            )
            self.netlist.add_port(port_name, direction, signal.nets)

        self._apply_unification()
        self.netlist.validate()
        return self.netlist

    def _apply_unification(self) -> None:
        for cell in self.netlist.cells.values():
            cell.connections = {
                p: self.unify.find(n) for p, n in cell.connections.items()
            }
        for port in self.netlist.ports.values():
            port.bits = [self.unify.find(n) for n in port.bits]
        for name, bits in self.netlist.net_names.items():
            self.netlist.net_names[name] = [self.unify.find(n) for n in bits]

    # ------------------------------------------------------------------
    # Modules
    # ------------------------------------------------------------------
    def _elaborate_module(
        self, module: ast.Module, prefix: str, overrides: Dict[str, int]
    ) -> _Scope:
        scope = _Scope(prefix=prefix)

        # Pass 1: parameters (overridable unless localparam).
        overridable = set()
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                if not item.local:
                    overridable.add(item.name)
                if not item.local and item.name in overrides:
                    scope.parameters[item.name] = int(overrides[item.name])
                else:
                    scope.parameters[item.name] = self._const_expr(item.value, scope)
        unknown = set(overrides) - overridable
        if unknown:
            raise ElaborationError(
                f"module {module.name!r} has no overridable parameters "
                f"{sorted(unknown)}"
            )

        # Pass 2: signal and function declarations.
        for item in module.items:
            if isinstance(item, ast.Decl):
                self._declare(item, scope)
            elif isinstance(item, ast.FunctionDecl):
                if item.name in scope.functions:
                    raise ElaborationError(
                        f"duplicate function {item.name!r}", item.line
                    )
                scope.functions[item.name] = item
        for port_name in module.port_order:
            if port_name not in scope.signals:
                raise ElaborationError(
                    f"port {port_name!r} of module {module.name!r} never declared"
                )

        # Pass 3: behaviour.
        for item in module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._continuous_assign(item, scope)
            elif isinstance(item, ast.Always):
                self._always(item, scope)
            elif isinstance(item, ast.Instance):
                self._instance(item, scope)
            elif isinstance(item, ast.Decl) and item.initializers:
                # Net-declaration assignments: wire x = expr;
                for name, initializer in item.initializers.items():
                    self._continuous_assign(
                        ast.ContinuousAssign(
                            line=item.line,
                            target=ast.Ident(line=item.line, name=name),
                            value=initializer,
                        ),
                        scope,
                    )
            elif isinstance(item, ast.GenerateFor):
                self._generate_for(item, scope)
        return scope

    def _generate_for(self, block: ast.GenerateFor, scope: _Scope) -> None:
        """Unroll a generate-for, replicating its items per iteration."""
        if block.var != block.update_var:
            raise ElaborationError(
                "generate loop must update its own variable", block.line
            )
        if block.var not in scope.loop_vars:
            raise ElaborationError(
                f"generate variable {block.var!r} must be declared genvar",
                block.line,
            )
        scope.loop_vars[block.var] = self._const_expr(block.init, scope)
        iterations = 0
        while True:
            condition = self._try_const(block.cond, scope)
            if condition is None:
                raise ElaborationError(
                    "generate loop bound must be constant", block.line
                )
            if not condition:
                break
            index = scope.loop_vars[block.var]
            for item in block.items:
                if isinstance(item, ast.ContinuousAssign):
                    self._continuous_assign(item, scope)
                elif isinstance(item, ast.Instance):
                    scoped = ast.Instance(
                        line=item.line,
                        module=item.module,
                        name=f"{block.label}[{index}].{item.name}",
                        connections=item.connections,
                        parameters=item.parameters,
                    )
                    self._instance(scoped, scope)
                else:  # pragma: no cover - parser already rejects
                    raise ElaborationError(
                        "unsupported item in generate block", item.line
                    )
            scope.loop_vars[block.var] = self._const_expr(block.update, scope)
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise ElaborationError(
                    "generate loop exceeds unroll limit", block.line
                )

    def _declare(self, decl: ast.Decl, scope: _Scope) -> None:
        if decl.kind == "inout":
            raise ElaborationError("inout ports are not supported", decl.line)
        if decl.kind in ("integer", "genvar"):
            for name in decl.names:
                scope.loop_vars.setdefault(name, 0)
            return
        if decl.signed:
            raise ElaborationError(
                "signed signals are not supported (unsigned subset)", decl.line
            )
        msb = self._const_expr(decl.msb, scope) if decl.msb is not None else 0
        lsb = self._const_expr(decl.lsb, scope) if decl.lsb is not None else 0
        for name in decl.names:
            existing = scope.signals.get(name)
            if existing is not None:
                # Legal Verilog: "output c;" + "reg c;" refine each other.
                if decl.kind in ("input", "output") and existing.kind == "wire":
                    existing.kind = decl.kind
                elif decl.kind in ("wire", "reg") and existing.kind in ("input", "output"):
                    if decl.kind == "reg":
                        existing.is_reg = True
                else:
                    raise ElaborationError(f"duplicate declaration of {name!r}", decl.line)
                if (decl.msb is not None) and (existing.msb, existing.lsb) != (msb, lsb):
                    raise ElaborationError(
                        f"conflicting ranges for {name!r}", decl.line
                    )
                continue
            width = abs(msb - lsb) + 1
            signal = _Signal(
                name=name,
                kind=decl.kind if decl.kind != "reg" else "wire",
                msb=msb,
                lsb=lsb,
                nets=self.netlist.new_nets(width),
                is_reg=decl.is_reg or decl.kind == "reg",
            )
            scope.signals[name] = signal
            self.netlist.name_net(scope.prefix + name, signal.nets)

    # ------------------------------------------------------------------
    # Constant expressions
    # ------------------------------------------------------------------
    def _const_expr(self, expr: Optional[ast.Expr], scope: _Scope) -> int:
        value = self._try_const(expr, scope)
        if value is None:
            raise ElaborationError(
                "expression must be constant", getattr(expr, "line", 0)
            )
        return value

    def _try_const(self, expr: Optional[ast.Expr], scope: _Scope) -> Optional[int]:
        if expr is None:
            return None
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Ident):
            return scope.constant(expr.name)
        if isinstance(expr, ast.Unary):
            value = self._try_const(expr.operand, scope)
            if value is None:
                return None
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(not value)
            return None
        if isinstance(expr, ast.Binary):
            left = self._try_const(expr.left, scope)
            right = self._try_const(expr.right, scope)
            if left is None or right is None:
                return None
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if b else 0,
                "%": lambda a, b: a % b if b else 0,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "<": lambda a, b: int(a < b),
                "<=": lambda a, b: int(a <= b),
                ">": lambda a, b: int(a > b),
                ">=": lambda a, b: int(a >= b),
                "==": lambda a, b: int(a == b),
                "!=": lambda a, b: int(a != b),
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
                "&&": lambda a, b: int(bool(a) and bool(b)),
                "||": lambda a, b: int(bool(a) or bool(b)),
            }
            if expr.op in ops:
                return ops[expr.op](left, right)
            return None
        if isinstance(expr, ast.Ternary):
            cond = self._try_const(expr.cond, scope)
            if cond is None:
                return None
            branch = expr.if_true if cond else expr.if_false
            return self._try_const(branch, scope)
        return None

    # ------------------------------------------------------------------
    # Widths (self-determined)
    # ------------------------------------------------------------------
    def _self_width(self, expr: ast.Expr, scope: _Scope) -> int:
        if isinstance(expr, ast.Number):
            return expr.width if expr.width else _UNSIZED_WIDTH
        if isinstance(expr, ast.Ident):
            if scope.constant(expr.name) is not None:
                return _UNSIZED_WIDTH
            return self._signal(expr.name, scope, expr.line).width
        if isinstance(expr, ast.Index):
            return 1
        if isinstance(expr, ast.PartSelect):
            msb = self._const_expr(expr.msb, scope)
            lsb = self._const_expr(expr.lsb, scope)
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.Concat):
            return sum(self._self_width(p, scope) for p in expr.parts)
        if isinstance(expr, ast.Repeat):
            count = self._const_expr(expr.count, scope)
            return count * self._self_width(expr.value, scope)
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self._self_width(expr.operand, scope)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            if expr.op in ("<<", ">>"):
                return self._self_width(expr.left, scope)
            return max(
                self._self_width(expr.left, scope),
                self._self_width(expr.right, scope),
            )
        if isinstance(expr, ast.Ternary):
            return max(
                self._self_width(expr.if_true, scope),
                self._self_width(expr.if_false, scope),
            )
        if isinstance(expr, ast.FunctionCall):
            function = scope.functions.get(expr.name)
            if function is None:
                raise ElaborationError(
                    f"call of unknown function {expr.name!r}", expr.line
                )
            msb = self._const_expr(function.msb, scope) if function.msb is not None else 0
            lsb = self._const_expr(function.lsb, scope) if function.lsb is not None else 0
            return abs(msb - lsb) + 1
        raise ElaborationError(f"unsupported expression {expr!r}", expr.line)

    def _signal(self, name: str, scope: _Scope, line: int) -> _Signal:
        signal = scope.signals.get(name)
        if signal is None:
            raise ElaborationError(f"unknown identifier {name!r}", line)
        return signal

    # ------------------------------------------------------------------
    # Expression evaluation -> Bits
    # ------------------------------------------------------------------
    def _eval(
        self,
        expr: ast.Expr,
        scope: _Scope,
        ctx: int,
        env: Optional[Dict[str, Bits]] = None,
    ) -> Bits:
        """Evaluate ``expr`` in a context of ``ctx`` bits.

        ``env`` supplies procedural values of registers mid-always-block
        (blocking-assignment visibility).
        """
        build = self.builder

        if isinstance(expr, ast.Number):
            return build.constant(expr.value, ctx)

        if isinstance(expr, ast.Ident):
            const = scope.constant(expr.name)
            if const is not None:
                return build.constant(const, ctx)
            bits = self._read_signal(expr.name, scope, env, expr.line)
            return build.extend(bits, ctx)

        if isinstance(expr, ast.Index):
            signal = self._signal(expr.base, scope, expr.line)
            bits = self._read_signal(expr.base, scope, env, expr.line)
            index = self._try_const(expr.index, scope)
            if index is not None:
                bit = bits[signal.position(index, expr.line)]
                return build.extend([bit], ctx)
            # Variable bit select: build a one-hot mux over positions.
            sel_width = self._self_width(expr.index, scope)
            sel = self._eval(expr.index, scope, sel_width, env)
            result = build.const_bit(False)
            low, high = min(signal.msb, signal.lsb), max(signal.msb, signal.lsb)
            for i in range(low, high + 1):
                matches = build.eq(sel, build.constant(i, sel_width))
                chosen = build.and_(matches, bits[signal.position(i)])
                result = build.or_(result, chosen)
            return build.extend([result], ctx)

        if isinstance(expr, ast.PartSelect):
            bits = self._select_part(expr, scope, env)
            return build.extend(bits, ctx)

        if isinstance(expr, ast.Concat):
            collected: Bits = []
            for part in reversed(expr.parts):  # last part is least significant
                width = self._self_width(part, scope)
                collected.extend(self._eval(part, scope, width, env))
            return build.extend(collected, ctx)

        if isinstance(expr, ast.Repeat):
            count = self._const_expr(expr.count, scope)
            width = self._self_width(expr.value, scope)
            value = self._eval(expr.value, scope, width, env)
            return build.extend(list(value) * count, ctx)

        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, scope, ctx, env)

        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scope, ctx, env)

        if isinstance(expr, ast.Ternary):
            cond = self._eval_bool(expr.cond, scope, env)
            if_true = self._eval(expr.if_true, scope, ctx, env)
            if_false = self._eval(expr.if_false, scope, ctx, env)
            return build.mux_vec(cond, if_false, if_true)

        if isinstance(expr, ast.FunctionCall):
            return build.extend(self._call_function(expr, scope, env), ctx)

        raise ElaborationError(f"unsupported expression {expr!r}", expr.line)

    # ------------------------------------------------------------------
    # Function calls (inlined at each call site)
    # ------------------------------------------------------------------
    def _call_function(
        self,
        call: ast.FunctionCall,
        scope: _Scope,
        env: Optional[Dict[str, Bits]],
    ) -> Bits:
        function = scope.functions.get(call.name)
        if function is None:
            raise ElaborationError(
                f"call of unknown function {call.name!r}", call.line
            )
        if call.name in self._function_stack:
            raise ElaborationError(
                f"recursive call of function {call.name!r} "
                "(recursion cannot be synthesized)", call.line,
            )

        # Build the function's local scope: the enclosing module's
        # signals remain visible; inputs/locals/return shadow them.
        local = _Scope(
            prefix=scope.prefix,
            signals=dict(scope.signals),
            parameters=scope.parameters,
            loop_vars=dict(scope.loop_vars),
            functions=scope.functions,
        )
        msb = self._const_expr(function.msb, scope) if function.msb is not None else 0
        lsb = self._const_expr(function.lsb, scope) if function.lsb is not None else 0
        return_width = abs(msb - lsb) + 1
        local.signals[function.name] = _Signal(
            name=function.name, kind="wire", msb=msb, lsb=lsb,
            nets=self.netlist.new_nets(return_width), is_reg=True,
        )

        # Bind arguments (evaluated in the *caller's* scope and env).
        input_names: List[str] = []
        call_env: Dict[str, Optional[Bits]] = {}
        for decl in function.ports:
            port_msb = self._const_expr(decl.msb, scope) if decl.msb is not None else 0
            port_lsb = self._const_expr(decl.lsb, scope) if decl.lsb is not None else 0
            for name in decl.names:
                input_names.append(name)
                width = abs(port_msb - port_lsb) + 1
                local.signals[name] = _Signal(
                    name=name, kind="wire", msb=port_msb, lsb=port_lsb,
                    nets=self.netlist.new_nets(width), is_reg=True,
                )
        if len(input_names) != len(call.arguments):
            raise ElaborationError(
                f"function {call.name!r} takes {len(input_names)} "
                f"argument(s), got {len(call.arguments)}", call.line,
            )
        for name, argument in zip(input_names, call.arguments):
            signal = local.signals[name]
            ctx = max(signal.width, self._self_width(argument, scope))
            call_env[name] = self.builder.extend(
                self._eval(argument, scope, ctx, env), signal.width
            )

        # Local declarations: regs get env slots, integers are loop vars.
        for decl in function.locals:
            if decl.kind == "integer":
                for name in decl.names:
                    local.loop_vars.setdefault(name, 0)
                continue
            local_msb = self._const_expr(decl.msb, scope) if decl.msb is not None else 0
            local_lsb = self._const_expr(decl.lsb, scope) if decl.lsb is not None else 0
            for name in decl.names:
                width = abs(local_msb - local_lsb) + 1
                local.signals[name] = _Signal(
                    name=name, kind="wire", msb=local_msb, lsb=local_lsb,
                    nets=self.netlist.new_nets(width), is_reg=True,
                )
                call_env[name] = None

        call_env[function.name] = None
        next_env: Dict[str, Optional[Bits]] = dict(call_env)
        self._function_stack.append(call.name)
        try:
            for statement in function.body:
                self._exec(statement, local, call_env, next_env)
        finally:
            self._function_stack.pop()
        result = next_env[function.name]
        if result is None:
            raise ElaborationError(
                f"function {call.name!r} never assigns its return value",
                call.line,
            )
        return result

    def _eval_bool(
        self, expr: ast.Expr, scope: _Scope, env: Optional[Dict[str, Bits]]
    ) -> Net:
        width = self._self_width(expr, scope)
        bits = self._eval(expr, scope, width, env)
        return self.builder.to_bool(bits)

    def _eval_unary(self, expr, scope, ctx, env) -> Bits:
        build = self.builder
        op = expr.op
        if op == "~":
            return build.not_vec(self._eval(expr.operand, scope, ctx, env))
        if op == "-":
            return build.neg(self._eval(expr.operand, scope, ctx, env))
        if op == "!":
            return build.extend(
                [build.not_(self._eval_bool(expr.operand, scope, env))], ctx
            )
        width = self._self_width(expr.operand, scope)
        bits = self._eval(expr.operand, scope, width, env)
        reducers = {
            "&": build.reduce_and,
            "|": build.reduce_or,
            "^": build.reduce_xor,
        }
        if op in reducers:
            return build.extend([reducers[op](bits)], ctx)
        raise ElaborationError(f"unsupported unary operator {op!r}", expr.line)

    def _eval_binary(self, expr, scope, ctx, env) -> Bits:
        build = self.builder
        op = expr.op

        if op in ("==", "!=", "<", "<=", ">", ">="):
            width = max(
                self._self_width(expr.left, scope),
                self._self_width(expr.right, scope),
            )
            left = self._eval(expr.left, scope, width, env)
            right = self._eval(expr.right, scope, width, env)
            compare = {
                "==": build.eq, "!=": build.ne,
                "<": build.lt, "<=": build.le,
                ">": build.gt, ">=": build.ge,
            }[op]
            return build.extend([compare(left, right)], ctx)

        if op in ("&&", "||"):
            left = self._eval_bool(expr.left, scope, env)
            right = self._eval_bool(expr.right, scope, env)
            combine = build.and_ if op == "&&" else build.or_
            return build.extend([combine(left, right)], ctx)

        if op in ("<<", ">>"):
            left = self._eval(expr.left, scope, ctx, env)
            amount_const = self._try_const(expr.right, scope)
            if amount_const is not None:
                shifter = build.shl_const if op == "<<" else build.shr_const
                return shifter(left, amount_const)
            amount_width = self._self_width(expr.right, scope)
            amount = self._eval(expr.right, scope, amount_width, env)
            shifter = build.shl if op == "<<" else build.shr
            return shifter(left, amount)

        left = self._eval(expr.left, scope, ctx, env)
        right = self._eval(expr.right, scope, ctx, env)
        if op == "+":
            total, _ = build.add(left, right)
            return total
        if op == "-":
            diff, _ = build.sub(left, right)
            return diff
        if op == "*":
            return build.mul(left, right, ctx)
        if op == "/":
            quotient, _ = build.divmod_unsigned(left, right)
            return build.extend(quotient, ctx)
        if op == "%":
            _, remainder = build.divmod_unsigned(left, right)
            return build.extend(remainder, ctx)
        if op == "&":
            return build.and_vec(left, right)
        if op == "|":
            return build.or_vec(left, right)
        if op == "^":
            return build.xor_vec(left, right)
        raise ElaborationError(f"unsupported binary operator {op!r}", expr.line)

    def _read_signal(
        self,
        name: str,
        scope: _Scope,
        env: Optional[Dict[str, Bits]],
        line: int,
    ) -> Bits:
        if env is not None and name in env:
            value = env[name]
            if value is None:
                raise ElaborationError(
                    f"{name!r} read before assignment in combinational always "
                    "block (latch inferred)", line,
                )
            return value
        return self._signal(name, scope, line).nets

    def _select_part(
        self, expr: ast.PartSelect, scope: _Scope, env: Optional[Dict[str, Bits]]
    ) -> Bits:
        signal = self._signal(expr.base, scope, expr.line)
        bits = self._read_signal(expr.base, scope, env, expr.line)
        msb = self._const_expr(expr.msb, scope)
        lsb = self._const_expr(expr.lsb, scope)
        msb_pos = signal.position(msb, expr.line)
        lsb_pos = signal.position(lsb, expr.line)
        if lsb_pos > msb_pos:
            raise ElaborationError(
                f"part select [{msb}:{lsb}] reversed relative to declaration "
                f"of {expr.base!r}", expr.line,
            )
        return bits[lsb_pos:msb_pos + 1]

    # ------------------------------------------------------------------
    # Continuous assignments
    # ------------------------------------------------------------------
    def _continuous_assign(self, item: ast.ContinuousAssign, scope: _Scope) -> None:
        target_nets = self._lvalue_nets(item.target, scope)
        ctx = max(len(target_nets), self._self_width(item.value, scope))
        value = self.builder.extend(
            self._eval(item.value, scope, ctx), len(target_nets)
        )
        for target, source in zip(target_nets, value):
            self.unify.union(target, source)

    def _lvalue_nets(self, expr: ast.Expr, scope: _Scope) -> Bits:
        """The storage nets an lvalue denotes (LSB first)."""
        if isinstance(expr, ast.Ident):
            return list(self._signal(expr.name, scope, expr.line).nets)
        if isinstance(expr, ast.Index):
            signal = self._signal(expr.base, scope, expr.line)
            index = self._const_expr(expr.index, scope)
            return [signal.nets[signal.position(index, expr.line)]]
        if isinstance(expr, ast.PartSelect):
            return self._select_part(expr, scope, env=None)
        if isinstance(expr, ast.Concat):
            collected: Bits = []
            for part in reversed(expr.parts):
                collected.extend(self._lvalue_nets(part, scope))
            return collected
        raise ElaborationError(f"invalid assignment target {expr!r}", expr.line)

    # ------------------------------------------------------------------
    # Always blocks
    # ------------------------------------------------------------------
    def _always(self, item: ast.Always, scope: _Scope) -> None:
        edges = [s for s in item.sensitivity if s.edge in ("posedge", "negedge")]
        if edges and len(edges) != len(item.sensitivity):
            raise ElaborationError(
                "mixed edge and level sensitivity is not supported", item.line
            )
        if len(edges) > 1:
            raise ElaborationError(
                "multiple clock edges (async resets) are not supported", item.line
            )

        targets = sorted(self._collect_targets(item.body, scope))
        if not targets:
            return
        for name in targets:
            signal = self._signal(name, scope, item.line)
            if not signal.is_reg:
                raise ElaborationError(
                    f"{name!r} assigned in always block but not declared reg",
                    item.line,
                )

        if edges:
            env: Dict[str, Optional[Bits]] = {
                name: list(scope.signals[name].nets) for name in targets
            }
            next_env = dict(env)
            self._exec(item.body, scope, env, next_env)
            negedge = edges[0].edge == "negedge"
            for name in targets:
                signal = scope.signals[name]
                for d_net, q_net in zip(next_env[name], signal.nets):
                    self.netlist.add_cell(
                        "DFF_N" if negedge else "DFF_P",
                        {"D": d_net, "Q": q_net},
                    )
        else:
            env = {name: None for name in targets}
            next_env = dict(env)
            self._exec(item.body, scope, env, next_env)
            for name in targets:
                value = next_env[name]
                if value is None:
                    raise ElaborationError(
                        f"{name!r} not assigned on all paths of combinational "
                        "always block (latch inferred)", item.line,
                    )
                for target, source in zip(scope.signals[name].nets, value):
                    self.unify.union(target, source)

    def _collect_targets(self, stmt: ast.Stmt, scope: _Scope) -> Set[str]:
        out: Set[str] = set()

        def lvalue_names(expr: ast.Expr) -> None:
            if isinstance(expr, (ast.Ident,)):
                out.add(expr.name)
            elif isinstance(expr, (ast.Index, ast.PartSelect)):
                out.add(expr.base)
            elif isinstance(expr, ast.Concat):
                for part in expr.parts:
                    lvalue_names(part)

        def walk(node: Optional[ast.Stmt]) -> None:
            if node is None:
                return
            if isinstance(node, ast.Block):
                for child in node.statements:
                    walk(child)
            elif isinstance(node, ast.Assignment):
                lvalue_names(node.target)
            elif isinstance(node, ast.If):
                walk(node.then_branch)
                walk(node.else_branch)
            elif isinstance(node, ast.Case):
                for case_item in node.items:
                    walk(case_item.body)
            elif isinstance(node, ast.For):
                walk(node.body)

        walk(stmt)
        return {name for name in out if name not in scope.loop_vars}

    def _exec(
        self,
        stmt: ast.Stmt,
        scope: _Scope,
        env: Dict[str, Optional[Bits]],
        next_env: Dict[str, Optional[Bits]],
    ) -> None:
        """Symbolically execute one statement.

        ``env`` holds values visible to reads (blocking semantics);
        ``next_env`` holds end-of-block values (what flip-flops latch).
        """
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._exec(child, scope, env, next_env)
            return

        if isinstance(stmt, ast.Assignment):
            self._exec_assignment(stmt, scope, env, next_env)
            return

        if isinstance(stmt, ast.If):
            cond = self._eval_bool(stmt.cond, scope, env)
            env_then, next_then = dict(env), dict(next_env)
            env_else, next_else = dict(env), dict(next_env)
            if stmt.then_branch is not None:
                self._exec(stmt.then_branch, scope, env_then, next_then)
            if stmt.else_branch is not None:
                self._exec(stmt.else_branch, scope, env_else, next_else)
            for key in env:
                env[key] = self._merge(cond, env_then[key], env_else[key], stmt.line)
            for key in next_env:
                next_env[key] = self._merge(
                    cond, next_then[key], next_else[key], stmt.line
                )
            return

        if isinstance(stmt, ast.Case):
            self._exec(self._desugar_case(stmt, scope), scope, env, next_env)
            return

        if isinstance(stmt, ast.For):
            self._exec_for(stmt, scope, env, next_env)
            return

        raise ElaborationError(f"unsupported statement {stmt!r}", stmt.line)

    def _merge(
        self,
        cond: Net,
        then_value: Optional[Bits],
        else_value: Optional[Bits],
        line: int,
    ) -> Optional[Bits]:
        if then_value is None and else_value is None:
            return None
        if then_value is None or else_value is None:
            # Assigned on one path only.  For sequential blocks env never
            # holds None, so this is a combinational latch.
            raise ElaborationError(
                "signal assigned on only one branch of a combinational "
                "always block (latch inferred)", line,
            )
        return self.builder.mux_vec(cond, else_value, then_value)

    def _exec_assignment(self, stmt, scope, env, next_env) -> None:
        build = self.builder
        read_env = env  # reads see blocking updates
        target_width = self._lvalue_width(stmt.target, scope)
        ctx = max(target_width, self._self_width(stmt.value, scope))
        value = build.extend(
            self._eval(stmt.value, scope, ctx, read_env), target_width
        )
        self._store(stmt.target, value, scope, env, next_env, stmt.blocking)

    def _lvalue_width(self, expr: ast.Expr, scope: _Scope) -> int:
        if isinstance(expr, ast.Ident):
            return self._signal(expr.name, scope, expr.line).width
        if isinstance(expr, ast.Index):
            return 1
        if isinstance(expr, ast.PartSelect):
            msb = self._const_expr(expr.msb, scope)
            lsb = self._const_expr(expr.lsb, scope)
            return abs(msb - lsb) + 1
        if isinstance(expr, ast.Concat):
            return sum(self._lvalue_width(p, scope) for p in expr.parts)
        raise ElaborationError(f"invalid assignment target {expr!r}", expr.line)

    def _store(self, target, value: Bits, scope, env, next_env, blocking: bool) -> None:
        if isinstance(target, ast.Ident):
            self._store_name(target.name, value, env, next_env, blocking, target.line, scope)
            return
        if isinstance(target, (ast.Index, ast.PartSelect)):
            name = target.base
            signal = self._signal(name, scope, target.line)
            current = self._current_value(name, env, next_env, scope, target.line)
            new_bits = list(current)
            if isinstance(target, ast.Index):
                index = self._const_expr(target.index, scope)
                new_bits[signal.position(index, target.line)] = value[0]
            else:
                msb = self._const_expr(target.msb, scope)
                lsb = self._const_expr(target.lsb, scope)
                low = signal.position(lsb, target.line)
                high = signal.position(msb, target.line)
                new_bits[low:high + 1] = value
            self._store_name(name, new_bits, env, next_env, blocking, target.line, scope)
            return
        if isinstance(target, ast.Concat):
            offset = 0
            for part in reversed(target.parts):
                width = self._lvalue_width(part, scope)
                self._store(
                    part, value[offset:offset + width], scope, env, next_env, blocking
                )
                offset += width
            return
        raise ElaborationError(f"invalid assignment target {target!r}", target.line)

    def _current_value(self, name, env, next_env, scope, line) -> Bits:
        """Value for read-modify-write of a partial assignment."""
        value = env.get(name)
        if value is None and name in env:
            raise ElaborationError(
                f"partial assignment to {name!r} before any full assignment "
                "in combinational always block", line,
            )
        if value is not None:
            return value
        return self._signal(name, scope, line).nets

    @staticmethod
    def _store_name(name, value, env, next_env, blocking, line, scope) -> None:
        if name not in env:
            raise ElaborationError(
                f"assignment to {name!r} which is not a collected target", line
            )
        next_env[name] = list(value)
        if blocking:
            env[name] = list(value)

    def _desugar_case(self, stmt: ast.Case, scope: _Scope) -> ast.Stmt:
        """Lower a case statement to an if/else chain."""
        default: Optional[ast.Stmt] = None
        chain: Optional[ast.Stmt] = None
        items = []
        for item in stmt.items:
            if not item.labels:
                default = item.body
            else:
                items.append(item)
        chain = default if default is not None else ast.Block(line=stmt.line)
        for item in reversed(items):
            cond: Optional[ast.Expr] = None
            for label in item.labels:
                test = ast.Binary(
                    line=item.line, op="==", left=stmt.subject, right=label
                )
                cond = test if cond is None else ast.Binary(
                    line=item.line, op="||", left=cond, right=test
                )
            chain = ast.If(
                line=item.line, cond=cond, then_branch=item.body, else_branch=chain
            )
        return chain

    def _exec_for(self, stmt: ast.For, scope, env, next_env) -> None:
        if stmt.var != stmt.update_var:
            raise ElaborationError(
                "for loop must update its own variable "
                f"({stmt.var!r} vs {stmt.update_var!r})", stmt.line,
            )
        if stmt.var not in scope.loop_vars:
            raise ElaborationError(
                f"loop variable {stmt.var!r} must be declared integer or genvar",
                stmt.line,
            )
        scope.loop_vars[stmt.var] = self._const_expr(stmt.init, scope)
        iterations = 0
        while True:
            cond = self._try_const(stmt.cond, scope)
            if cond is None:
                raise ElaborationError(
                    "for-loop condition must be compile-time constant "
                    "(loops with unknown trip count cannot be synthesized)",
                    stmt.line,
                )
            if not cond:
                break
            self._exec(stmt.body, scope, env, next_env)
            scope.loop_vars[stmt.var] = self._const_expr(stmt.update, scope)
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise ElaborationError("for loop exceeds unroll limit", stmt.line)

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------
    def _instance(self, item: ast.Instance, scope: _Scope) -> None:
        try:
            submodule = self.source.module(item.module)
        except KeyError:
            raise ElaborationError(
                f"unknown module {item.module!r}", item.line
            ) from None
        overrides = {
            name: self._const_expr(expr, scope) for name, expr in item.parameters
        }
        prefix = f"{scope.prefix}{item.name}."
        child = self._elaborate_module(submodule, prefix, overrides)

        # Resolve connections to (port name -> expr).
        connections: Dict[str, Optional[ast.Expr]] = {}
        positional = all(c.port is None for c in item.connections)
        if positional and item.connections:
            if len(item.connections) > len(submodule.port_order):
                raise ElaborationError("too many positional connections", item.line)
            for port_name, conn in zip(submodule.port_order, item.connections):
                connections[port_name] = conn.expr
        else:
            for conn in item.connections:
                if conn.port is None:
                    raise ElaborationError(
                        "cannot mix positional and named connections", item.line
                    )
                if conn.port in connections:
                    raise ElaborationError(
                        f"port {conn.port!r} connected twice", item.line
                    )
                connections[conn.port] = conn.expr

        for port_name in submodule.port_order:
            signal = child.signals[port_name]
            expr = connections.get(port_name)
            if expr is None:
                if signal.kind == "input":
                    raise ElaborationError(
                        f"input port {port_name!r} of {item.name!r} unconnected",
                        item.line,
                    )
                continue  # unconnected output is fine
            if signal.kind == "input":
                ctx = max(signal.width, self._self_width(expr, scope))
                value = self.builder.extend(
                    self._eval(expr, scope, ctx), signal.width
                )
                for port_net, value_net in zip(signal.nets, value):
                    self.unify.union(port_net, value_net)
            elif signal.kind == "output":
                parent_nets = self._lvalue_nets(expr, scope)
                width = min(len(parent_nets), signal.width)
                for parent_net, port_net in zip(parent_nets[:width], signal.nets[:width]):
                    self.unify.union(parent_net, port_net)
                if len(parent_nets) > signal.width:
                    # Zero-extend: upper parent bits are constant 0.
                    zero = self.builder.const_bit(False)
                    for parent_net in parent_nets[signal.width:]:
                        self.unify.union(parent_net, zero)
            else:
                raise ElaborationError(
                    f"port {port_name!r} is not an input or output", item.line
                )


def elaborate(
    source: Union[str, ast.SourceFile],
    top: Optional[str] = None,
    parameters: Optional[Dict[str, int]] = None,
) -> Netlist:
    """Elaborate Verilog source to a gate-level netlist.

    Args:
        source: Verilog text or an already-parsed :class:`SourceFile`.
        top: name of the top module (defaults to the last one defined).
        parameters: overrides for the top module's parameters.

    Returns:
        A validated :class:`~repro.synth.netlist.Netlist`.
    """
    if isinstance(source, str):
        source = parse(source)
    return _Elaborator(source).run(top=top, parameters=parameters)
