"""Error types for the Verilog frontend."""

from __future__ import annotations

from typing import Optional


class VerilogError(Exception):
    """Base class: any problem with the source program."""

    def __init__(self, message: str, line: Optional[int] = None, column: Optional[int] = None):
        location = ""
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            location = f" ({location})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class VerilogSyntaxError(VerilogError):
    """Tokenizer or parser failure."""


class ElaborationError(VerilogError):
    """Semantic failure: unknown identifiers, width problems, latches,
    non-constant loop bounds, unsupported constructs."""
