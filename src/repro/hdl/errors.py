"""Error types for the Verilog frontend."""

from __future__ import annotations

from typing import Optional


def format_diagnostic(
    message: str,
    line: Optional[int] = None,
    column: Optional[int] = None,
    source: Optional[str] = None,
) -> str:
    """One-line diagnostic in the frontend's house style.

    ``message (line N, column M)`` with an optional ``source:`` prefix
    naming where the bad input came from (a file, an option such as
    ``--pin``, ...).  Shared by :class:`VerilogError` and the CLI's
    structured option diagnostics so every user-facing error reads the
    same way.
    """
    location = ""
    if line is not None:
        location = f"line {line}"
        if column is not None:
            location += f", column {column}"
        location = f" ({location})"
    prefix = f"{source}: " if source else ""
    return f"{prefix}{message}{location}"


class VerilogError(Exception):
    """Base class: any problem with the source program."""

    def __init__(self, message: str, line: Optional[int] = None, column: Optional[int] = None):
        super().__init__(format_diagnostic(message, line, column))
        self.line = line
        self.column = column


class VerilogSyntaxError(VerilogError):
    """Tokenizer or parser failure."""


class ElaborationError(VerilogError):
    """Semantic failure: unknown identifiers, width problems, latches,
    non-constant loop bounds, unsupported constructs."""
