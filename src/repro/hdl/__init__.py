"""Verilog frontend (Section 4.1).

The paper settles on Verilog as the source language because it gives
precise control over bit widths (qubits are scarce) and compiles to a
small set of primitives.  This package parses and elaborates the
synthesizable Verilog subset the paper's examples use -- multi-bit
arithmetic and relational operators, conditionals, module hierarchy,
``assign``, ``always`` blocks with flip-flop inference, case statements,
and constant-bound ``for`` loops -- down to the gate-level netlist IR of
:mod:`repro.synth`.

Unsupported Verilog (matching the shortcomings the paper lists in
Section 4.1: no unbounded loops, no floating point, no recursion)
raises :class:`~repro.hdl.errors.VerilogError` with a source location.
"""

from repro.hdl.errors import VerilogError, VerilogSyntaxError, ElaborationError
from repro.hdl.lexer import tokenize, Token
from repro.hdl.parser import parse
from repro.hdl.elaborator import elaborate

__all__ = [
    "VerilogError",
    "VerilogSyntaxError",
    "ElaborationError",
    "tokenize",
    "Token",
    "parse",
    "elaborate",
]
