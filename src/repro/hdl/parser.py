"""Recursive-descent parser for the supported Verilog subset.

Covers everything the paper's listings use (Listings 3, 5, 6, 7 and the
Figure 2 example) plus the usual synthesizable staples: ANSI and
non-ANSI port styles, parameters, module instantiation (named and
positional), always blocks with edge or level sensitivity, case
statements, and constant-bound for loops.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hdl import ast_nodes as ast
from repro.hdl.errors import VerilogSyntaxError
from repro.hdl.lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        token = self.peek()
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise VerilogSyntaxError(
                f"expected {want!r}, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def error(self, message: str) -> VerilogSyntaxError:
        token = self.peek()
        return VerilogSyntaxError(message, token.line, token.column)

    # -- top level --------------------------------------------------------
    def parse_source(self) -> ast.SourceFile:
        modules = []
        while not self.check("eof"):
            modules.append(self.parse_module())
        if not modules:
            raise self.error("no modules in source")
        return ast.SourceFile(modules=modules)

    def parse_module(self) -> ast.Module:
        start = self.expect("keyword", "module")
        name = self.expect("ident").value
        module = ast.Module(line=start.line, name=name)
        if self.accept("op", "#"):
            self._parse_parameter_header(module)
        if self.accept("op", "("):
            self._parse_port_header(module)
        self.expect("op", ";")
        while not self.check("keyword", "endmodule"):
            module.items.extend(self.parse_item())
        self.expect("keyword", "endmodule")
        return module

    def _parse_parameter_header(self, module: ast.Module) -> None:
        self.expect("op", "(")
        while True:
            self.expect("keyword", "parameter")
            name = self.expect("ident").value
            self.expect("op", "=")
            value = self.parse_expression()
            module.items.append(ast.ParamDecl(name=name, value=value))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")

    def _parse_port_header(self, module: ast.Module) -> None:
        if self.accept("op", ")"):
            return
        if self.check("keyword") and self.peek().value in ("input", "output", "inout"):
            self._parse_ansi_ports(module)
        else:
            while True:
                module.port_order.append(self.expect("ident").value)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")

    def _parse_ansi_ports(self, module: ast.Module) -> None:
        direction = None
        is_reg = False
        signed = False
        msb = lsb = None
        while True:
            token = self.peek()
            if token.kind == "keyword" and token.value in ("input", "output", "inout"):
                direction = self.advance().value
                is_reg = bool(self.accept("keyword", "reg"))
                signed = bool(self.accept("keyword", "signed"))
                msb, lsb = self._maybe_range()
            elif direction is None:
                raise self.error("port direction expected")
            name = self.expect("ident").value
            module.port_order.append(name)
            module.items.append(
                ast.Decl(
                    line=token.line,
                    kind=direction,
                    msb=msb,
                    lsb=lsb,
                    names=[name],
                    is_reg=is_reg,
                    signed=signed,
                )
            )
            if not self.accept("op", ","):
                break
        self.expect("op", ")")

    def _maybe_range(self) -> Tuple[Optional[ast.Expr], Optional[ast.Expr]]:
        if self.accept("op", "["):
            msb = self.parse_expression()
            self.expect("op", ":")
            lsb = self.parse_expression()
            self.expect("op", "]")
            return msb, lsb
        return None, None

    # -- module items -------------------------------------------------------
    def parse_item(self) -> List[ast.Item]:
        token = self.peek()
        if token.kind == "keyword":
            if token.value in ("input", "output", "inout", "wire", "reg", "integer", "genvar"):
                return [self.parse_decl()]
            if token.value in ("parameter", "localparam"):
                return [self.parse_param_decl()]
            if token.value == "assign":
                return [self.parse_continuous_assign()]
            if token.value == "always":
                return [self.parse_always()]
            if token.value == "function":
                return [self.parse_function()]
            if token.value == "generate":
                return [self.parse_generate()]
            if token.value in ("initial", "while"):
                raise self.error(f"{token.value!r} blocks are not supported")
        if token.kind == "ident":
            return [self.parse_instance()]
        raise self.error(f"unexpected token {token.value!r} in module body")

    def parse_decl(self) -> ast.Decl:
        token = self.advance()
        kind = token.value
        is_reg = False
        if kind in ("input", "output", "inout") and self.accept("keyword", "reg"):
            is_reg = True
        if kind == "wire" and self.accept("keyword", "reg"):
            raise self.error("'wire reg' is not legal")
        signed = bool(self.accept("keyword", "signed"))
        msb, lsb = self._maybe_range()
        names = []
        initializers = {}

        def one_name():
            name = self.expect("ident").value
            names.append(name)
            if self.accept("op", "="):
                if kind != "wire":
                    raise self.error(
                        "declaration assignments are only legal on wires"
                    )
                initializers[name] = self.parse_expression()

        one_name()
        while self.accept("op", ","):
            one_name()
        if self.accept("op", "["):
            raise self.error("memories (arrays of regs) are not supported")
        self.expect("op", ";")
        return ast.Decl(
            line=token.line, kind=kind, msb=msb, lsb=lsb, names=names,
            is_reg=is_reg, signed=signed, initializers=initializers,
        )

    def parse_function(self) -> ast.FunctionDecl:
        token = self.expect("keyword", "function")
        self.accept("keyword", "signed")
        msb, lsb = self._maybe_range()
        name = self.expect("ident").value
        self.expect("op", ";")
        ports: list = []
        local_decls: list = []
        while self.check("keyword") and self.peek().value in (
            "input", "reg", "integer",
        ):
            decl = self.parse_decl()
            if decl.kind == "input":
                ports.append(decl)
            else:
                local_decls.append(decl)
        if not ports:
            raise self.error("functions need at least one input")
        body = [self.parse_statement()]
        self.expect("keyword", "endfunction")
        return ast.FunctionDecl(
            line=token.line, name=name, msb=msb, lsb=lsb,
            ports=ports, locals=local_decls, body=body,
        )

    def parse_param_decl(self) -> ast.ParamDecl:
        token = self.advance()
        local = token.value == "localparam"
        self._maybe_range()  # parameter [31:0] N = ... (range ignored)
        name = self.expect("ident").value
        self.expect("op", "=")
        value = self.parse_expression()
        self.expect("op", ";")
        return ast.ParamDecl(line=token.line, name=name, value=value, local=local)

    def parse_generate(self) -> ast.GenerateFor:
        token = self.expect("keyword", "generate")
        self.expect("keyword", "for")
        self.expect("op", "(")
        var = self.expect("ident").value
        self.expect("op", "=")
        init = self.parse_expression()
        self.expect("op", ";")
        cond = self.parse_expression()
        self.expect("op", ";")
        update_var = self.expect("ident").value
        self.expect("op", "=")
        update = self.parse_expression()
        self.expect("op", ")")
        self.expect("keyword", "begin")
        self.expect("op", ":")
        label = self.expect("ident").value
        items: list = []
        while not self.check("keyword", "end"):
            items.extend(self.parse_item())
        self.expect("keyword", "end")
        self.expect("keyword", "endgenerate")
        for item in items:
            if not isinstance(item, (ast.ContinuousAssign, ast.Instance)):
                raise self.error(
                    "generate blocks may contain only assigns and instances "
                    "(declare wires outside the block)"
                )
        return ast.GenerateFor(
            line=token.line, var=var, init=init, cond=cond,
            update_var=update_var, update=update, label=label, items=items,
        )

    def parse_continuous_assign(self) -> ast.ContinuousAssign:
        token = self.expect("keyword", "assign")
        target = self.parse_lvalue()
        self.expect("op", "=")
        value = self.parse_expression()
        self.expect("op", ";")
        return ast.ContinuousAssign(line=token.line, target=target, value=value)

    def parse_always(self) -> ast.Always:
        token = self.expect("keyword", "always")
        self.expect("op", "@")
        sensitivity: List[ast.SensitivityItem] = []
        if self.accept("op", "*"):
            sensitivity.append(ast.SensitivityItem(edge="star"))
        else:
            self.expect("op", "(")
            if self.accept("op", "*"):
                sensitivity.append(ast.SensitivityItem(edge="star"))
            else:
                while True:
                    edge = "level"
                    if self.accept("keyword", "posedge"):
                        edge = "posedge"
                    elif self.accept("keyword", "negedge"):
                        edge = "negedge"
                    signal = self.expect("ident").value
                    sensitivity.append(
                        ast.SensitivityItem(edge=edge, signal=signal)
                    )
                    if not (self.accept("keyword", "or") or self.accept("op", ",")):
                        break
            self.expect("op", ")")
        body = self.parse_statement()
        return ast.Always(line=token.line, sensitivity=sensitivity, body=body)

    def parse_instance(self) -> ast.Instance:
        module = self.expect("ident").value
        parameters: List[Tuple[str, ast.Expr]] = []
        if self.accept("op", "#"):
            self.expect("op", "(")
            while True:
                self.expect("op", ".")
                pname = self.expect("ident").value
                self.expect("op", "(")
                parameters.append((pname, self.parse_expression()))
                self.expect("op", ")")
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        token = self.expect("ident")
        name = token.value
        self.expect("op", "(")
        connections: List[ast.PortConnection] = []
        if not self.check("op", ")"):
            while True:
                if self.accept("op", "."):
                    port = self.expect("ident").value
                    self.expect("op", "(")
                    expr = None if self.check("op", ")") else self.parse_expression()
                    self.expect("op", ")")
                    connections.append(ast.PortConnection(port=port, expr=expr))
                else:
                    connections.append(
                        ast.PortConnection(port=None, expr=self.parse_expression())
                    )
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.Instance(
            line=token.line, module=module, name=name,
            connections=connections, parameters=parameters,
        )

    # -- statements ---------------------------------------------------------
    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if self.accept("keyword", "begin"):
            block = ast.Block(line=token.line)
            while not self.check("keyword", "end"):
                block.statements.append(self.parse_statement())
            self.expect("keyword", "end")
            return block
        if self.accept("keyword", "if"):
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            then_branch = self.parse_statement()
            else_branch = None
            if self.accept("keyword", "else"):
                else_branch = self.parse_statement()
            return ast.If(
                line=token.line, cond=cond,
                then_branch=then_branch, else_branch=else_branch,
            )
        if token.kind == "keyword" and token.value in ("case", "casez", "casex"):
            if token.value != "case":
                raise self.error(f"{token.value} is not supported (wildcards)")
            return self.parse_case()
        if self.accept("keyword", "for"):
            return self.parse_for(token)
        if self.accept("op", ";"):
            return ast.Block(line=token.line)  # null statement
        return self.parse_assignment_statement()

    def parse_case(self) -> ast.Case:
        token = self.expect("keyword", "case")
        self.expect("op", "(")
        subject = self.parse_expression()
        self.expect("op", ")")
        case = ast.Case(line=token.line, subject=subject)
        while not self.check("keyword", "endcase"):
            item = ast.CaseItem(line=self.peek().line)
            if self.accept("keyword", "default"):
                self.accept("op", ":")
            else:
                item.labels.append(self.parse_expression())
                while self.accept("op", ","):
                    item.labels.append(self.parse_expression())
                self.expect("op", ":")
            item.body = self.parse_statement()
            case.items.append(item)
        self.expect("keyword", "endcase")
        return case

    def parse_for(self, token: Token) -> ast.For:
        self.expect("op", "(")
        var = self.expect("ident").value
        self.expect("op", "=")
        init = self.parse_expression()
        self.expect("op", ";")
        cond = self.parse_expression()
        self.expect("op", ";")
        update_var = self.expect("ident").value
        self.expect("op", "=")
        update = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(
            line=token.line, var=var, init=init, cond=cond,
            update_var=update_var, update=update, body=body,
        )

    def parse_assignment_statement(self) -> ast.Stmt:
        token = self.peek()
        target = self.parse_lvalue()
        if self.accept("op", "<="):
            blocking = False
        elif self.accept("op", "="):
            blocking = True
        else:
            raise self.error("expected '=' or '<=' in assignment")
        value = self.parse_expression()
        self.expect("op", ";")
        return ast.Assignment(
            line=token.line, target=target, value=value, blocking=blocking
        )

    # -- lvalues --------------------------------------------------------------
    def parse_lvalue(self) -> ast.Expr:
        token = self.peek()
        if self.accept("op", "{"):
            parts = [self.parse_lvalue()]
            while self.accept("op", ","):
                parts.append(self.parse_lvalue())
            self.expect("op", "}")
            return ast.Concat(line=token.line, parts=parts)
        name = self.expect("ident").value
        if self.accept("op", "["):
            first = self.parse_expression()
            if self.accept("op", ":"):
                second = self.parse_expression()
                self.expect("op", "]")
                return ast.PartSelect(line=token.line, base=name, msb=first, lsb=second)
            self.expect("op", "]")
            return ast.Index(line=token.line, base=name, index=first)
        return ast.Ident(line=token.line, name=name)

    # -- expressions -------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            if_true = self.parse_expression()
            self.expect("op", ":")
            if_false = self.parse_expression()
            return ast.Ternary(
                line=cond.line, cond=cond, if_true=if_true, if_false=if_false
            )
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op":
                break
            precedence = _PRECEDENCE.get(token.value, 0)
            if precedence < min_precedence:
                break
            op = self.advance().value
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(line=token.line, op=op, left=left, right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.value in _UNARY_OPS:
            op = self.advance().value
            operand = self.parse_unary()
            if op == "+":
                return operand
            return ast.Unary(line=token.line, op=op, operand=operand)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value, width = token.value
            return ast.Number(line=token.line, value=value, width=width)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if self.accept("op", "{"):
            first = self.parse_expression()
            if self.accept("op", "{"):
                # Replication {count{value}}.
                value = self.parse_expression()
                self.expect("op", "}")
                self.expect("op", "}")
                return ast.Repeat(line=token.line, count=first, value=value)
            parts = [first]
            while self.accept("op", ","):
                parts.append(self.parse_expression())
            self.expect("op", "}")
            return ast.Concat(line=token.line, parts=parts)
        if token.kind == "ident":
            self.advance()
            name = token.value
            if self.accept("op", "("):
                arguments = [self.parse_expression()]
                while self.accept("op", ","):
                    arguments.append(self.parse_expression())
                self.expect("op", ")")
                return ast.FunctionCall(
                    line=token.line, name=name, arguments=arguments
                )
            if self.accept("op", "["):
                first = self.parse_expression()
                if self.accept("op", ":"):
                    second = self.parse_expression()
                    self.expect("op", "]")
                    return ast.PartSelect(
                        line=token.line, base=name, msb=first, lsb=second
                    )
                self.expect("op", "]")
                return ast.Index(line=token.line, base=name, index=first)
            return ast.Ident(line=token.line, name=name)
        raise self.error(f"unexpected token {token.value!r} in expression")


def parse(source: str) -> ast.SourceFile:
    """Parse Verilog source text into an AST."""
    return _Parser(tokenize(source)).parse_source()
