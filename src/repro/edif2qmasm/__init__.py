"""edif2qmasm: translate EDIF netlists into QMASM programs (Section 4.3).

The approach is the paper's: each netlist *cell* instantiates the
corresponding standard-cell macro from ``stdcell.qmasm``; each *net*
becomes a bias for the connected variables to share a value (a QMASM
``=`` chain); ground/power pseudo-cells become H_GND / H_VCC weights;
and module ports get readable top-level names so results come back in
the programmer's terms.
"""

from repro.edif2qmasm.translate import netlist_to_qmasm, edif_to_qmasm, TranslationError

__all__ = ["netlist_to_qmasm", "edif_to_qmasm", "TranslationError"]
