"""Staged pass-pipeline infrastructure for the compiler and runner.

The paper's toolchain is a straight line (Verilog -> EDIF -> QMASM ->
logical Ising -> embedded physical Ising -> anneal), and qmasm itself
separates assemble / embed / anneal phases.  This module makes that
structure explicit: every lowering and execution step is a
:class:`Stage` with a uniform ``run(artifact, context)`` interface, and
a :class:`PassManager` drives an ordered stage list while recording, for
every stage, wall time and artifact-size counters into a
:class:`PipelineStats`.

The payoff is threefold:

* **observability** -- ``CompiledProgram.stats`` and ``RunResult.stats``
  expose a per-stage timing/size table (``--time-passes`` on the CLI),
  plus an optional trace-event callback for external profilers;
* **configurability** -- drivers hold plain stage lists that callers can
  reorder, extend, or replace;
* **cacheability** -- stages can consult the content-addressed caches in
  :mod:`repro.core.cache` and mark their records as cache hits, so
  repeated compilations and repeated embeddings of the same logical
  graph are skipped entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.core import trace as _trace
from repro.core.deadline import Deadline
from repro.core.trace import MetricsRegistry

#: A trace event is a plain dict: ``{"stage": name, "event": "begin"}``
#: or ``{"stage": name, "event": "end", "wall_time_s": float,
#: "cached": bool, "skipped": bool, "counters": {...}}``.
TraceCallback = Callable[[Dict[str, Any]], None]


@dataclass
class StageRecord:
    """One stage's observation: how long it took and what it produced.

    Attributes:
        name: the stage's name.
        wall_time_s: wall-clock seconds spent inside the stage.
        counters: artifact-size counters after the stage ran (cells,
            variables, couplers, lines, ...), stage-specific.
        cached: the stage satisfied its work from a cache.
        skipped: the stage did not apply (e.g. ``unroll`` on a purely
            combinational design) and passed the artifact through.
    """

    name: str
    wall_time_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    cached: bool = False
    skipped: bool = False


class PipelineStats:
    """Ordered per-stage records for one pipeline execution."""

    def __init__(self) -> None:
        self.records: List[StageRecord] = []

    # -- collection ----------------------------------------------------
    def record(self, record: StageRecord) -> None:
        self.records.append(record)

    # -- access --------------------------------------------------------
    def __iter__(self) -> Iterator[StageRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, name: str) -> bool:
        return any(r.name == name for r in self.records)

    def __getitem__(self, name: str) -> StageRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(f"no stage {name!r} in pipeline stats")

    def stage_names(self) -> List[str]:
        return [r.name for r in self.records]

    def executed_names(self) -> List[str]:
        """Names of stages that actually ran (not skipped)."""
        return [r.name for r in self.records if not r.skipped]

    def total_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.records)

    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    # -- rendering -----------------------------------------------------
    def format_table(self, title: Optional[str] = None) -> str:
        """An aligned, human-readable per-stage table.

        This is what ``--time-passes`` prints::

            stage             time      notes
            elaborate         0.0021s   cells=13
            ...
            total             0.0214s
        """
        rows: List[tuple] = []
        for record in self.records:
            notes = []
            if record.skipped:
                notes.append("skipped")
            if record.cached:
                notes.append("cached")
            notes.extend(
                f"{key}={_format_count(value)}"
                for key, value in record.counters.items()
            )
            rows.append((record.name, f"{record.wall_time_s:.4f}s", " ".join(notes)))
        rows.append(("total", f"{self.total_time_s():.4f}s", ""))
        name_w = max(len(r[0]) for r in rows)
        time_w = max(len(r[1]) for r in rows)
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{'stage':<{name_w}}  {'time':>{time_w}}  notes")
        for name, elapsed, notes in rows:
            lines.append(f"{name:<{name_w}}  {elapsed:>{time_w}}  {notes}".rstrip())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PipelineStats({len(self.records)} stages, "
            f"{self.total_time_s():.4f}s)"
        )


def _format_count(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3g}"
    if isinstance(value, (int, float)):
        return str(int(value))
    # Non-numeric counters (e.g. the sweep-kernel name) pass through.
    return str(value)


class PipelineContext:
    """Everything a stage may consult besides the artifact itself.

    Attributes:
        options: the driver's option object (:class:`CompileOptions` for
            compilation, a :class:`~repro.qmasm.runner.RunOptions` for
            execution).
        seed: the driver's RNG seed, for stages with randomized behavior.
        stats: the per-stage record sink stages record into.
        metrics: the run-scoped :class:`~repro.core.trace.MetricsRegistry`
            stages record counters into.  Parented to the ambient
            process registry, so every increment is visible both on this
            run's result and in the process-wide summary without ever
            being computed twice.
        trace: optional callback receiving begin/end trace events.
        deadline: optional :class:`~repro.core.deadline.Deadline` the
            :class:`PassManager` enforces between stages (and stages
            may thread into their samplers for cooperative
            interruption).  None means unbounded.
        scratch: shared mutable storage for stage-to-stage side data
            that is not part of the artifact proper (e.g. the lazily
            constructed machine).
    """

    def __init__(
        self,
        options: Any = None,
        seed: Optional[int] = None,
        trace: Optional[TraceCallback] = None,
        stats: Optional[PipelineStats] = None,
        metrics: Optional[MetricsRegistry] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.options = options
        self.seed = seed
        self.trace = trace
        self.deadline = deadline
        self.stats = stats if stats is not None else PipelineStats()
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(parent=_trace.metrics())
        )
        self.scratch: Dict[str, Any] = {}
        self._cached = False
        self._extra_counters: Dict[str, float] = {}

    # -- stage-facing hooks --------------------------------------------
    def mark_cached(self) -> None:
        """Flag the currently running stage's record as a cache hit."""
        self._cached = True

    def add_counters(self, **counters: float) -> None:
        """Attach extra counters to the currently running stage's record."""
        self._extra_counters.update(counters)

    # -- PassManager internals -----------------------------------------
    def _begin_stage(self) -> None:
        self._cached = False
        self._extra_counters = {}

    def emit(self, event: Dict[str, Any]) -> None:
        if self.trace is not None:
            self.trace(event)


class Stage:
    """One pipeline step: transform an artifact, report its size.

    Subclasses set :attr:`name` and implement :meth:`run`; they may
    override :meth:`skip` (stage does not apply to this artifact) and
    :meth:`counters` (artifact-size metrics recorded after the run).
    """

    name: str = "stage"

    #: What the :class:`PassManager` does when the context deadline has
    #: already expired before this stage starts:
    #:
    #: * ``"abort"`` (default) -- raise
    #:   :class:`~repro.core.deadline.DeadlineExceeded` carrying the
    #:   partial artifact and this stage's span name; right for stages
    #:   whose output later stages cannot do without.
    #: * ``"skip"`` -- record the stage as skipped and move on; right
    #:   for optional refinement (postprocess, repair).
    #: * ``"run"`` -- run anyway; right for cheap stages that convert
    #:   work already paid for into usable results (unembed, certify).
    deadline_policy: str = "abort"

    def run(self, artifact: Any, context: PipelineContext) -> Any:
        raise NotImplementedError

    def skip(self, artifact: Any, context: PipelineContext) -> bool:
        return False

    def counters(self, artifact: Any, context: PipelineContext) -> Dict[str, float]:
        return {}


class FunctionStage(Stage):
    """Adapt a plain ``artifact -> artifact`` callable into a stage."""

    def __init__(
        self,
        name: str,
        function: Callable[[Any, PipelineContext], Any],
        counters: Optional[Callable[[Any, PipelineContext], Dict[str, float]]] = None,
        skip: Optional[Callable[[Any, PipelineContext], bool]] = None,
    ):
        self.name = name
        self._function = function
        self._counters = counters
        self._skip = skip

    def run(self, artifact: Any, context: PipelineContext) -> Any:
        return self._function(artifact, context)

    def counters(self, artifact: Any, context: PipelineContext) -> Dict[str, float]:
        return self._counters(artifact, context) if self._counters else {}

    def skip(self, artifact: Any, context: PipelineContext) -> bool:
        return self._skip(artifact, context) if self._skip else False


class PassManager:
    """Run an ordered stage list, instrumenting every stage.

    Stages that declare themselves inapplicable (``skip``) still get a
    record (with ``skipped=True``) so the stats table always shows the
    full pipeline shape.

    Every stage additionally runs inside an ambient trace span named
    ``<pipeline>.<stage>`` (``compile.techmap``, ``run.sample``, ...)
    carrying the stage's cached/skipped flags and counters as span
    attributes -- a no-op unless a tracer is installed
    (:mod:`repro.core.trace`).
    """

    def __init__(self, stages: Sequence[Stage], name: Optional[str] = None):
        self.stages: List[Stage] = list(stages)
        #: Span-name prefix for this pipeline ("compile", "run", ...).
        self.name = name

    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def run(self, artifact: Any, context: PipelineContext) -> Any:
        prefix = f"{self.name}." if self.name else ""
        for stage in self.stages:
            if context.deadline is not None and context.deadline.expired():
                policy = getattr(stage, "deadline_policy", "abort")
                if policy == "abort":
                    context.metrics.counter("deadline.expired").inc()
                    context.deadline.check(
                        stage=prefix + stage.name, partial=artifact
                    )
                if policy == "skip":
                    context.metrics.counter("deadline.stages_skipped").inc()
                    record = StageRecord(name=stage.name, skipped=True)
                    context.stats.record(record)
                    context.emit(
                        {
                            "stage": stage.name,
                            "event": "end",
                            "wall_time_s": 0.0,
                            "cached": False,
                            "skipped": True,
                            "counters": {},
                        }
                    )
                    continue
                # policy == "run": proceed as normal.
            context._begin_stage()
            context.emit({"stage": stage.name, "event": "begin"})
            with _trace.span(prefix + stage.name) as span:
                start = time.perf_counter()
                skipped = stage.skip(artifact, context)
                if not skipped:
                    artifact = stage.run(artifact, context)
                elapsed = time.perf_counter() - start
                counters: Dict[str, float] = {}
                if not skipped:
                    counters.update(stage.counters(artifact, context))
                counters.update(context._extra_counters)
                span.set_attributes(
                    cached=context._cached, skipped=skipped, **counters
                )
            record = StageRecord(
                name=stage.name,
                wall_time_s=elapsed,
                counters=counters,
                cached=context._cached,
                skipped=skipped,
            )
            context.stats.record(record)
            context.emit(
                {
                    "stage": stage.name,
                    "event": "end",
                    "wall_time_s": elapsed,
                    "cached": record.cached,
                    "skipped": record.skipped,
                    "counters": dict(counters),
                }
            )
        return artifact
