"""Content-addressed caches for compiled programs and minor embeddings.

Minor embedding dominates end-to-end latency and is a pure function of
the logical interaction graph (plus the target hardware graph and the
embedder's seed), so recomputing it on every run of the same design is
wasted work -- the same observation that leads Bian et al. (2018) to
treat encoding and embedding as cacheable, independently tuned steps.
Likewise a full compilation is a pure function of the Verilog source and
the :class:`~repro.core.compiler.CompileOptions`.

Two cache classes cover those cases:

* :class:`CompilationCache` -- keyed by ``hash(source, options)``;
* :class:`EmbeddingCache` -- keyed by the logical-graph fingerprint,
  the target-graph fingerprint, and the embedder parameters.

Both are in-memory by default and optionally spill to an on-disk
directory (pickle files named by key), so a serving fleet can share a
warm cache across processes.  Disk failures are never fatal: a cache
that cannot read or write simply behaves as a miss -- but they are
never *silent* either: the first failure logs a warning (via the
``repro.core.cache`` logger), corrupt entry files are deleted so they
cannot poison later lookups, and ``CacheStats.disk_errors`` counts
every incident.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import threading
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, Optional

import networkx as nx

from repro.core import trace
from repro.hardware.embedding import graph_fingerprint

logger = logging.getLogger(__name__)


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Crash-safe file replacement: write-temp, fsync, atomic rename.

    The shared durability primitive behind the cache disk tier, the
    shard checkpoints, and the service's job-journal compaction: a
    process killed at any instant leaves either the previous file or
    the new one under ``path``, never a torn hybrid.  The temp name
    includes the PID so two processes writing the same path cannot
    clobber each other's partial writes.  Errors propagate to the
    caller (callers own their degrade-vs-fail policy).
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except Exception:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Disk-tier incidents: unreadable/corrupt entries and failed writes.
    disk_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.disk_errors = 0


def stable_hash(*parts: str) -> str:
    """A stable hex digest over an ordered sequence of strings."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def options_fingerprint(options: Any) -> str:
    """A canonical string for an options object.

    Dataclasses are rendered field-by-field in declaration order so two
    equal option sets always produce the same fingerprint; anything else
    falls back to ``repr``.
    """
    if is_dataclass(options) and not isinstance(options, type):
        parts = [
            f"{f.name}={getattr(options, f.name)!r}" for f in fields(options)
        ]
        return f"{type(options).__name__}({', '.join(parts)})"
    return repr(options)


class ArtifactCache:
    """A content-addressed key/value cache: memory first, disk second.

    Args:
        cache_dir: optional directory for the on-disk tier (created on
            first store).  ``None`` keeps the cache purely in memory.
        enabled: a disabled cache misses every lookup and stores
            nothing, so ``--no-cache`` paths need no special casing.
        max_entries: in-memory entry cap; the oldest entries are evicted
            first (insertion order) once the cap is exceeded.

    Besides the per-instance :attr:`stats`, every incident is counted on
    the ambient metrics registry under ``cache.<metric_name>.*``
    (:mod:`repro.core.trace`) -- the process-wide aggregate across all
    instances of a cache kind, from which the summary renderer derives
    ``cache.<metric_name>.hit_ratio``.
    """

    #: Namespace for this cache kind's ambient metrics.
    metric_name = "artifact"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        enabled: bool = True,
        max_entries: int = 256,
    ):
        self.cache_dir = cache_dir
        self.enabled = enabled
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._memory: Dict[str, Any] = {}
        self._disk_warned = False
        # Shared across the service's worker threads; reentrant because
        # get() promotes disk hits into memory under the same lock.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _count(self, event: str) -> None:
        """Bump the ambient per-kind counter (no-op unless installed)."""
        trace.metrics().counter(f"cache.{self.metric_name}.{event}").inc()

    def get(self, key: str) -> Optional[Any]:
        if not self.enabled:
            with self._lock:
                self.stats.misses += 1
            self._count("misses")
            return None
        with self._lock:
            if key in self._memory:
                self.stats.hits += 1
                self._count("hits")
                return self._memory[key]
        value = self._disk_get(key)
        with self._lock:
            if value is not None:
                self._memory_put(key, value)
                self.stats.hits += 1
                self._count("hits")
                return value
            self.stats.misses += 1
        self._count("misses")
        return None

    def contains(self, key: str) -> bool:
        """Non-counting presence check (memory or disk tier).

        Unlike :meth:`get`, this records neither a hit nor a miss --
        it exists so callers (the service's warm-path detection) can
        probe without perturbing the hit-ratio statistics, and without
        deserializing a disk entry.
        """
        if not self.enabled:
            return False
        with self._lock:
            if key in self._memory:
                return True
        path = self._disk_path(key)
        return path is not None and os.path.exists(path)

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._memory_put(key, value)
            self.stats.stores += 1
        self._disk_put(key, value)
        self._count("stores")

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------
    def _memory_put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        while len(self._memory) > self.max_entries:
            self._memory.pop(next(iter(self._memory)))

    def _disk_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _disk_warn(self, action: str, path: str, exc: Exception) -> None:
        """Record a disk-tier incident; warn on the first one only.

        The tier degrades to memory-only behavior either way, but a
        corrupt pickle or a permission problem should be visible in the
        logs, not swallowed.
        """
        self.stats.disk_errors += 1
        self._count("disk_errors")
        if not self._disk_warned:
            self._disk_warned = True
            logger.warning(
                "cache disk tier failed to %s %s (%s: %s); degrading to "
                "memory-only for such entries (further failures logged "
                "at debug level)",
                action, path, type(exc).__name__, exc,
            )
        else:
            logger.debug(
                "cache disk tier failed to %s %s (%s: %s)",
                action, path, type(exc).__name__, exc,
            )

    def _disk_get(self, key: str) -> Optional[Any]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception as exc:
            self._disk_warn("load", path, exc)
            # A corrupt entry would fail on every future lookup; delete
            # it so the slot heals into a clean miss.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, value: Any) -> None:
        """Crash-safe store: write-temp, fsync, then atomic rename.

        A process killed mid-write must never leave a truncated pickle
        under the final name (readers would count a disk error and heal
        it away, but the entry would be lost) -- so the bytes go to a
        per-process temp file first, are flushed *and fsynced* to stable
        storage, and only then atomically renamed over the final path.
        The temp name includes the PID so two processes warming the same
        cache directory cannot clobber each other's partial writes.
        """
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            atomic_write_bytes(path, pickle.dumps(value))
        except Exception as exc:
            # An unwritable disk tier degrades to memory-only.
            self._disk_warn("store", path, exc)


class CompilationCache(ArtifactCache):
    """Caches :class:`~repro.core.compiler.CompiledProgram` objects.

    Keyed by the Verilog source text, the full
    :class:`~repro.core.compiler.CompileOptions`, and the target
    topology fingerprint, so any option change (e.g. a different
    ``unroll_steps``) is a distinct entry and programs compiled against
    different hardware families never alias.  Callers compiling without
    a concrete machine pass the default target-agnostic marker.
    """

    metric_name = "compile"

    @staticmethod
    def key_for(source: str, options: Any, target: str = "any") -> str:
        return stable_hash(
            "verilog:" + source,
            "options:" + options_fingerprint(options),
            "target:" + target,
        )


class CheckpointCache(ArtifactCache):
    """Persists shard-solver run state through the crash-safe disk tier.

    The sharded decomposer (:mod:`repro.solvers.shard`) writes one
    entry per run -- completed reads, the in-progress read's incumbent,
    the parent RNG state, and the fleet's health/breaker state -- after
    every stitch round.  Because :meth:`ArtifactCache._disk_put` is
    write-temp + fsync + atomic rename, a run killed mid-write always
    leaves either the previous round's checkpoint or the new one, never
    a torn file; a ``--resume`` therefore continues from the last
    *completed* iteration, bit-identical to the run that died.

    Keyed by a run fingerprint covering the model, the full solver
    configuration (fleet shape, fault spec, seeds), and the requested
    reads, so a resume can never pick up state from a different
    problem, a differently-damaged fleet, or a different seed.
    """

    metric_name = "checkpoint"

    @staticmethod
    def key_for(run_fingerprint: str) -> str:
        return stable_hash("checkpoint:" + run_fingerprint)


class EmbeddingCache(ArtifactCache):
    """Caches :class:`~repro.hardware.embedding.Embedding` objects.

    Keyed by the *logical interaction graph* fingerprint -- not the
    model coefficients -- because an embedding depends only on which
    couplings are non-zero.  Re-running a compiled program with
    different pins therefore reuses the same embedding (pins only bias
    existing variables).  The target graph, seed, and retry budget are
    part of the key so distinct hardware or an explicit re-seed still
    embeds afresh (Section 6.1's 25-embedding variance sweep relies on
    per-seed variation).

    The target fingerprint is computed over the machine's *working*
    graph, so a degraded machine (dead qubits/couplers from the yield
    model or fault injection) never reuses an embedding found for a
    healthier -- or differently damaged -- unit.  The ``topology``
    component additionally names the hardware family and its parameters
    (:meth:`repro.hardware.topology.Topology.fingerprint`): two
    topologies whose working graphs could ever hash alike -- or whose
    yield models differ only in provenance -- still get distinct
    entries.
    """

    metric_name = "embedding"

    @staticmethod
    def key_for(
        source_graph: nx.Graph,
        target_graph: nx.Graph,
        seed: Optional[int] = None,
        tries: int = 16,
        max_attempts: int = 1,
        topology: str = "",
    ) -> str:
        return stable_hash(
            "source:" + graph_fingerprint(source_graph),
            "target:" + graph_fingerprint(target_graph),
            "topology:" + topology,
            f"seed:{seed!r}",
            f"tries:{tries}",
            f"max_attempts:{max_attempts}",
        )
