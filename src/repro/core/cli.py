"""Command-line interface: ``verilog2qmasm``.

Compiles a Verilog file to QMASM (and optionally runs it), mirroring
the paper's toolchain invocation style, including ``--pin``::

    verilog2qmasm mult.v --pin "C[7:0] := 10001111" --run --solver sa

Pipeline introspection flags:

``--time-passes``
    print the per-stage wall-time/counter table for the compilation
    (and, with ``--run``, the execution) pass pipeline.
``--stats``
    print the Section 6.1 static properties of the compilation.
``--no-cache``
    bypass the compilation and embedding caches.

Observability flags (see ``repro.core.trace``):

``--trace out.json``
    record hierarchical spans for every compile/run stage (plus solver
    and embedding internals) and write a Chrome ``trace_event`` file,
    viewable in ``about:tracing`` or https://ui.perfetto.dev.
``--metrics``
    print the process metrics summary (counters, gauges, histograms)
    to stderr after the command finishes.

``python -m repro run design.v ...`` is accepted as sugar for
``python -m repro design.v ... --run``.

``python -m repro serve --port 8000 --workers 4`` mounts the same
pipeline behind the long-lived HTTP/JSON job service
(:mod:`repro.service`): asynchronous jobs, shared compile/embedding
caches, per-tenant rate limits, ``/healthz`` and ``/metrics``.

Fault-tolerance flags (see ``repro.core.faults``):

``--inject-fault SPEC``
    deterministically damage the simulated machine, e.g.
    ``--inject-fault 'dead_qubits=5%,fail_first=2,seed=7'`` kills 5% of
    qubits and makes the first two sample calls fail.  Repeatable; later
    specs override earlier keys.
``--retries N``
    per-run sample-call retry budget (each retry under a fresh
    spin-reversal gauge).
``--no-fallback``
    fail instead of degrading to classical solver tiers when the
    hardware stays unavailable.

Certification and deadline flags (see ``repro.qmasm.certify`` and
``repro.core.deadline``):

``--certify``
    independently re-check every returned read (energy recomputation,
    per-gate truth-table replay, pin constraints) and print the
    certificate; exit 3 if any read fails certification.
``--repair``
    implies ``--certify``; polish and re-sample uncertified reads
    within the retry policy's repair budget before giving up.
``--deadline SECONDS``
    wall-clock budget for the whole run; samplers stop cooperatively
    at sweep-batch granularity and the run exits 4 if the budget
    expires before a usable result exists.

Exit codes: 0 success; 1 generic error; 2 usage/pin diagnostics or no
valid solutions; 3 certification failure; 4 deadline exceeded.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.compiler import CompileOptions, VerilogAnnealerCompiler
from repro.core.faults import parse_fault_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="verilog2qmasm",
        description=(
            "Compile classical Verilog code to a quadratic pseudo-Boolean "
            "function and (optionally) minimize it on a simulated quantum "
            "annealer.  Reproduction of Pakin, ASPLOS 2019."
        ),
    )
    parser.add_argument("source", help="Verilog source file ('-' for stdin)")
    parser.add_argument("--top", help="top module name (default: last defined)")
    parser.add_argument(
        "--pin",
        action="append",
        default=[],
        metavar="'VAR := VALUE'",
        help="pin a variable, e.g. --pin 'C[7:0] := 10001111' (repeatable)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        help="unroll sequential logic over this many time steps",
    )
    parser.add_argument(
        "--emit",
        choices=["qmasm", "edif", "stats", "qubo"],
        default="qmasm",
        help=(
            "artifact to print when not running: the QMASM program, the "
            "EDIF netlist, compile statistics, or a qbsolv-format .qubo "
            "file (default: qmasm)"
        ),
    )
    parser.add_argument("--run", action="store_true", help="execute the program")
    parser.add_argument(
        "--solver",
        choices=["dwave", "sa", "sqa", "exact", "tabu", "qbsolv", "shard"],
        default="dwave",
        help=(
            "execution backend (default: simulated D-Wave 2000Q); "
            "'shard' decomposes across a fleet of --machines chips "
            "(or a heterogeneous --fleet)"
        ),
    )
    from repro.hardware.registry import available_topologies

    parser.add_argument(
        "--topology",
        choices=list(available_topologies()),
        default="chimera",
        help="hardware graph family for the simulated annealer "
        "(default: chimera, the 2000Q's)",
    )
    parser.add_argument(
        "--topology-size",
        type=int,
        default=None,
        metavar="M",
        help="grid parameter for --topology (default: the family's "
        "flagship chip, e.g. C16/P16/Z15)",
    )
    parser.add_argument(
        "--machines",
        type=int,
        default=4,
        metavar="N",
        help="simulated fleet size for --solver shard (default: 4)",
    )
    parser.add_argument(
        "--fleet",
        metavar="SPEC",
        default=None,
        help=(
            "heterogeneous fleet for --solver shard: comma-separated "
            "FAMILY[SIZE] tokens, e.g. 'C16,P8,Z6' (families by name, "
            "prefix, or letter code); overrides --machines"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist shard-solver state into DIR after every stitch "
            "round (crash-safe; enables --resume)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted --solver shard run from its "
            "--checkpoint-dir checkpoint (bit-identical continuation)"
        ),
    )
    parser.add_argument(
        "--num-reads",
        "--reads",
        dest="reads",
        type=int,
        default=1000,
        help="number of anneals/reads (--reads is an alias)",
    )
    parser.add_argument(
        "--num-sweeps",
        type=int,
        default=None,
        metavar="N",
        help=(
            "Metropolis sweeps per read for the classical solvers "
            "(default: solver-specific; the dwave solver derives sweeps "
            "from --anneal-time)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "process-pool size for parallel gauge batches (dwave) and "
            "qbsolv reads; results are bit-identical to serial runs"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=["dense", "sparse", "jit"],
        default=None,
        help=(
            "force a Metropolis sweep-kernel tier (jit needs numba and "
            "falls back to sparse with a warning); default auto-selects "
            "per problem -- all tiers are bit-identical, only speed "
            "differs"
        ),
    )
    parser.add_argument(
        "--batch-gauges",
        action="store_true",
        help=(
            "pack the dwave solver's spin-reversal gauge batch into one "
            "cross-problem kernel invocation (deterministic per seed, "
            "but samples differ from the serial gauge schedule)"
        ),
    )
    parser.add_argument(
        "--batch-shards",
        action="store_true",
        help=(
            "pack each --solver shard round's subproblems into one "
            "cross-problem kernel invocation"
        ),
    )
    parser.add_argument(
        "--anneal-time", type=float, default=20.0, help="anneal time in us"
    )
    parser.add_argument("--seed", type=int, help="RNG seed for reproducibility")
    parser.add_argument(
        "--all-solutions",
        action="store_true",
        help="print every distinct solution, not just valid ones",
    )
    parser.add_argument(
        "-O",
        "--roof-duality",
        action="store_true",
        help="elide a-priori-determined qubits via roof duality",
    )
    parser.add_argument(
        "--time-passes",
        action="store_true",
        help="print per-stage wall times and artifact counters",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the compilation's static properties (Section 6.1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the compilation and embedding caches",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "damage the simulated machine deterministically, e.g. "
            "'dead_qubits=5%%,fail_first=2,seed=7' (keys: dead_qubits, "
            "dead_couplers, fail_first, fail_rate, drop_rate, "
            "break_chains, read_corruption, seed; repeatable); "
            "machine_crash/machine_straggler/machine_flaky clauses "
            "(e.g. 'machine_crash=1:3,machine_flaky=0:30%%') drive the "
            "--solver shard fleet's chaos plan"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="sample-call attempt budget for transient failures (default: 3)",
    )
    parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail instead of degrading to classical solvers when the "
        "hardware stays unavailable",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="independently re-check every read (energy, gate truth "
        "tables, pins) and print the certificate; exit 3 on failure",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="implies --certify; polish and re-sample uncertified reads "
        "within the repair budget before giving up",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the run; exit 4 with the "
        "interrupted stage named if it expires",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "record a hierarchical execution trace and write it as a "
            "Chrome trace_event JSON file (open in about:tracing or "
            "https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the process metrics summary (counters, gauges, "
        "histograms) after the command finishes",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``python -m repro run design.v ...`` is sugar for ``design.v ...
    # --run`` -- the paper's compile-then-execute flow as a subcommand.
    if argv and argv[0] == "run":
        argv = list(argv[1:]) + ["--run"]
    # ``python -m repro serve ...`` mounts the whole pipeline behind the
    # long-lived HTTP job service (repro.service).
    if argv and argv[0] == "serve":
        from repro.service.app import serve_main

        return serve_main(list(argv[1:]))
    args = build_parser().parse_args(argv)

    from repro.core import trace as _trace

    if args.trace or args.metrics:
        _trace.install()
    try:
        return _run_command(args)
    finally:
        if args.trace:
            _trace.tracer().write_chrome_trace(args.trace)
        if args.metrics:
            print(_trace.metrics().render_summary(), file=sys.stderr)
        if args.trace or args.metrics:
            _trace.uninstall()


def _run_command(args: argparse.Namespace) -> int:
    if args.source == "-":
        source = sys.stdin.read()
    else:
        with open(args.source, "r", encoding="utf-8") as handle:
            source = handle.read()

    machine = None
    spec = None
    if args.inject_fault:
        try:
            for text in args.inject_fault:
                spec = parse_fault_spec(text, base=spec)
        except ValueError as exc:
            print(f"error: --inject-fault: {exc}", file=sys.stderr)
            return 1
    if spec is not None or args.topology != "chimera" or args.topology_size:
        from repro.solvers.machine import DWaveSimulator, MachineProperties

        props = MachineProperties(topology=args.topology)
        if args.topology_size:
            props = MachineProperties(
                topology=args.topology, cells=args.topology_size
            )
        machine = DWaveSimulator(
            properties=props, seed=args.seed, faults=spec
        )

    if args.fleet is not None:
        from repro.solvers.fleet import parse_fleet_spec

        try:
            parse_fleet_spec(args.fleet)
        except ValueError as exc:
            print(f"error: --fleet: {exc}", file=sys.stderr)
            return 1
    if args.resume and args.checkpoint_dir is None:
        print(
            "error: --resume needs --checkpoint-dir (the directory the "
            "interrupted run checkpointed into)",
            file=sys.stderr,
        )
        return 1

    compiler = VerilogAnnealerCompiler(
        machine=machine,
        seed=args.seed,
        cache=not args.no_cache,
        machines=args.machines,
        fleet=args.fleet,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    options = CompileOptions(top=args.top, unroll_steps=args.steps)
    try:
        program = compiler.compile(source, options)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.stats:
        from repro.core.report import format_compile_summary

        print(format_compile_summary(program))

    if not args.run:
        if args.time_passes:
            from repro.core.report import format_pass_table

            print(format_pass_table(program.stats, title="compile passes:"))
        if args.stats or args.time_passes:
            return 0
        if args.emit == "qmasm":
            print(program.qmasm_source)
        elif args.emit == "edif":
            print(program.edif_text)
        elif args.emit == "qubo":
            from repro.qmasm.qubo_format import write_qubo_file

            model, _ = program.logical.to_ising(apply_pins=False)
            print(
                write_qubo_file(
                    model,
                    comments=[f"compiled from module {program.netlist.name}"],
                ),
                end="",
            )
        else:
            from repro.core.report import format_compile_summary

            print(format_compile_summary(program))
        return 0

    code = _validate_pins(args.pin, program)
    if code:
        return code

    from repro.core.deadline import DeadlineExceeded
    from repro.qmasm.runner import RetryPolicy

    policy = RetryPolicy(max_sample_attempts=args.retries)
    if args.no_fallback:
        policy.fallback_solvers = ()
    certify = args.certify or args.repair
    try:
        result = compiler.run(
            program,
            pins=args.pin,
            solver=args.solver,
            num_reads=args.reads,
            num_sweeps=args.num_sweeps,
            max_workers=args.workers,
            kernel=args.kernel,
            batch_gauges=args.batch_gauges,
            batch_shards=args.batch_shards,
            annealing_time_us=args.anneal_time,
            use_roof_duality=args.roof_duality,
            retry_policy=policy,
            certify=certify,
            repair=args.repair,
            deadline=args.deadline,
        )
    except DeadlineExceeded as exc:
        print(
            f"error: deadline of {exc.budget_s:.3g}s exceeded after "
            f"{exc.elapsed_s:.3g}s in stage {exc.stage}",
            file=sys.stderr,
        )
        return 4
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    solutions = result.solutions if args.all_solutions else result.valid_solutions
    if not solutions:
        print("no valid solutions found; try more reads", file=sys.stderr)
        return 2
    from repro.core.report import format_run_result

    print(format_run_result(result, valid_only=not args.all_solutions))
    if args.time_passes:
        from repro.core.report import format_pass_table

        print()
        print(format_pass_table(program.stats, title="compile passes:"))
        print()
        print(format_pass_table(result.stats, title="run passes:"))
    if certify and result.certificate is not None:
        print(f"certificate: {result.certificate.summary()}")
        if not result.certificate.ok:
            print(
                "error: certification failed: "
                f"{result.certificate.summary()}",
                file=sys.stderr,
            )
            return 3
    return 0


def _validate_pins(pin_texts, program) -> int:
    """Pre-validate ``--pin`` options before the run pipeline starts.

    Returns 0 when everything checks out, 2 with a one-line structured
    diagnostic on stderr otherwise (same formatting as the Verilog
    frontend's errors, see :func:`repro.hdl.errors.format_diagnostic`).
    """
    from repro.hdl.errors import format_diagnostic
    from repro.qmasm.parser import parse_pin
    from repro.qmasm.program import QmasmError

    known = program.logical.variables
    for text in pin_texts:
        try:
            pin = parse_pin(text)
        except QmasmError as exc:
            print(
                "error: "
                + format_diagnostic(str(exc), source=f"--pin {text!r}"),
                file=sys.stderr,
            )
            return 2
        unknown = sorted(v for v in pin.assignments if v not in known)
        if unknown:
            visible = program.logical.visible_variables()
            print(
                "error: "
                + format_diagnostic(
                    f"unknown variable(s) {', '.join(unknown)}; "
                    f"known: {', '.join(visible)}",
                    source=f"--pin {text!r}",
                ),
                file=sys.stderr,
            )
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
