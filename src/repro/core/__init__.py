"""The paper's primary contribution: the end-to-end compiler pipeline.

Verilog -> digital circuit -> EDIF -> QMASM -> logical Hamiltonian ->
minor-embedded physical Hamiltonian -> anneal -> named results
(Sections 4.1-4.4), runnable forward (pin inputs) or backward (pin
outputs) per Section 4.3.6.
"""

from repro.core.compiler import (
    CompiledProgram,
    CompileOptions,
    VerilogAnnealerCompiler,
    compile_verilog,
    run_verilog,
)

__all__ = [
    "CompiledProgram",
    "CompileOptions",
    "VerilogAnnealerCompiler",
    "compile_verilog",
    "run_verilog",
]
