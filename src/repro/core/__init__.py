"""The paper's primary contribution: the end-to-end compiler pipeline.

Verilog -> digital circuit -> EDIF -> QMASM -> logical Hamiltonian ->
minor-embedded physical Hamiltonian -> anneal -> named results
(Sections 4.1-4.4), runnable forward (pin inputs) or backward (pin
outputs) per Section 4.3.6.

The lowering and execution steps are first-class stages run by a
:class:`~repro.core.pipeline.PassManager` (see
:mod:`repro.core.pipeline`), with per-stage timings/counters on
``CompiledProgram.stats`` / ``RunResult.stats`` and content-addressed
compilation/embedding caches in :mod:`repro.core.cache`.
"""

# faults has no repro-internal imports and is itself imported by the
# solver/runner layers, so it must initialize before cache/compiler.
from repro.core.faults import (
    FaultInjector,
    FaultSpec,
    TransientSolverError,
    break_chains,
    parse_fault_spec,
)
from repro.core.cache import (
    ArtifactCache,
    CacheStats,
    CompilationCache,
    EmbeddingCache,
)
from repro.core.compiler import (
    CompiledProgram,
    CompileOptions,
    VerilogAnnealerCompiler,
    compile_verilog,
    default_compile_stages,
    run_verilog,
)
from repro.core.pipeline import (
    PassManager,
    PipelineContext,
    PipelineStats,
    Stage,
    StageRecord,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CompilationCache",
    "CompiledProgram",
    "CompileOptions",
    "EmbeddingCache",
    "FaultInjector",
    "FaultSpec",
    "TransientSolverError",
    "break_chains",
    "parse_fault_spec",
    "PassManager",
    "PipelineContext",
    "PipelineStats",
    "Stage",
    "StageRecord",
    "VerilogAnnealerCompiler",
    "compile_verilog",
    "default_compile_stages",
    "run_verilog",
]
