"""Hand-coded unary map-coloring Hamiltonians (Section 6.1's baseline).

The paper contrasts its Verilog flow with "the tallies that one might
see when hand-coding a quadratic pseudo-Boolean function corresponding
to the map-coloring problem": following Dahl, Lucas, and Rieffel et al.,
one uses a *unary* (one-hot) encoding -- one spin per (region, color) --
giving 4 variables x 7 regions = 28 logical variables for Australia,
versus the Verilog flow's ~74.

This module implements that hand encoding so the comparison can be
measured rather than quoted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.ising.model import IsingModel, SPIN_TRUE

#: Australia's states and territories (Tasmania excluded, as in the
#: paper: it is an island and independent of the mainland coloring).
AUSTRALIA_REGIONS: List[str] = ["NSW", "QLD", "SA", "VIC", "WA", "NT", "ACT"]
AUSTRALIA_ADJACENT: List[Tuple[str, str]] = [
    ("WA", "NT"), ("WA", "SA"), ("NT", "SA"), ("NT", "QLD"),
    ("SA", "QLD"), ("SA", "NSW"), ("SA", "VIC"), ("QLD", "NSW"),
    ("NSW", "VIC"), ("NSW", "ACT"),
]


def unary_map_coloring_model(
    regions: Sequence[str] = tuple(AUSTRALIA_REGIONS),
    adjacent: Iterable[Tuple[str, str]] = tuple(AUSTRALIA_ADJACENT),
    num_colors: int = 4,
    one_hot_strength: float = 2.0,
    conflict_strength: float = 1.0,
) -> IsingModel:
    """The Dahl/Lucas one-hot map-coloring Hamiltonian.

    One spin variable ``(region, color)`` per region-color pair.  In
    QUBO terms the energy is::

        sum_r A * (1 - sum_c x_{r,c})^2          (exactly one color)
      + sum_{(r,s) adjacent} sum_c B * x_{r,c} x_{s,c}   (no conflicts)

    converted to spins.  Ground states correspond exactly to proper
    colorings.

    Args:
        regions: region names.
        adjacent: adjacency pairs (each region name must appear in
            ``regions``).
        num_colors: colors available (4 for the four-color theorem).
        one_hot_strength: penalty weight A for the one-hot constraint.
        conflict_strength: penalty weight B for adjacent same-color
            pairs; must satisfy ``B < 2A`` so breaking one-hotness never
            pays.

    Returns:
        An :class:`IsingModel` over ``(region, color)`` tuples.
    """
    if num_colors < 1:
        raise ValueError("need at least one color")
    if not 0 < conflict_strength < 2 * one_hot_strength:
        raise ValueError("require 0 < conflict_strength < 2 * one_hot_strength")
    region_set = set(regions)
    qubo: Dict[Tuple, float] = {}

    def add(u, v, coeff):
        key = (u, v) if u == v or repr(u) <= repr(v) else (v, u)
        qubo[key] = qubo.get(key, 0.0) + coeff

    offset = 0.0
    for region in regions:
        # A * (1 - sum_c x)^2 = A - 2A sum x + A (sum x)^2
        offset += one_hot_strength
        for c in range(num_colors):
            var = (region, c)
            add(var, var, -2.0 * one_hot_strength)  # from -2A sum x
            add(var, var, one_hot_strength)  # x^2 == x diagonal
            for d in range(c + 1, num_colors):
                add(var, (region, d), 2.0 * one_hot_strength)
    for r, s in adjacent:
        if r not in region_set or s not in region_set:
            raise ValueError(f"adjacency ({r}, {s}) references unknown region")
        for c in range(num_colors):
            add((r, c), (s, c), conflict_strength)

    return IsingModel.from_qubo(qubo, offset)


def decode_unary_sample(
    sample: Mapping[Tuple, int],
    regions: Sequence[str] = tuple(AUSTRALIA_REGIONS),
    num_colors: int = 4,
) -> Dict[str, int]:
    """Read a one-hot spin sample back into region -> color.

    Raises ``ValueError`` if any region's one-hot constraint is broken
    (zero or multiple colors set).
    """
    colors: Dict[str, int] = {}
    for region in regions:
        chosen = [
            c for c in range(num_colors) if sample[(region, c)] == SPIN_TRUE
        ]
        if len(chosen) != 1:
            raise ValueError(
                f"region {region!r} has {len(chosen)} colors set (one-hot broken)"
            )
        colors[region] = chosen[0]
    return colors


def coloring_is_proper(
    colors: Mapping[str, int],
    adjacent: Iterable[Tuple[str, str]] = tuple(AUSTRALIA_ADJACENT),
) -> bool:
    """True when no adjacent pair shares a color."""
    return all(colors[a] != colors[b] for a, b in adjacent)
