"""Monotonic deadlines and budgets for deadline-aware execution.

A hung or merely slow solver stage can stall a run forever; serving
fleets answer with wall-clock budgets enforced *cooperatively*, so that
work stops at a safe point and partial results survive.  This module is
that mechanism:

* :class:`Deadline` -- a monotonic-clock deadline with cheap
  :meth:`~Deadline.expired` polling and a raising :meth:`~Deadline.check`.
  Threaded through :class:`~repro.core.pipeline.PassManager` (checked at
  every stage boundary) and through every sampler's sweep loop (checked
  at sweep-batch granularity), so a run never overshoots its budget by
  more than one sweep batch.
* :class:`Budget` -- a plain remaining-seconds snapshot, picklable, for
  handing per-task timeouts to process-pool workers; each worker
  rearms it into a local :class:`Deadline` when the task starts, so
  workers tear themselves down cleanly instead of being killed.
* :class:`DeadlineExceeded` -- the structured error raised when time
  runs out *between* stages: it names the stage that could not start
  and carries whatever partial artifact the pipeline had produced.

Samplers never raise on expiry: they stop sweeping, flag
``info["deadline_interrupted"]``, and return the states they reached --
an interrupted anneal is still a valid (if hotter) sample set.  Only
the pipeline raises, and only when a required stage cannot run at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional


class DeadlineExceeded(RuntimeError):
    """A deadline expired before a required pipeline stage could run.

    Attributes:
        stage: fully-qualified name of the stage that could not start
            (``"run.find_embedding"``), or None when raised outside a
            pipeline.
        elapsed_s: seconds elapsed when the deadline tripped.
        budget_s: the original budget in seconds.
        partial: whatever partial artifact existed when time ran out
            (e.g. a :class:`~repro.qmasm.runner.RunArtifact` with an
            embedding but no samples); None if nothing was produced.
    """

    def __init__(
        self,
        message: str,
        stage: Optional[str] = None,
        elapsed_s: Optional[float] = None,
        budget_s: Optional[float] = None,
        partial: Any = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s
        self.partial = partial


class Deadline:
    """A wall-clock budget measured on a monotonic clock.

    Args:
        seconds: the budget; must be positive.
        clock: the time source (monotonic by default; injectable for
            tests).

    The clock is read at construction; :meth:`remaining` /
    :meth:`expired` / :meth:`check` are all O(1) clock reads, cheap
    enough to poll once per sweep batch.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self.budget_s = float(seconds)
        self._clock = clock
        self._start = clock()

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        return self.elapsed() >= self.budget_s

    def check(self, stage: Optional[str] = None, partial: Any = None) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed()
        if elapsed >= self.budget_s:
            where = f" before stage {stage!r}" if stage else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:g}s exceeded after "
                f"{elapsed:.3f}s{where}",
                stage=stage,
                elapsed_s=elapsed,
                budget_s=self.budget_s,
                partial=partial,
            )

    def budget(self) -> "Budget":
        """Snapshot the remaining time as a picklable :class:`Budget`."""
        return Budget(self.remaining())

    def __repr__(self) -> str:
        return (
            f"Deadline({self.budget_s:g}s, {self.remaining():.3f}s remaining)"
        )


@dataclass(frozen=True)
class Budget:
    """A remaining-time snapshot, safe to pickle into pool workers.

    Monotonic-clock *readings* must not cross process boundaries; a
    plain seconds count can.  The worker calls :meth:`start` when its
    task actually begins, getting a local :class:`Deadline` that bounds
    just that task.
    """

    seconds: float

    def start(self, clock: Callable[[], float] = time.monotonic) -> Optional[Deadline]:
        """Arm the budget into a live deadline (None if already spent).

        A spent budget returns an already-expired deadline substitute:
        callers treat ``None`` as "no deadline", so an exhausted budget
        instead yields a deadline with the smallest representable
        positive allowance -- every subsequent ``expired()`` is True.
        """
        if self.seconds <= 0.0:
            deadline = Deadline(1e-9, clock=clock)
            return deadline
        return Deadline(self.seconds, clock=clock)
