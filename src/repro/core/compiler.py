"""End-to-end compilation: classical Verilog to annealer-ready form.

:class:`VerilogAnnealerCompiler` chains every lowering step the paper
describes, keeping all intermediate artifacts (netlists, EDIF text,
QMASM source, the logical Hamiltonian) inspectable on the resulting
:class:`CompiledProgram` -- the Section 6.1 static-properties analysis
reads them straight off.

Typical use::

    compiler = VerilogAnnealerCompiler(seed=0)
    program = compiler.compile(VERILOG_SOURCE)
    result = compiler.run(program, pins=["C[7:0] := 10001111"],
                          solver="sa", num_reads=1000)
    for solution in result.valid_solutions:
        print(solution.value_of("A"), solution.value_of("B"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.edif.writer import write_edif
from repro.edif.reader import read_edif
from repro.edif2qmasm.translate import netlist_to_qmasm
from repro.hdl.elaborator import elaborate
from repro.qmasm.assembler import LogicalProgram, assemble
from repro.qmasm.parser import parse_qmasm
from repro.qmasm.runner import QmasmRunner, RunResult
from repro.solvers.machine import DWaveSimulator
from repro.synth.netlist import Netlist
from repro.synth.opt import optimize
from repro.synth.simulate import NetlistSimulator
from repro.synth.techmap import techmap
from repro.synth.unroll import unroll


@dataclass
class CompileOptions:
    """Knobs for the lowering pipeline.

    Attributes:
        top: name of the top Verilog module (default: last defined).
        parameters: top-module parameter overrides.
        run_optimizer: apply the ABC-role netlist optimizations.
        run_techmap: fold gates into compound Table 5 cells.
        unroll_steps: for sequential designs, how many discrete time
            steps to unroll (required if the design has flip-flops).
        initial_state: per-flip-flop initial bit (0/1), or None to leave
            the initial state as free inputs the annealer may solve for.
    """

    top: Optional[str] = None
    parameters: Optional[Dict[str, int]] = None
    run_optimizer: bool = True
    run_techmap: bool = True
    unroll_steps: Optional[int] = None
    initial_state: Optional[int] = 0


@dataclass
class CompiledProgram:
    """All artifacts of one compilation, highest to lowest level."""

    verilog_source: str
    elaborated: Netlist
    netlist: Netlist
    edif_text: str
    qmasm_source: str
    logical: LogicalProgram
    options: CompileOptions = field(default_factory=CompileOptions)

    def simulator(self) -> NetlistSimulator:
        """A forward simulator over the final netlist (solution checking)."""
        return NetlistSimulator(self.netlist)

    def statistics(self) -> Dict[str, object]:
        """The Section 6.1 static properties of this compilation."""
        logical_model, _ = self.logical.to_ising(apply_pins=False)
        return {
            "verilog_lines": _code_lines(self.verilog_source),
            "edif_lines": len(self.edif_text.splitlines()),
            "qmasm_lines": _code_lines(self.qmasm_source),
            "cells": self.netlist.cell_histogram(),
            "num_cells": self.netlist.num_cells(),
            "logical_variables": len(logical_model),
            "logical_terms": logical_model.num_terms(),
        }


def _code_lines(text: str) -> int:
    return sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


class VerilogAnnealerCompiler:
    """The full Section 4 toolchain with a pluggable execution backend."""

    def __init__(
        self,
        machine: Optional[DWaveSimulator] = None,
        seed: Optional[int] = None,
    ):
        self.runner = QmasmRunner(machine=machine, seed=seed)

    # ------------------------------------------------------------------
    def compile(
        self, verilog_source: str, options: Optional[CompileOptions] = None, **kwargs
    ) -> CompiledProgram:
        """Lower Verilog source through every stage to a logical program.

        Keyword arguments are shorthand for :class:`CompileOptions`
        fields (``compiler.compile(src, unroll_steps=4)``).
        """
        if options is None:
            options = CompileOptions(**kwargs)
        elif kwargs:
            raise TypeError("pass either options or keyword overrides, not both")

        elaborated = elaborate(
            verilog_source, top=options.top, parameters=options.parameters
        )
        netlist = elaborated
        if options.run_optimizer:
            netlist = optimize(netlist)
        if options.run_techmap:
            netlist = techmap(netlist)
        if netlist.has_sequential():
            if options.unroll_steps is None:
                raise ValueError(
                    f"design {netlist.name!r} is sequential; pass unroll_steps"
                )
            netlist = unroll(
                netlist, options.unroll_steps, initial_value=options.initial_state
            )
            if options.run_optimizer:
                netlist = optimize(netlist)

        edif_text = write_edif(netlist)
        # Round-trip through the EDIF parser: the QMASM translation sees
        # exactly what the interchange format carries, as in the paper.
        qmasm_source = netlist_to_qmasm(read_edif(edif_text))
        logical = assemble(parse_qmasm(qmasm_source))
        return CompiledProgram(
            verilog_source=verilog_source,
            elaborated=elaborated,
            netlist=netlist,
            edif_text=edif_text,
            qmasm_source=qmasm_source,
            logical=logical,
            options=options,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        program: Union[str, CompiledProgram],
        pins: Sequence[str] = (),
        solver: str = "dwave",
        num_reads: int = 100,
        **runner_kwargs,
    ) -> RunResult:
        """Execute a compiled program (compiling first if given source).

        ``pins`` bind inputs for forward execution or outputs for
        backward execution -- the same program runs either way.
        """
        if isinstance(program, str):
            program = self.compile(program)
        return self.runner.run(
            program.logical,
            pins=pins,
            solver=solver,
            num_reads=num_reads,
            **runner_kwargs,
        )


def compile_verilog(
    verilog_source: str, seed: Optional[int] = None, **options
) -> CompiledProgram:
    """One-shot compilation convenience wrapper."""
    return VerilogAnnealerCompiler(seed=seed).compile(verilog_source, **options)


def run_verilog(
    verilog_source: str,
    pins: Sequence[str] = (),
    solver: str = "sa",
    num_reads: int = 200,
    seed: Optional[int] = None,
    **options,
) -> RunResult:
    """Compile and execute in one call (quickstart convenience)."""
    compiler = VerilogAnnealerCompiler(seed=seed)
    program = compiler.compile(verilog_source, **options)
    return compiler.run(program, pins=pins, solver=solver, num_reads=num_reads)
