"""End-to-end compilation: classical Verilog to annealer-ready form.

:class:`VerilogAnnealerCompiler` is a thin driver over an explicit
pass pipeline (:mod:`repro.core.pipeline`): each lowering step the paper
describes -- ``elaborate``, ``optimize``, ``techmap``, ``unroll``,
``emit_edif``, ``edif_roundtrip``, ``translate_qmasm``, ``assemble`` --
is a first-class :class:`~repro.core.pipeline.Stage` in
:attr:`VerilogAnnealerCompiler.compile_stages`, executed by a
:class:`~repro.core.pipeline.PassManager`.  Every stage records wall
time and artifact-size counters into the resulting program's
:attr:`CompiledProgram.stats`; execution is delegated to
:class:`~repro.qmasm.runner.QmasmRunner`, which is staged the same way.

Compilations are memoized in a content-addressed
:class:`~repro.core.cache.CompilationCache` keyed by
``hash(source, options)``, so repeated compiles of the same design are
free; the runner likewise caches minor embeddings by logical-graph
fingerprint.  Pass ``cache=False`` (or ``--no-cache`` on the CLI) to
bypass both.

All intermediate artifacts (netlists, EDIF text, QMASM source, the
logical Hamiltonian) stay inspectable on the resulting
:class:`CompiledProgram` -- the Section 6.1 static-properties analysis
reads them straight off.

Typical use::

    compiler = VerilogAnnealerCompiler(seed=0)
    program = compiler.compile(VERILOG_SOURCE)
    result = compiler.run(program, pins=["C[7:0] := 10001111"],
                          solver="sa", num_reads=1000)
    for solution in result.valid_solutions:
        print(solution.value_of("A"), solution.value_of("B"))
    print(program.stats.format_table())   # per-stage timings
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core import trace as _trace
from repro.core.cache import CompilationCache, EmbeddingCache
from repro.core.pipeline import (
    PassManager,
    PipelineContext,
    PipelineStats,
    Stage,
    TraceCallback,
)
from repro.edif.writer import write_edif
from repro.edif.reader import read_edif
from repro.edif2qmasm.translate import netlist_to_qmasm
from repro.hdl.elaborator import elaborate
from repro.qmasm.assembler import LogicalProgram, assemble
from repro.qmasm.parser import parse_qmasm
from repro.qmasm.runner import QmasmRunner, RunResult
from repro.solvers.machine import DWaveSimulator
from repro.synth.netlist import Netlist
from repro.synth.opt import optimize
from repro.synth.simulate import NetlistSimulator
from repro.synth.techmap import techmap
from repro.synth.unroll import unroll


@dataclass
class CompileOptions:
    """Knobs for the lowering pipeline.

    Attributes:
        top: name of the top Verilog module (default: last defined).
        parameters: top-module parameter overrides.
        run_optimizer: apply the ABC-role netlist optimizations.
        run_techmap: fold gates into compound Table 5 cells.
        unroll_steps: for sequential designs, how many discrete time
            steps to unroll (required if the design has flip-flops).
        initial_state: per-flip-flop initial bit (0/1), or None to leave
            the initial state as free inputs the annealer may solve for.
    """

    top: Optional[str] = None
    parameters: Optional[Dict[str, int]] = None
    run_optimizer: bool = True
    run_techmap: bool = True
    unroll_steps: Optional[int] = None
    initial_state: Optional[int] = 0


@dataclass
class CompiledProgram:
    """All artifacts of one compilation, highest to lowest level."""

    verilog_source: str
    elaborated: Netlist
    netlist: Netlist
    edif_text: str
    qmasm_source: str
    logical: LogicalProgram
    #: The netlist as re-read from the EDIF text -- the exact netlist
    #: the QMASM source was generated from.  The round-trip renumbers
    #: internal nets, so anything that must agree with the QMASM
    #: variable names (result certification's gate replay in
    #: particular) has to use *this* netlist, not :attr:`netlist`.
    edif_netlist: Optional[Netlist] = None
    options: CompileOptions = field(default_factory=CompileOptions)
    #: Per-stage wall times and artifact counters for this compilation.
    stats: PipelineStats = field(default_factory=PipelineStats)

    def simulator(self) -> NetlistSimulator:
        """A forward simulator over the final netlist (solution checking)."""
        return NetlistSimulator(self.netlist)

    def statistics(self) -> Dict[str, object]:
        """The Section 6.1 static properties of this compilation."""
        logical_model, _ = self.logical.to_ising(apply_pins=False)
        return {
            "verilog_lines": _code_lines(self.verilog_source),
            "edif_lines": len(self.edif_text.splitlines()),
            "qmasm_lines": _code_lines(self.qmasm_source),
            "cells": self.netlist.cell_histogram(),
            "num_cells": self.netlist.num_cells(),
            "logical_variables": len(logical_model),
            "logical_terms": logical_model.num_terms(),
        }


def _code_lines(text: str) -> int:
    return sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


# ----------------------------------------------------------------------
# The compilation pipeline stages
# ----------------------------------------------------------------------
@dataclass
class CompileArtifact:
    """The artifact threaded through the compile stages, field by field."""

    source: str
    elaborated: Optional[Netlist] = None
    netlist: Optional[Netlist] = None
    edif_text: Optional[str] = None
    edif_netlist: Optional[Netlist] = None
    qmasm_source: Optional[str] = None
    logical: Optional[LogicalProgram] = None


def _netlist_counters(netlist: Netlist) -> Dict[str, float]:
    return dict(netlist.counters())


class ElaborateStage(Stage):
    """Verilog text -> word-level netlist, lowered to gates."""

    name = "elaborate"

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        options: CompileOptions = context.options
        artifact.elaborated = elaborate(
            artifact.source, top=options.top, parameters=options.parameters
        )
        artifact.netlist = artifact.elaborated
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return _netlist_counters(artifact.netlist)


class OptimizeStage(Stage):
    """ABC-role logic optimization (const-fold, CSE, dead gates)."""

    name = "optimize"

    def skip(self, artifact: CompileArtifact, context: PipelineContext) -> bool:
        return not context.options.run_optimizer

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        artifact.netlist = optimize(artifact.netlist)
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return _netlist_counters(artifact.netlist)


class TechmapStage(Stage):
    """Fold primitive gates into the paper's Table 5 compound cells."""

    name = "techmap"

    def skip(self, artifact: CompileArtifact, context: PipelineContext) -> bool:
        return not context.options.run_techmap

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        artifact.netlist = techmap(artifact.netlist)
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return _netlist_counters(artifact.netlist)


class UnrollStage(Stage):
    """Time-unroll sequential designs (then re-optimize the result)."""

    name = "unroll"

    def skip(self, artifact: CompileArtifact, context: PipelineContext) -> bool:
        return not artifact.netlist.has_sequential()

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        options: CompileOptions = context.options
        if options.unroll_steps is None:
            raise ValueError(
                f"design {artifact.netlist.name!r} is sequential; pass unroll_steps"
            )
        artifact.netlist = unroll(
            artifact.netlist,
            options.unroll_steps,
            initial_value=options.initial_state,
        )
        if options.run_optimizer:
            artifact.netlist = optimize(artifact.netlist)
        context.add_counters(steps=options.unroll_steps)
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return _netlist_counters(artifact.netlist)


class EmitEdifStage(Stage):
    """Serialize the final netlist to EDIF 2.0 text."""

    name = "emit_edif"

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        artifact.edif_text = write_edif(artifact.netlist)
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return {"edif_lines": len(artifact.edif_text.splitlines())}


class EdifRoundtripStage(Stage):
    """Re-parse the EDIF text: downstream sees exactly what the
    interchange format carries, as in the paper."""

    name = "edif_roundtrip"

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        artifact.edif_netlist = read_edif(artifact.edif_text)
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return _netlist_counters(artifact.edif_netlist)


class TranslateQmasmStage(Stage):
    """edif2qmasm: netlist cells to QMASM macro instantiations."""

    name = "translate_qmasm"

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        artifact.qmasm_source = netlist_to_qmasm(artifact.edif_netlist)
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        return {"qmasm_lines": _code_lines(artifact.qmasm_source)}


class AssembleStage(Stage):
    """qmasm assembly: macro expansion down to the logical program."""

    name = "assemble"

    def run(self, artifact: CompileArtifact, context: PipelineContext):
        artifact.logical = assemble(parse_qmasm(artifact.qmasm_source))
        return artifact

    def counters(self, artifact: CompileArtifact, context: PipelineContext):
        # "variables" is the Section 6.1 logical-variable count (distinct
        # spins after chain contraction), matching --stats; the raw QMASM
        # name count before contraction rides along separately.
        model, _ = artifact.logical.to_ising(apply_pins=False)
        return {
            "variables": len(model),
            "couplers": model.num_interactions(),
            "qmasm_variables": len(artifact.logical.variables),
        }


def default_compile_stages() -> List[Stage]:
    """The paper's lowering pipeline, in order."""
    return [
        ElaborateStage(),
        OptimizeStage(),
        TechmapStage(),
        UnrollStage(),
        EmitEdifStage(),
        EdifRoundtripStage(),
        TranslateQmasmStage(),
        AssembleStage(),
    ]


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
class VerilogAnnealerCompiler:
    """The full Section 4 toolchain with a pluggable execution backend.

    Args:
        machine: execution backend for the ``dwave`` solver (a
            :class:`DWaveSimulator`); created lazily when omitted.
        seed: RNG seed threaded through solvers and the embedder.
        cache: ``True`` (default) enables the in-memory compilation and
            embedding caches; ``False`` disables both; a
            :class:`CompilationCache` instance is used directly.
        cache_dir: optional directory for an on-disk cache tier shared
            across processes.
        trace: optional callback receiving per-stage begin/end trace
            events from both compilation and execution pipelines.
        machines: simulated fleet size for the ``"shard"`` solver.
        fleet: heterogeneous fleet spec for the ``"shard"`` solver
            (``"C16,P8,Z6"``); overrides ``machines``.
        checkpoint_dir: directory the shard solver checkpoints into
            after every stitch round (``--resume`` continues from it).
        resume: resume shard solves from a matching checkpoint.
    """

    def __init__(
        self,
        machine: Optional[DWaveSimulator] = None,
        seed: Optional[int] = None,
        cache: Union[bool, CompilationCache] = True,
        cache_dir: Optional[str] = None,
        trace: Optional[TraceCallback] = None,
        machines: int = 4,
        fleet: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ):
        self.seed = seed
        self.trace = trace
        if isinstance(cache, CompilationCache):
            self.compile_cache = cache
            cache_enabled = cache.enabled
        else:
            cache_enabled = bool(cache)
            self.compile_cache = CompilationCache(
                cache_dir=cache_dir, enabled=cache_enabled
            )
        self.runner = QmasmRunner(
            machine=machine,
            seed=seed,
            embedding_cache=EmbeddingCache(
                cache_dir=cache_dir, enabled=cache_enabled
            ),
            trace=trace,
            machines=machines,
            fleet=fleet,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        #: The lowering pipeline; callers may reorder/extend/replace.
        self.compile_stages: List[Stage] = default_compile_stages()

    # ------------------------------------------------------------------
    def compile(
        self, verilog_source: str, options: Optional[CompileOptions] = None, **kwargs
    ) -> CompiledProgram:
        """Lower Verilog source through every stage to a logical program.

        Keyword arguments are shorthand for :class:`CompileOptions`
        fields (``compiler.compile(src, unroll_steps=4)``).  Results are
        memoized by ``hash(source, options)``: a repeated compile of the
        same design returns the cached :class:`CompiledProgram` without
        re-running any stage.
        """
        if options is None:
            options = CompileOptions(**kwargs)
        elif kwargs:
            raise TypeError("pass either options or keyword overrides, not both")

        with _trace.span("compile") as span:
            # Keyed by the attached machine's topology fingerprint so
            # programs compiled against different hardware families
            # never alias; a machine-less compiler stays on the
            # target-agnostic marker (and never builds a C16 graph
            # just to hash its name).
            machine = self.runner.machine
            target = (
                machine.topology.fingerprint() if machine is not None else "any"
            )
            cache_key = CompilationCache.key_for(verilog_source, options, target)
            cached = self.compile_cache.get(cache_key)
            if cached is not None:
                span.set_attributes(cached=True)
                return cached

            context = PipelineContext(
                options=options, seed=self.seed, trace=self.trace
            )
            artifact = PassManager(self.compile_stages, name="compile").run(
                CompileArtifact(source=verilog_source), context
            )
            program = CompiledProgram(
                verilog_source=verilog_source,
                elaborated=artifact.elaborated,
                netlist=artifact.netlist,
                edif_text=artifact.edif_text,
                qmasm_source=artifact.qmasm_source,
                logical=artifact.logical,
                edif_netlist=artifact.edif_netlist,
                options=options,
                stats=context.stats,
            )
            self.compile_cache.put(cache_key, program)
            span.set_attributes(cached=False)
        return program

    # ------------------------------------------------------------------
    def run(
        self,
        program: Union[str, CompiledProgram],
        pins: Sequence[str] = (),
        solver: str = "dwave",
        num_reads: int = 100,
        compile_options: Optional[CompileOptions] = None,
        **runner_kwargs,
    ) -> RunResult:
        """Execute a compiled program (compiling first if given source).

        ``pins`` bind inputs for forward execution or outputs for
        backward execution -- the same program runs either way.  When
        ``program`` is raw Verilog source, ``compile_options`` controls
        the implied compilation (e.g.
        ``run(src, compile_options=CompileOptions(unroll_steps=4))``);
        it is rejected for already-compiled programs.

        The compiled gate-level netlist rides along into the runner, so
        ``certify=True`` runs replay every cell's truth table against
        each read -- the end-to-end check a bare QMASM source cannot
        get.
        """
        if isinstance(program, str):
            program = self.compile(program, compile_options)
        elif compile_options is not None:
            raise TypeError(
                "compile_options only applies when run() is given raw "
                "Verilog source, not an already-compiled program"
            )
        # Certification must replay the netlist the QMASM source was
        # generated from (the EDIF round-trip renumbers internal nets,
        # so program.netlist's $net<N> names need not match the sampled
        # variables).  Old cached programs may predate the field.
        runner_kwargs.setdefault(
            "netlist", getattr(program, "edif_netlist", None) or program.netlist
        )
        return self.runner.run(
            program.logical,
            pins=pins,
            solver=solver,
            num_reads=num_reads,
            **runner_kwargs,
        )


def compile_verilog(
    verilog_source: str, seed: Optional[int] = None, **options
) -> CompiledProgram:
    """One-shot compilation convenience wrapper."""
    return VerilogAnnealerCompiler(seed=seed).compile(verilog_source, **options)


def run_verilog(
    verilog_source: str,
    pins: Sequence[str] = (),
    solver: str = "sa",
    num_reads: int = 200,
    num_sweeps: Optional[int] = None,
    max_workers: Optional[int] = None,
    seed: Optional[int] = None,
    **options,
) -> RunResult:
    """Compile and execute in one call (quickstart convenience).

    ``num_sweeps`` sets the classical solvers' per-read sweep budget and
    ``max_workers`` sizes the process pool for parallel gauge batches /
    qbsolv reads (bit-identical to serial); both default to the
    runner's behavior when None.
    """
    compiler = VerilogAnnealerCompiler(seed=seed)
    program = compiler.compile(verilog_source, **options)
    return compiler.run(
        program,
        pins=pins,
        solver=solver,
        num_reads=num_reads,
        num_sweeps=num_sweeps,
        max_workers=max_workers,
    )
