"""NP-problem verifier generators (the Section 5 recipe, generalized).

The paper's methodology: "rather than write a program that directly
solves an NP problem, one can write a program that *verifies* a proposed
solution then run the program backward."  The three showcases are
hand-written; this module mechanizes the recipe, generating the Verilog
verifier from a problem instance:

- :func:`map_coloring_verilog` -- Listing 7 for *any* region graph;
- :func:`cnf_verilog` / :func:`parse_dimacs` -- SAT from DIMACS CNF;
- :func:`subset_sum_verilog` -- subset sum over given weights;
- :func:`vertex_cover_verilog` -- vertex cover of a given size bound.

Each returns Verilog text ready for
:meth:`repro.core.compiler.VerilogAnnealerCompiler.compile`; pin the
``valid`` output to true and the annealer searches for a witness.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Tuple

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class WorkloadError(Exception):
    """Malformed problem instance."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise WorkloadError(f"{name!r} is not a legal Verilog identifier")
    return name


# ----------------------------------------------------------------------
# Map coloring (generalizes Listing 7)
# ----------------------------------------------------------------------
def map_coloring_verilog(
    regions: Sequence[str],
    adjacent: Iterable[Tuple[str, str]],
    num_colors: int = 4,
    module_name: str = "map_coloring",
) -> str:
    """A Listing-7-style verifier for an arbitrary region graph.

    Each region gets a ``ceil(log2(num_colors))``-bit color input;
    ``valid`` is true when no adjacent pair matches and (when the color
    count is not a power of two) every color is in range.
    """
    regions = [_check_name(r) for r in regions]
    if len(set(regions)) != len(regions):
        raise WorkloadError("duplicate region names")
    if num_colors < 2:
        raise WorkloadError("need at least two colors")
    region_set = set(regions)
    pairs = []
    for a, b in adjacent:
        if a not in region_set or b not in region_set:
            raise WorkloadError(f"adjacency ({a}, {b}) references unknown region")
        if a == b:
            raise WorkloadError(f"region {a!r} adjacent to itself")
        pairs.append((a, b))

    bits = max(1, (num_colors - 1).bit_length())
    constraints = [f"{a} != {b}" for a, b in pairs]
    if num_colors != (1 << bits):
        constraints += [f"{r} < {num_colors}" for r in regions]
    condition = "\n        && ".join(constraints) if constraints else "1'b1"

    ports = ", ".join(regions + ["valid"])
    declarations = "\n".join(
        f"    input [{bits - 1}:0] {r};" for r in regions
    )
    return (
        f"module {module_name} ({ports});\n"
        f"{declarations}\n"
        "    output valid;\n"
        f"    assign valid = {condition};\n"
        "endmodule\n"
    )


# ----------------------------------------------------------------------
# SAT from DIMACS CNF
# ----------------------------------------------------------------------
def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF: returns (num_variables, clauses).

    Each clause is a list of non-zero ints; negative means negated.
    """
    num_variables = None
    clauses: List[List[int]] = []
    current: List[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            tokens = line.split()
            if len(tokens) != 4 or tokens[1] != "cnf":
                raise WorkloadError(f"bad problem line (line {line_number})")
            num_variables = int(tokens[2])
            continue
        if num_variables is None:
            raise WorkloadError(f"clause before 'p cnf' line (line {line_number})")
        for token in line.split():
            literal = int(token)
            if literal == 0:
                if current:
                    clauses.append(current)
                    current = []
            else:
                if abs(literal) > num_variables:
                    raise WorkloadError(
                        f"literal {literal} exceeds variable count "
                        f"(line {line_number})"
                    )
                current.append(literal)
    if current:
        clauses.append(current)
    if num_variables is None:
        raise WorkloadError("missing 'p cnf' line")
    return num_variables, clauses


def cnf_verilog(
    num_variables: int,
    clauses: Sequence[Sequence[int]],
    module_name: str = "sat",
) -> str:
    """A SAT verifier: one input bit per variable, ``valid`` = formula.

    Run backward with ``valid := true`` to search for a satisfying
    assignment (the circuit-SAT generalization of Section 5.2).
    """
    if num_variables < 1:
        raise WorkloadError("need at least one variable")
    rendered = []
    for clause in clauses:
        if not clause:
            raise WorkloadError("empty clause is trivially false")
        literals = []
        for literal in clause:
            if literal == 0 or abs(literal) > num_variables:
                raise WorkloadError(f"bad literal {literal}")
            name = f"x[{abs(literal) - 1}]"
            literals.append(name if literal > 0 else f"~{name}")
        rendered.append("(" + " | ".join(literals) + ")")
    condition = "\n        & ".join(rendered) if rendered else "1'b1"
    return (
        f"module {module_name} (x, valid);\n"
        f"    input [{num_variables - 1}:0] x;\n"
        "    output valid;\n"
        f"    assign valid = {condition};\n"
        "endmodule\n"
    )


def dimacs_verilog(text: str, module_name: str = "sat") -> str:
    """DIMACS CNF text straight to a Verilog verifier."""
    num_variables, clauses = parse_dimacs(text)
    return cnf_verilog(num_variables, clauses, module_name)


# ----------------------------------------------------------------------
# Subset sum
# ----------------------------------------------------------------------
def subset_sum_verilog(
    weights: Sequence[int],
    target: int,
    module_name: str = "subset_sum",
) -> str:
    """A subset-sum verifier: sel[i] selects weights[i]; valid = (sum == target)."""
    if not weights:
        raise WorkloadError("need at least one weight")
    if any(w < 0 for w in weights) or target < 0:
        raise WorkloadError("weights and target must be non-negative")
    total = sum(weights)
    if target > total:
        raise WorkloadError(f"target {target} exceeds total weight {total}")
    width = max(1, total.bit_length())
    n = len(weights)
    terms = "\n                 + ".join(
        f"(sel[{i}] ? {width}'d{w} : {width}'d0)"
        for i, w in enumerate(weights)
    )
    return (
        f"module {module_name} (sel, valid);\n"
        f"    input [{n - 1}:0] sel;\n"
        "    output valid;\n"
        f"    wire [{width - 1}:0] total;\n"
        f"    assign total = {terms};\n"
        f"    assign valid = total == {width}'d{target};\n"
        "endmodule\n"
    )


# ----------------------------------------------------------------------
# Vertex cover
# ----------------------------------------------------------------------
def vertex_cover_verilog(
    num_vertices: int,
    edges: Sequence[Tuple[int, int]],
    max_size: int,
    module_name: str = "vertex_cover",
) -> str:
    """A vertex-cover verifier: pick[v] selects vertex v; valid when
    every edge is covered and at most ``max_size`` vertices are picked."""
    if num_vertices < 1:
        raise WorkloadError("need at least one vertex")
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices) or u == v:
            raise WorkloadError(f"bad edge ({u}, {v})")
    if not 0 < max_size <= num_vertices:
        raise WorkloadError("max_size must be in 1..num_vertices")

    count_width = max(1, num_vertices.bit_length())
    covered = (
        "\n        & ".join(
            f"(pick[{u}] | pick[{v}])" for u, v in edges
        )
        if edges
        else "1'b1"
    )
    count_terms = " + ".join(
        f"{{{count_width - 1}'d0, pick[{i}]}}" if count_width > 1 else f"pick[{i}]"
        for i in range(num_vertices)
    )
    return (
        f"module {module_name} (pick, valid);\n"
        f"    input [{num_vertices - 1}:0] pick;\n"
        "    output valid;\n"
        f"    wire [{count_width - 1}:0] count;\n"
        f"    assign count = {count_terms};\n"
        f"    wire covered = {covered};\n"
        f"    assign valid = covered & (count <= {count_width}'d{max_size});\n"
        "endmodule\n"
    )
