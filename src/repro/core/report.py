"""qmasm-style text reports of run results.

qmasm reports each solution "in terms of the program-specified symbolic
names rather than as physical qubit numbers", with a tally across the
anneals and the energy; this module renders our :class:`RunResult` the
same way, plus a compilation summary block for the CLI.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.compiler import CompiledProgram
from repro.core.pipeline import PipelineStats
from repro.qmasm.runner import RunResult, Solution


def format_solution(solution: Solution, rank: int) -> str:
    header = (
        f"Solution #{rank} (energy {solution.energy:.4f}, "
        f"tally {solution.num_occurrences})"
    )
    flags = []
    if not solution.pins_respected:
        flags.append("PINS VIOLATED")
    if solution.failed_assertions:
        flags.append(
            "FAILED ASSERTS: " + "; ".join(solution.failed_assertions)
        )
    if flags:
        header += "  [" + " | ".join(flags) + "]"
    lines = [header + ":"]
    for name, value in sorted(solution.values.items()):
        lines.append(f"    {name} = {int(value)}")
    return "\n".join(lines)


def format_run_result(
    result: RunResult,
    max_solutions: Optional[int] = 10,
    valid_only: bool = True,
) -> str:
    """The full report: summary line, solutions, and run statistics."""
    solutions = result.valid_solutions if valid_only else result.solutions
    shown = solutions if max_solutions is None else solutions[:max_solutions]

    lines: List[str] = []
    total_reads = result.sampleset.total_reads() if len(result.sampleset) else 0
    lines.append(
        f"{len(solutions)} solution(s) over {total_reads} read(s); "
        f"{result.num_logical_variables()} logical variable(s)"
        + (
            f", {result.num_physical_qubits()} physical qubit(s)"
            if result.embedding is not None
            else ""
        )
    )
    for rank, solution in enumerate(shown, start=1):
        lines.append("")
        lines.append(format_solution(solution, rank))
    hidden = len(solutions) - len(shown)
    if hidden > 0:
        lines.append("")
        lines.append(f"... {hidden} more solution(s) not shown")

    info_bits = []
    if "timing" in result.info:
        access_ms = result.info["timing"]["qpu_access_time_us"] / 1000.0
        info_bits.append(f"QPU access time {access_ms:.1f} ms")
    if "chain_break_fraction" in result.info:
        info_bits.append(
            f"chain breaks {result.info['chain_break_fraction']:.1%}"
        )
    if result.info.get("roof_duality_fixed"):
        info_bits.append(
            f"{result.info['roof_duality_fixed']} qubit(s) elided a priori"
        )
    resilience = result.info.get("resilience", {})
    if resilience.get("sample_retries"):
        info_bits.append(
            f"{resilience['sample_retries']} sample retry(ies)"
        )
    if resilience.get("chain_strength_escalations"):
        info_bits.append(
            f"chain strength escalated "
            f"{resilience['chain_strength_escalations']}x"
        )
    answered_by = result.info.get("answered_by")
    if answered_by not in (None, "dwave") and "fallback_solver" in result.info:
        info_bits.append(f"answered by fallback tier {answered_by!r}")
    if info_bits:
        lines.append("")
        lines.append("run info: " + ", ".join(info_bits))
    return "\n".join(lines)


def format_pass_table(stats: PipelineStats, title: Optional[str] = None) -> str:
    """The ``--time-passes`` table: per-stage wall time and counters."""
    return stats.format_table(title=title)


def format_compile_summary(program: CompiledProgram) -> str:
    """The per-compilation statistics block (Section 6.1's metrics)."""
    stats = program.statistics()
    lines = [
        f"module {program.netlist.name!r}:",
        f"    Verilog lines     : {stats['verilog_lines']}",
        f"    EDIF lines        : {stats['edif_lines']}",
        f"    QMASM lines       : {stats['qmasm_lines']}",
        f"    cells             : {stats['num_cells']} {stats['cells']}",
        f"    logical variables : {stats['logical_variables']}",
        f"    logical terms     : {stats['logical_terms']}",
    ]
    return "\n".join(lines)
