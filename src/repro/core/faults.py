"""Deterministic fault injection for the simulated annealing stack.

Real D-Wave 2000Q units never expose a perfect Chimera C16: every chip
ships with fabrication drop-out (dead qubits *and* dead couplers), and a
serving fleet additionally sees transient solver-side failures --
timed-out sample calls, failed programming cycles -- plus reads whose
chains came apart.  Published annealing results cope with all of this
through retries, gauge (spin-reversal) averaging, and chain-break
repair; this module provides the machinery to *reproduce* those
degraded conditions on demand, deterministically, so the resilience
layer in :mod:`repro.qmasm.runner` can be exercised from tests and from
the ``--inject-fault`` CLI flag.

Three pieces:

* :class:`FaultSpec` -- a declarative description of the faults to
  inject ("kill 5% of qubits", "fail the first 2 sample calls", "break
  chains in 30% of reads"), parseable from compact CLI text via
  :func:`parse_fault_spec`.
* :class:`FaultInjector` -- the stateful engine a
  :class:`~repro.solvers.machine.DWaveSimulator` consults: it degrades
  the working graph once at construction (the *yield model*) and
  injects transient failures / read corruption per sample call, keeping
  counters of everything it did.
* :func:`break_chains` -- a test-facing helper that deterministically
  breaks chains in a physical sample set, for exercising majority-vote
  unembedding and chain-strength escalation in isolation.

The module deliberately imports nothing else from :mod:`repro` at
module scope, so the machine model can depend on it without cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

    from repro.hardware.embedding import Embedding
    from repro.solvers.sampleset import SampleSet


class TransientSolverError(RuntimeError):
    """A transient, retryable solver-side failure.

    Models the SAPI-style errors a real fleet sees -- a timed-out sample
    call, a dropped programming cycle, a momentarily unavailable solver.
    The :class:`~repro.qmasm.runner.RetryPolicy` treats these as
    retryable; anything else a backend raises is considered permanent.

    Attributes:
        kind: ``"injected"``, ``"sample_failure"``,
            ``"programming_drop"``, or ``"machine_flaky"`` -- what
            flavor of transient fault this was.
    """

    def __init__(self, message: str, kind: str = "sample_failure"):
        super().__init__(message)
        self.kind = kind


class MachineCrashError(RuntimeError):
    """A whole fleet machine died and will not come back this run.

    Unlike :class:`TransientSolverError`, a crash is *permanent*: the
    fleet layer (:mod:`repro.solvers.fleet`) quarantines the machine for
    the rest of the run and re-dispatches its orphaned shards to healthy
    machines.  Zick et al. (arxiv 1503.06453) document exactly this
    failure mode on real annealer installations -- per-device outages
    that take a unit out of the fleet mid-campaign.

    Attributes:
        machine: fleet index of the machine that crashed.
        dispatch: 1-based dispatch attempt at which the crash fired.
    """

    def __init__(self, message: str, machine: int, dispatch: int = 0):
        super().__init__(message)
        self.machine = machine
        self.dispatch = dispatch


@dataclass(frozen=True)
class FaultSpec:
    """A declarative fault model for one simulated machine.

    The *yield* fields describe permanent fabrication damage applied to
    the working graph once, at machine construction; the *transient*
    fields describe per-sample-call failures; ``chain_break_rate``
    corrupts reads so that chains disagree after embedding.  Everything
    is driven by ``seed``, so the same spec always injects the same
    faults.

    Attributes:
        dead_qubit_fraction: fraction of (remaining) qubits to kill,
            chosen pseudo-randomly from ``seed``.
        dead_qubits: explicit qubit indices to kill (indices absent from
            the graph are ignored, so one list serves many sizes).
        dead_coupler_fraction: fraction of couplers to kill.
        dead_couplers: explicit ``(u, v)`` coupler pairs to kill.
        dead_cell_fraction: fraction of native cells (topology tiles)
            to kill wholesale -- every qubit in a chosen tile dies
            together, the spatially-correlated damage a fabrication
            defect causes.  Requires the degrading machine to supply
            its :class:`~repro.hardware.topology.Topology`.
        dead_cells: explicit ``(row, col)`` tile keys to kill (keys
            absent from the topology's tiling are ignored).
        fail_first_samples: fail this many initial ``sample_ising``
            calls with a :class:`TransientSolverError`.
        sample_failure_rate: probability that any later sample call
            fails transiently (a timeout, in effect).
        programming_drop_rate: probability that a sample call fails at
            programming time (a dropped programming cycle).
        chain_break_rate: fraction of reads in which one random qubit's
            spin is flipped, breaking whatever chain contains it.
        read_corruption_rate: fraction of *logical* reads corrupted
            after unembedding and postprocessing: one meaningful spin is
            flipped while the reported energy is left stale -- the
            low-energy-but-wrong reads that only end-to-end
            certification (:mod:`repro.qmasm.certify`) can catch.
        machine_crashes: fleet-level fault: ``(machine_index, dispatch)``
            pairs -- the machine's ``dispatch``-th shard dispatch (and
            every later one) raises :class:`MachineCrashError`, modeling
            a unit that dies mid-run and stays dead.
        machine_stragglers: fleet-level fault: ``(machine_index,
            factor)`` pairs -- the machine's modeled QPU latency is
            multiplied by ``factor``, so fleet health tracking sees a
            unit running far slower than its peers.
        machine_flaky: fleet-level fault: ``(machine_index, rate)``
            pairs -- each dispatch to the machine fails with a
            :class:`TransientSolverError` (kind ``"machine_flaky"``)
            with probability ``rate``, drawn deterministically from
            ``seed``.
        seed: drives every pseudo-random choice above.
    """

    dead_qubit_fraction: float = 0.0
    dead_qubits: Tuple[int, ...] = ()
    dead_coupler_fraction: float = 0.0
    dead_couplers: Tuple[Tuple[int, int], ...] = ()
    dead_cell_fraction: float = 0.0
    dead_cells: Tuple[Tuple[int, int], ...] = ()
    fail_first_samples: int = 0
    sample_failure_rate: float = 0.0
    programming_drop_rate: float = 0.0
    chain_break_rate: float = 0.0
    read_corruption_rate: float = 0.0
    machine_crashes: Tuple[Tuple[int, int], ...] = ()
    machine_stragglers: Tuple[Tuple[int, float], ...] = ()
    machine_flaky: Tuple[Tuple[int, float], ...] = ()
    seed: int = 0

    def __post_init__(self):
        for name in (
            "dead_qubit_fraction",
            "dead_coupler_fraction",
            "dead_cell_fraction",
            "sample_failure_rate",
            "programming_drop_rate",
            "chain_break_rate",
            "read_corruption_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.fail_first_samples < 0:
            raise ValueError("fail_first_samples must be >= 0")
        # Tuples keep the spec hashable (it participates in cache keys).
        object.__setattr__(self, "dead_qubits", tuple(self.dead_qubits))
        object.__setattr__(
            self,
            "dead_couplers",
            tuple(tuple(pair) for pair in self.dead_couplers),
        )
        object.__setattr__(
            self,
            "dead_cells",
            tuple(tuple(cell) for cell in self.dead_cells),
        )
        crashes = []
        for machine, dispatch in self.machine_crashes:
            machine, dispatch = int(machine), int(dispatch)
            if machine < 0:
                raise ValueError("machine_crashes indices must be >= 0")
            if dispatch < 1:
                raise ValueError(
                    "machine_crashes dispatch numbers are 1-based (>= 1)"
                )
            crashes.append((machine, dispatch))
        object.__setattr__(self, "machine_crashes", tuple(crashes))
        stragglers = []
        for machine, factor in self.machine_stragglers:
            machine, factor = int(machine), float(factor)
            if machine < 0:
                raise ValueError("machine_stragglers indices must be >= 0")
            if factor < 1.0:
                raise ValueError(
                    f"machine_stragglers factor must be >= 1, got {factor!r}"
                )
            stragglers.append((machine, factor))
        object.__setattr__(self, "machine_stragglers", tuple(stragglers))
        flaky = []
        for machine, rate in self.machine_flaky:
            machine, rate = int(machine), float(rate)
            if machine < 0:
                raise ValueError("machine_flaky indices must be >= 0")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"machine_flaky rate must be in [0, 1], got {rate!r}"
                )
            flaky.append((machine, rate))
        object.__setattr__(self, "machine_flaky", tuple(flaky))

    @property
    def has_yield_faults(self) -> bool:
        """True when the spec damages the working graph itself."""
        return bool(
            self.dead_qubit_fraction
            or self.dead_qubits
            or self.dead_coupler_fraction
            or self.dead_couplers
            or self.dead_cell_fraction
            or self.dead_cells
        )

    @property
    def has_transient_faults(self) -> bool:
        return bool(
            self.fail_first_samples
            or self.sample_failure_rate
            or self.programming_drop_rate
            or self.chain_break_rate
            or self.read_corruption_rate
        )

    @property
    def has_machine_faults(self) -> bool:
        """True when the spec injects fleet-level machine faults."""
        return bool(
            self.machine_crashes
            or self.machine_stragglers
            or self.machine_flaky
        )


#: CLI spec keys -> (FaultSpec field, value parser).  Shared between
#: ``parse_fault_spec`` and its error messages.
_SPEC_KEYS = {
    "dead_qubits": "dead_qubit_fraction",
    "dead_couplers": "dead_coupler_fraction",
    "dead_cells": "dead_cell_fraction",
    "fail_first": "fail_first_samples",
    "fail_rate": "sample_failure_rate",
    "drop_rate": "programming_drop_rate",
    "break_chains": "chain_break_rate",
    "read_corruption": "read_corruption_rate",
    "machine_crash": "machine_crashes",
    "machine_straggler": "machine_stragglers",
    "machine_flaky": "machine_flaky",
    "seed": "seed",
}
_INT_FIELDS = {"fail_first_samples", "seed"}
#: Fleet-level machine-fault fields and their default per-machine
#: parameter: crash on the 2nd dispatch (serve one shard, then die),
#: run 4x slower, fail one dispatch in four.
_MACHINE_FIELDS = {
    "machine_crashes": 2.0,
    "machine_stragglers": 4.0,
    "machine_flaky": 0.25,
}


def _parse_fraction(key: str, text: str) -> float:
    """``"5%"`` -> 0.05; ``"0.05"`` -> 0.05."""
    text = text.strip()
    try:
        if text.endswith("%"):
            return float(text[:-1]) / 100.0
        return float(text)
    except ValueError:
        raise ValueError(f"bad value {text!r} for fault key {key!r}") from None


def _parse_machine_clause(key: str, field: str, text: str) -> tuple:
    """Parse a fleet-level machine-fault value.

    Grammar: ``INDEX[:PARAM]`` entries joined by ``+`` (commas separate
    whole clauses), e.g. ``machine_crash=1:3+2`` crashes machine 1 on
    its 3rd dispatch and machine 2 on its 2nd (the default), and
    ``machine_flaky=0:30%`` makes machine 0 fail 30% of dispatches.
    """
    entries = []
    for part in text.split("+"):
        part = part.strip()
        if not part:
            continue
        index_text, sep, param_text = part.partition(":")
        try:
            index = int(index_text.strip())
        except ValueError:
            raise ValueError(
                f"bad machine index {index_text.strip()!r} for fault key "
                f"{key!r} (expected INDEX[:PARAM])"
            ) from None
        param = (
            _parse_fraction(key, param_text) if sep else _MACHINE_FIELDS[field]
        )
        if field == "machine_crashes":
            param = int(param)
        entries.append((index, param))
    if not entries:
        raise ValueError(f"empty machine list for fault key {key!r}")
    return tuple(entries)


def parse_fault_spec(text: str, base: Optional[FaultSpec] = None) -> FaultSpec:
    """Parse a compact ``--inject-fault`` spec string.

    The grammar is ``key=value`` clauses separated by commas::

        dead_qubits=5%,fail_first=2,break_chains=0.3,seed=7
        machine_crash=1,machine_straggler=2:8,machine_flaky=0:30%,seed=7

    Keys: ``dead_qubits`` / ``dead_couplers`` / ``dead_cells``
    (fraction or percentage), ``fail_first`` (count), ``fail_rate`` /
    ``drop_rate`` / ``break_chains`` / ``read_corruption`` (fraction or
    percentage), ``machine_crash`` / ``machine_straggler`` /
    ``machine_flaky`` (fleet-level: ``INDEX[:PARAM]`` entries joined by
    ``+``; the parameter is the 1-based crash dispatch, the slowdown
    factor, or the per-dispatch failure rate respectively), ``seed``
    (int).  Explicit dead-qubit/coupler/cell *lists* are API-only
    (:class:`FaultSpec(dead_qubits=...) <FaultSpec>`).

    Args:
        text: the spec string.
        base: an existing spec to override field-by-field, so repeated
            CLI flags compose left to right.

    Raises:
        ValueError: on unknown keys or malformed values.
    """
    overrides: Dict[str, object] = {}
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(
                f"bad fault clause {clause!r}: expected key=value "
                f"(keys: {', '.join(sorted(_SPEC_KEYS))})"
            )
        key, _, value = clause.partition("=")
        key = key.strip()
        field = _SPEC_KEYS.get(key)
        if field is None:
            raise ValueError(
                f"unknown fault key {key!r} "
                f"(keys: {', '.join(sorted(_SPEC_KEYS))})"
            )
        if field in _INT_FIELDS:
            try:
                overrides[field] = int(value.strip())
            except ValueError:
                raise ValueError(
                    f"bad value {value.strip()!r} for fault key {key!r}"
                ) from None
        elif field in _MACHINE_FIELDS:
            overrides[field] = _parse_machine_clause(key, field, value)
        else:
            overrides[field] = _parse_fraction(key, value)
    if base is None:
        return FaultSpec(**overrides)
    return replace(base, **overrides)


def spec_fingerprint(spec: Optional[FaultSpec]) -> str:
    """A canonical string for cache keys; ``"none"`` for no spec."""
    if spec is None:
        return "none"
    parts = [f"{f.name}={getattr(spec, f.name)!r}" for f in fields(spec)]
    return "FaultSpec(" + ", ".join(parts) + ")"


class FaultInjector:
    """The stateful engine that applies a :class:`FaultSpec`.

    One injector belongs to one machine.  :meth:`degrade` is called once
    to damage the working graph; :meth:`before_sample` and
    :meth:`corrupt_records` are called per ``sample_ising`` invocation.
    All randomness is seeded from the spec, so a given injector always
    misbehaves identically -- which is what makes resilience tests
    reproducible.

    Attributes:
        spec: the driving fault specification.
        sample_calls: how many sample calls were attempted.
        transient_failures: how many calls this injector failed.
        reads_corrupted: how many reads had a spin flipped.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._read_rng = np.random.default_rng(spec.seed + 1)
        self._logical_rng = np.random.default_rng(spec.seed + 2)
        self.sample_calls = 0
        self.transient_failures = 0
        self.reads_corrupted = 0
        self.logical_reads_corrupted = 0

    # -- yield model ----------------------------------------------------
    def degrade(self, graph: "nx.Graph", topology=None) -> "nx.Graph":
        """Apply the yield model: a damaged *copy* of ``graph``.

        A copy (never in-place mutation) so that graph fingerprints
        memoized for the pristine graph stay valid and embedding caches
        keyed on the degraded graph never alias the healthy one.

        Args:
            graph: the working graph to damage.
            topology: the machine's
                :class:`~repro.hardware.topology.Topology`; required
                when the spec kills whole native cells, because which
                qubits form a cell is a per-family question.
        """
        spec = self.spec
        out = graph.copy()
        rng = random.Random(spec.seed)
        if spec.dead_cell_fraction or spec.dead_cells:
            if topology is None:
                raise ValueError(
                    "dead-cell faults need the machine topology to know "
                    "which qubits form a cell"
                )
            tiles = topology.tiles()
            doomed = [tuple(cell) for cell in spec.dead_cells]
            if spec.dead_cell_fraction:
                keys = sorted(tiles)
                count = int(round(spec.dead_cell_fraction * len(keys)))
                doomed.extend(rng.sample(keys, count))
            for key in doomed:
                out.remove_nodes_from(
                    [q for q in tiles.get(key, ()) if q in out]
                )
        if spec.dead_qubit_fraction:
            nodes = sorted(out.nodes())
            count = int(round(spec.dead_qubit_fraction * len(nodes)))
            out.remove_nodes_from(rng.sample(nodes, count))
        if spec.dead_qubits:
            out.remove_nodes_from([q for q in spec.dead_qubits if q in out])
        if spec.dead_coupler_fraction:
            edges = sorted(tuple(sorted(e)) for e in out.edges())
            count = int(round(spec.dead_coupler_fraction * len(edges)))
            out.remove_edges_from(rng.sample(edges, count))
        if spec.dead_couplers:
            out.remove_edges_from(
                [(u, v) for u, v in spec.dead_couplers if out.has_edge(u, v)]
            )
        return out

    # -- transient faults -----------------------------------------------
    def before_sample(self) -> None:
        """Raise :class:`TransientSolverError` if this call must fail."""
        self.sample_calls += 1
        spec = self.spec
        if self.sample_calls <= spec.fail_first_samples:
            self.transient_failures += 1
            raise TransientSolverError(
                f"injected failure of sample call "
                f"{self.sample_calls}/{spec.fail_first_samples}",
                kind="injected",
            )
        if spec.programming_drop_rate and self._rng.random() < spec.programming_drop_rate:
            self.transient_failures += 1
            raise TransientSolverError(
                "injected programming-cycle drop", kind="programming_drop"
            )
        if spec.sample_failure_rate and self._rng.random() < spec.sample_failure_rate:
            self.transient_failures += 1
            raise TransientSolverError(
                "injected sample-call timeout", kind="sample_failure"
            )

    def corrupt_records(self, records: np.ndarray) -> Tuple[np.ndarray, int]:
        """Flip one random spin in ``chain_break_rate`` of the reads.

        Returns ``(records, corrupted_count)``; the input array is
        copied before modification.  A flipped qubit breaks whatever
        chain contains it, so downstream majority-vote unembedding and
        chain-break accounting see realistic damage.
        """
        rate = self.spec.chain_break_rate
        if not rate or records.size == 0 or records.shape[1] == 0:
            return records, 0
        hit = self._read_rng.random(records.shape[0]) < rate
        count = int(hit.sum())
        if not count:
            return records, 0
        out = records.copy()
        columns = self._read_rng.integers(0, records.shape[1], size=count)
        rows = np.flatnonzero(hit)
        out[rows, columns] = -out[rows, columns]
        self.reads_corrupted += count
        return out, count

    def corrupt_logical(
        self,
        records: np.ndarray,
        columns: Optional[np.ndarray] = None,
        observable: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flip one spin in ``read_corruption_rate`` of *logical* reads.

        Unlike :meth:`corrupt_records` (physical chain damage, applied
        before energies are computed), this models readout misreporting
        at the very end of the pipeline: the returned rows disagree with
        the states the machine actually reached, and the caller is
        expected to keep the *stale* energies -- producing exactly the
        low-energy-but-wrong reads certification must flag.

        Args:
            records: the logical spin matrix (copied, never mutated).
            columns: optional candidate column indices to flip (the
                caller restricts these to variables that actually carry
                bias or couplings).
            observable: optional boolean matrix shaped like ``records``;
                ``observable[r, i]`` marks columns whose flip is
                *detectable* in row ``r`` (the caller typically marks
                columns with a nonzero local field, whose flip provably
                changes the row's energy).  Hit rows pick uniformly
                among their observable candidates; a hit row with no
                observable candidate is left intact -- an undetectable
                "corruption" would be indistinguishable from a valid
                read, by definition.

        Returns:
            ``(records, corrupted_rows)`` -- the possibly-copied matrix
            and the sorted indices of the corrupted rows.
        """
        rate = self.spec.read_corruption_rate
        empty = np.zeros(0, dtype=int)
        if not rate or records.size == 0 or records.shape[1] == 0:
            return records, empty
        if columns is None:
            columns = np.arange(records.shape[1])
        columns = np.asarray(columns, dtype=int)
        if columns.size == 0:
            return records, empty
        hit = self._logical_rng.random(records.shape[0]) < rate
        candidates = np.flatnonzero(hit)
        if not len(candidates):
            return records, empty
        out = records.copy()
        corrupted = []
        for row in candidates:
            pool = (
                columns[observable[row, columns]]
                if observable is not None
                else columns
            )
            if not len(pool):
                continue
            pick = int(pool[self._logical_rng.integers(0, len(pool))])
            out[row, pick] = -out[row, pick]
            corrupted.append(int(row))
        rows = np.asarray(corrupted, dtype=int)
        self.logical_reads_corrupted += len(rows)
        return out, rows

    # -- observability ---------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "sample_calls": self.sample_calls,
            "transient_failures": self.transient_failures,
            "reads_corrupted": self.reads_corrupted,
            "logical_reads_corrupted": self.logical_reads_corrupted,
        }

    def reset(self) -> None:
        """Restore the injector to its just-constructed state."""
        self._rng = random.Random(self.spec.seed)
        self._read_rng = np.random.default_rng(self.spec.seed + 1)
        self._logical_rng = np.random.default_rng(self.spec.seed + 2)
        self.sample_calls = 0
        self.transient_failures = 0
        self.reads_corrupted = 0
        self.logical_reads_corrupted = 0


def break_chains(
    sampleset: "SampleSet",
    embedding: "Embedding",
    fraction: float,
    seed: int = 0,
) -> "SampleSet":
    """Deterministically break chains in a *physical* sample set.

    For each selected read, one qubit inside one multi-qubit chain is
    flipped against its chain-mates, guaranteeing the chain disagrees.
    Physical energies are left untouched (unembedding recomputes logical
    energies anyway).  This is the test harness for majority-vote
    unembedding, ``chain_break_fraction`` accounting, and
    chain-strength escalation.

    Args:
        sampleset: physical samples over embedded qubits.
        embedding: the embedding whose chains should break.
        fraction: fraction of reads to damage (0..1).
        seed: RNG seed.

    Raises:
        ValueError: if no chain has more than one qubit (nothing can
            break) or ``fraction`` is out of range.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    multi = [sorted(chain) for chain in embedding.chains.values() if len(chain) > 1]
    if not multi:
        raise ValueError("embedding has no multi-qubit chain to break")
    multi.sort()
    rng = random.Random(seed)
    index = {q: i for i, q in enumerate(sampleset.variables)}
    records = sampleset.records.copy()
    for row in range(records.shape[0]):
        if rng.random() >= fraction:
            continue
        chain = multi[rng.randrange(len(multi))]
        victim = chain[rng.randrange(len(chain))]
        column = index[victim]
        # Force disagreement with the rest of the chain: set the victim
        # opposite to the chain majority (flip handles ties fine).
        others = [records[row, index[q]] for q in chain if q != victim]
        majority = 1 if sum(int(s) for s in others) >= 0 else -1
        records[row, column] = -majority
    out = type(sampleset)(
        list(sampleset.variables),
        records,
        sampleset.energies.copy(),
        sampleset.occurrences.copy(),
        dict(sampleset.info),
    )
    return out
