"""Structured tracing + metrics: the observability layer.

The pipeline is now a multi-stage system (compile and run pass
pipelines, caches, retry/fallback tiers, batched annealing kernels), and
diagnosing an annealer result hinges on per-phase instrumentation:
embedding quality, chain-break rates, sweep throughput, cache and retry
behaviour.  This module provides the process-wide subsystem the rest of
the code records into:

* **Spans** -- hierarchical timed regions (``span("compile.techmap")``)
  carrying wall time, key/value attributes, and instant events, recorded
  into an in-memory tree.  The tree exports as plain JSON
  (:meth:`Tracer.to_dict`) and as a Chrome ``trace_event`` file
  (:meth:`Tracer.to_chrome_trace`) loadable in ``about:tracing`` or
  Perfetto.
* **Metrics** -- a registry of named counters, gauges, and histograms
  (``solver.sweeps_per_s``, ``embed.chain_length``,
  ``runner.sample_retries``, ``cache.compile.hits``, ...) with a
  plain-text summary renderer and JSON export.  Registries can be
  *parented*: a per-run registry forwards every increment to the ambient
  process-wide registry, so one number is only ever computed in one
  place but visible at both scopes.

Both facilities are **zero-overhead when disabled**, which is the
default: the ambient tracer and registry are null implementations whose
``span()``/``counter()`` calls return shared no-op singletons -- no span
records are allocated at all (``span_allocations()`` lets tests assert
this).  Enable collection for a region of code with::

    from repro.core import trace

    with trace.capture() as (tracer, metrics):
        result = compiler.run(program, ...)
    tracer.write_chrome_trace("t.json")
    print(metrics.render_summary())

or process-wide with :func:`install` / :func:`uninstall` (the CLI's
``--trace``/``--metrics`` flags do exactly this).

Determinism: span *content* (names, nesting, attributes, events) is a
pure function of the work performed -- two same-seed runs produce
identical :meth:`Span.content` trees.  Wall-clock values (start times,
durations, and attributes named in :data:`TIMING_ATTR_KEYS`) are kept
separate so they can be stripped for comparison.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "TIMING_ATTR_KEYS",
    "tracer",
    "metrics",
    "span",
    "record",
    "event",
    "enabled",
    "install",
    "uninstall",
    "capture",
    "span_allocations",
]

#: Attribute keys that carry wall-clock-derived values.  They are
#: reported normally but excluded from :meth:`Span.content`, so trace
#: content stays deterministic for same-seed runs.
TIMING_ATTR_KEYS = frozenset(
    {"wall_time_s", "duration_s", "sampling_time_s", "sweeps_per_s", "time_s"}
)

#: Module-wide count of real :class:`Span` records ever allocated.
#: Tests use this to prove the disabled fast path allocates nothing.
_span_allocations = 0


def span_allocations() -> int:
    """How many real :class:`Span` records this process has allocated."""
    return _span_allocations


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class Span:
    """One timed, attributed region of work; a node in the trace tree.

    Spans are created by :meth:`Tracer.span` (as a context manager) or
    :meth:`Tracer.record` (already-completed work with an explicit
    duration); user code never constructs them directly.
    """

    __slots__ = (
        "name",
        "attributes",
        "events",
        "children",
        "start_s",
        "wall_time_s",
        "_tracer",
    )

    #: Real spans record; the null span reports False so callers can
    #: cheaply tell whether tracing is live.
    is_recording = True

    def __init__(self, name: str, tracer: "Tracer", start_s: float):
        global _span_allocations
        _span_allocations += 1
        self.name = name
        self.attributes: Dict[str, Any] = {}
        self.events: List[Dict[str, Any]] = []
        self.children: List[Span] = []
        self.start_s = start_s
        self.wall_time_s = 0.0
        self._tracer = tracer

    # -- recording -----------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        """Attach an instant event (a point in time) to this span."""
        entry: Dict[str, Any] = {"name": name}
        if attributes:
            entry["attributes"] = attributes
        entry["ts_s"] = self._tracer._clock()
        self.events.append(entry)

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._end_span(self)
        return False

    # -- structure access ----------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree, or None."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def span_names(self) -> List[str]:
        return [node.name for node in self.walk()]

    # -- export --------------------------------------------------------
    def to_dict(self, include_times: bool = True) -> Dict[str, Any]:
        """This subtree as plain data (JSON-ready).

        With ``include_times=False`` all wall-clock values -- start
        offsets, durations, event timestamps, and attributes named in
        :data:`TIMING_ATTR_KEYS` -- are dropped, leaving only content
        that is deterministic for a fixed seed.
        """
        attributes = self.attributes
        if not include_times:
            attributes = {
                k: v for k, v in attributes.items() if k not in TIMING_ATTR_KEYS
            }
        node: Dict[str, Any] = {"name": self.name}
        if include_times:
            node["start_s"] = self.start_s
            node["wall_time_s"] = self.wall_time_s
        if attributes:
            node["attributes"] = dict(attributes)
        if self.events:
            node["events"] = [
                {
                    k: v
                    for k, v in entry.items()
                    if include_times or k != "ts_s"
                }
                for entry in self.events
            ]
        if self.children:
            node["children"] = [
                child.to_dict(include_times=include_times)
                for child in self.children
            ]
        return node

    def content(self) -> Dict[str, Any]:
        """The deterministic content of this subtree (timestamps stripped)."""
        return self.to_dict(include_times=False)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.wall_time_s:.4f}s, "
            f"{len(self.children)} child(ren))"
        )


class _NullSpan:
    """The shared no-op span: every disabled-path call lands here."""

    __slots__ = ()
    is_recording = False
    name = ""
    attributes: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    children: List["Span"] = []
    start_s = 0.0
    wall_time_s = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def walk(self):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def span_names(self) -> List[str]:
        return []

    def to_dict(self, include_times: bool = True) -> Dict[str, Any]:
        return {}

    def content(self) -> Dict[str, Any]:
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Records a forest of :class:`Span` trees for one process/region.

    Args:
        clock: monotonic time source (seconds); ``time.perf_counter``
            by default.  Injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.epoch_s: float = clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; use as a context manager to time a region."""
        node = Span(name, self, self._clock())
        if attributes:
            node.attributes.update(attributes)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        return node

    def _end_span(self, node: Span) -> None:
        node.wall_time_s = self._clock() - node.start_s
        # Tolerate mispaired exits instead of corrupting the stack.
        if self._stack and self._stack[-1] is node:
            self._stack.pop()
        elif node in self._stack:
            while self._stack and self._stack.pop() is not node:
                pass

    def record(self, name: str, duration_s: float = 0.0, **attributes: Any) -> Span:
        """Attach an already-completed span (explicit duration).

        For instrumenting code that measures its own elapsed time (the
        solvers do): the span is parented under the currently open span
        and never enters the stack.
        """
        now = self._clock()
        node = Span(name, self, now - duration_s)
        node.wall_time_s = duration_s
        if attributes:
            node.attributes.update(attributes)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(node)
        else:
            self.roots.append(node)
        return node

    def event(self, name: str, **attributes: Any) -> None:
        """An instant event on the currently open span (or the forest)."""
        if self._stack:
            self._stack[-1].add_event(name, **attributes)
        else:
            # No open span: record as a zero-length root for visibility.
            node = self.record(name)
            node.attributes.update(attributes)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- structure access ----------------------------------------------
    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Optional[Span]:
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def span_names(self) -> List[str]:
        return [node.name for node in self.walk()]

    # -- export --------------------------------------------------------
    def to_dict(self, include_times: bool = True) -> Dict[str, Any]:
        return {
            "spans": [
                root.to_dict(include_times=include_times)
                for root in self.roots
            ]
        }

    def content(self) -> Dict[str, Any]:
        """Deterministic trace content (all timestamps stripped)."""
        return self.to_dict(include_times=False)

    def to_json(self, include_times: bool = True, indent: int = 2) -> str:
        return json.dumps(
            self.to_dict(include_times=include_times),
            indent=indent,
            sort_keys=True,
            default=str,
        )

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome ``trace_event`` object.

        Spans become complete (``"ph": "X"``) events and span events
        become instant (``"ph": "i"``) events; timestamps are
        microseconds relative to the tracer's epoch.  Load the written
        file in ``about:tracing`` or https://ui.perfetto.dev.
        """
        trace_events: List[Dict[str, Any]] = []
        for node in self.walk():
            trace_events.append(
                {
                    "name": node.name,
                    "cat": node.name.split(".", 1)[0] or "span",
                    "ph": "X",
                    "ts": round((node.start_s - self.epoch_s) * 1e6, 3),
                    "dur": round(node.wall_time_s * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": {k: _jsonable(v) for k, v in node.attributes.items()},
                }
            )
            for entry in node.events:
                trace_events.append(
                    {
                        "name": entry["name"],
                        "cat": "event",
                        "ph": "i",
                        "s": "t",
                        "ts": round((entry["ts_s"] - self.epoch_s) * 1e6, 3),
                        "pid": 0,
                        "tid": 0,
                        "args": {
                            k: _jsonable(v)
                            for k, v in entry.get("attributes", {}).items()
                        },
                    }
                )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)

    def __repr__(self) -> str:
        return f"Tracer({len(self.roots)} root span(s))"


class NullTracer(Tracer):
    """The disabled tracer: every call returns the shared no-op span."""

    enabled = False

    def __init__(self):
        super().__init__(clock=lambda: 0.0)

    def span(self, name: str, **attributes: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def record(self, name: str, duration_s: float = 0.0, **attributes: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        pass


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    try:
        # numpy scalars and similar
        return value.item()
    except AttributeError:
        return str(value)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_parent")

    def __init__(self, parent: Optional["Counter"] = None):
        self.value: float = 0
        self._parent = parent

    def inc(self, amount: float = 1) -> None:
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def get(self) -> float:
        return self.value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value", "_parent")

    def __init__(self, parent: Optional["Gauge"] = None):
        self.value: float = 0.0
        self._parent = parent

    def set(self, value: float) -> None:
        self.value = float(value)
        if self._parent is not None:
            self._parent.set(value)

    def get(self) -> float:
        return self.value


class Histogram:
    """A streaming distribution: count, sum, min, max (+ bounded samples).

    The first :attr:`max_samples` observations are retained so tests and
    reports can compute exact percentiles on small runs; beyond that
    only the streaming aggregates update, keeping memory bounded on
    production-sized runs.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "max_samples", "_parent")

    def __init__(self, parent: Optional["Histogram"] = None, max_samples: int = 4096):
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")
        self.samples: List[float] = []
        self.max_samples = max_samples
        self._parent = parent

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        if self._parent is not None:
            self._parent.observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch (vectorized for numpy arrays)."""
        values = list(map(float, values))
        if not values:
            return
        self.count += len(values)
        self.total += sum(values)
        low, high = min(values), max(values)
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        room = self.max_samples - len(self.samples)
        if room > 0:
            self.samples.extend(values[:room])
        if self._parent is not None:
            self._parent.observe_many(values)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile over the retained samples (q in [0, 100])."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[int(index)]

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self):
        super().__init__()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self):
        super().__init__()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self):
        super().__init__()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use.

    Args:
        parent: optional registry every recording is forwarded to.  A
            per-run registry parented to the ambient process registry
            gives run-scoped numbers without double bookkeeping: the
            increment happens once and both scopes observe it.
    """

    enabled = True

    def __init__(self, parent: Optional["MetricsRegistry"] = None):
        self.parent = parent
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- creation/access -----------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.get(name)
                if metric is None:
                    parent = (
                        self.parent.counter(name) if self.parent is not None else None
                    )
                    metric = self._counters[name] = Counter(parent)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(name)
                if metric is None:
                    parent = (
                        self.parent.gauge(name) if self.parent is not None else None
                    )
                    metric = self._gauges[name] = Gauge(parent)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(name)
                if metric is None:
                    parent = (
                        self.parent.histogram(name)
                        if self.parent is not None
                        else None
                    )
                    metric = self._histograms[name] = Histogram(parent)
        return metric

    def value(self, name: str, default: float = 0) -> float:
        """The current value of a counter or gauge (0 if never touched)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def hit_ratio(self, prefix: str) -> float:
        """Derived hit ratio for a ``<prefix>.hits``/``.misses`` pair.

        Well-defined for every counter state: zero lookups (a freshly
        started server rendering ``/metrics`` before any request) is
        0.0, never a ZeroDivisionError, and a non-finite result (a
        pathological counter holding ``inf``/``nan``) is clamped to 0.0
        so the rendered summary can never contain ``nan``.
        """
        hits = self.value(f"{prefix}.hits")
        lookups = hits + self.value(f"{prefix}.misses")
        if lookups <= 0 or not math.isfinite(lookups):
            return 0.0
        ratio = hits / lookups
        return ratio if math.isfinite(ratio) else 0.0

    def render_summary(self, title: str = "metrics:") -> str:
        """An aligned plain-text table of every metric.

        Counter pairs named ``<prefix>.hits``/``<prefix>.misses`` also
        get a derived ``<prefix>.hit_ratio`` line -- derived at render
        time, never stored, so the ratio cannot drift from its inputs.
        """
        rows: List[Tuple[str, str]] = []
        for name in sorted(self._counters):
            rows.append((name, _format_number(self._counters[name].value)))
            prefix = None
            if name.endswith(".hits"):
                prefix = name[: -len(".hits")]
            elif name.endswith(".misses"):
                # A pre-registered .misses without its .hits twin still
                # deserves the derived line (emitted once: the .hits
                # branch owns it whenever both exist).
                candidate = name[: -len(".misses")]
                if f"{candidate}.hits" not in self._counters:
                    prefix = candidate
            if prefix is not None:
                lookups = self.value(f"{prefix}.hits") + self.value(
                    f"{prefix}.misses"
                )
                if lookups > 0 and math.isfinite(lookups):
                    ratio_text = f"{self.hit_ratio(prefix):.3f}"
                else:
                    # Zero lookups: "0.000" would read as a measured
                    # all-miss ratio; say explicitly that nothing was
                    # looked up yet.
                    ratio_text = "n/a (0 lookups)"
                rows.append((f"{prefix}.hit_ratio", ratio_text))
        for name in sorted(self._gauges):
            rows.append((name, _format_number(self._gauges[name].value)))
        for name in sorted(self._histograms):
            h = self._histograms[name]
            if h.count:
                rows.append(
                    (
                        name,
                        f"count={h.count} mean={h.mean():.4g} "
                        f"min={h.min:.4g} max={h.max:.4g}",
                    )
                )
            else:
                rows.append((name, "count=0"))
        if not rows:
            return f"{title} (no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        lines = [title]
        lines.extend(f"  {name:<{width}}  {value}" for name, value in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counter(s), "
            f"{len(self._gauges)} gauge(s), "
            f"{len(self._histograms)} histogram(s))"
        )


class NullMetrics(MetricsRegistry):
    """The disabled registry: shared no-op metrics, nothing stored."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return NULL_HISTOGRAM


# ----------------------------------------------------------------------
# Ambient (process-wide) instances
# ----------------------------------------------------------------------
NULL_TRACER = NullTracer()
NULL_METRICS = NullMetrics()

_ambient_tracer: Tracer = NULL_TRACER
_ambient_metrics: MetricsRegistry = NULL_METRICS


def tracer() -> Tracer:
    """The ambient tracer (a no-op :class:`NullTracer` unless installed)."""
    return _ambient_tracer


def metrics() -> MetricsRegistry:
    """The ambient registry (a no-op :class:`NullMetrics` unless installed)."""
    return _ambient_metrics


def enabled() -> bool:
    return _ambient_tracer.enabled or _ambient_metrics.enabled


def span(name: str, **attributes: Any):
    """Open a span on the ambient tracer (no-op when disabled)."""
    return _ambient_tracer.span(name, **attributes)


def record(name: str, duration_s: float = 0.0, **attributes: Any):
    """Record a completed span on the ambient tracer (no-op when disabled)."""
    return _ambient_tracer.record(name, duration_s=duration_s, **attributes)


def event(name: str, **attributes: Any) -> None:
    """Attach an instant event to the current ambient span."""
    _ambient_tracer.event(name, **attributes)


def install(
    tracer_obj: Optional[Tracer] = None,
    metrics_obj: Optional[MetricsRegistry] = None,
) -> Tuple[Tracer, MetricsRegistry]:
    """Enable process-wide collection; returns the live instances."""
    global _ambient_tracer, _ambient_metrics
    _ambient_tracer = tracer_obj if tracer_obj is not None else Tracer()
    _ambient_metrics = (
        metrics_obj if metrics_obj is not None else MetricsRegistry()
    )
    return _ambient_tracer, _ambient_metrics


def uninstall() -> None:
    """Return to the zero-overhead null implementations."""
    global _ambient_tracer, _ambient_metrics
    _ambient_tracer = NULL_TRACER
    _ambient_metrics = NULL_METRICS


def observe_sample(
    solver: str,
    sampleset: Any,
    elapsed_s: float,
    **attributes: Any,
) -> None:
    """Record one solver invocation on the ambient tracer and metrics.

    The uniform hook every sampling backend calls on its way out: a
    completed ``solver.<name>.sample`` span (with the call's shape as
    attributes), per-solver call counters, kernel-choice counters, and
    the sweep-rate / energy histograms.  A single early ``enabled()``
    check keeps the disabled path at one attribute load and one branch.
    """
    if not enabled():
        return
    _ambient_tracer.record(
        f"solver.{solver}.sample",
        duration_s=elapsed_s,
        samples=len(sampleset),
        **attributes,
    )
    registry = _ambient_metrics
    registry.counter(f"solver.{solver}.samples").inc()
    kernel = attributes.get("kernel")
    if kernel:
        registry.counter(f"solver.kernel.{kernel}").inc()
    info = getattr(sampleset, "info", None) or {}
    rate = info.get("sweeps_per_s")
    if rate:
        registry.histogram("solver.sweeps_per_s").observe(float(rate))
        # Per-tier sweep rate: the perf-trajectory gauge the kernel
        # benchmarks and dashboards key on (kernel.jit.sweeps_per_s vs
        # kernel.sparse.sweeps_per_s shows the JIT speedup live).
        if kernel:
            registry.gauge(f"kernel.{kernel}.sweeps_per_s").set(float(rate))
    if len(sampleset):
        registry.histogram("solver.energy").observe_many(
            [float(e) for e in sampleset.energies]
        )


@contextmanager
def capture(
    tracer_obj: Optional[Tracer] = None,
    metrics_obj: Optional[MetricsRegistry] = None,
):
    """Collect traces + metrics within a ``with`` block, then restore.

    Yields ``(tracer, metrics)``; the previously ambient instances are
    restored on exit, so nested/concurrent test usage cannot leak.
    """
    global _ambient_tracer, _ambient_metrics
    previous = (_ambient_tracer, _ambient_metrics)
    live = install(tracer_obj, metrics_obj)
    try:
        yield live
    finally:
        _ambient_tracer, _ambient_metrics = previous


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))
