"""The qbsolv ``.qubo`` file format.

qbsolv -- the tool qmasm uses to "split large problems into sub-problems
that fit on the D-Wave hardware" -- consumes a simple text format::

    c comment lines
    p qubo topology maxNodes nNodes nCouplers
    0 0 3.4        <- nNodes diagonal entries  (node  node  weight)
    0 5 -2.0       <- nCouplers off-diagonal entries (i < j)

This module writes and reads that format, mapping between our
arbitrarily-labeled Ising models and qbsolv's dense integer node ids.
The variable-name mapping is preserved in comment lines so round-trips
recover symbolic names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ising.model import IsingModel


class QuboFormatError(Exception):
    """Malformed .qubo input."""


def write_qubo_file(
    model: IsingModel,
    comments: Optional[List[str]] = None,
    topology: str = "0",
) -> str:
    """Serialize an Ising model as a qbsolv ``.qubo`` document.

    The model is converted to QUBO form (x in {0,1}); each variable gets
    a dense integer id, recorded in ``c var`` comments.
    """
    qubo, offset = model.to_qubo()
    order = sorted(map(str, model.variables))
    index = {name: i for i, name in enumerate(order)}

    diagonal: Dict[int, float] = {}
    couplers: Dict[Tuple[int, int], float] = {}
    for (u, v), coeff in qubo.items():
        if coeff == 0.0:
            continue
        if u == v:
            diagonal[index[str(u)]] = diagonal.get(index[str(u)], 0.0) + coeff
        else:
            i, j = sorted((index[str(u)], index[str(v)]))
            couplers[(i, j)] = couplers.get((i, j), 0.0) + coeff

    lines: List[str] = []
    for comment in comments or []:
        lines.append(f"c {comment}")
    lines.append(f"c offset {offset!r}")
    for name in order:
        lines.append(f"c var {index[name]} {name}")
    lines.append(
        f"p qubo {topology} {len(order)} {len(diagonal)} {len(couplers)}"
    )
    for i in sorted(diagonal):
        lines.append(f"{i} {i} {diagonal[i]!r}")
    for (i, j) in sorted(couplers):
        lines.append(f"{i} {j} {couplers[(i, j)]!r}")
    return "\n".join(lines) + "\n"


def read_qubo_file(text: str) -> IsingModel:
    """Parse a ``.qubo`` document back into an Ising model.

    ``c var`` and ``c offset`` comments written by :func:`write_qubo_file`
    are honored; without them, variables are the bare integer ids.
    """
    names: Dict[int, str] = {}
    offset = 0.0
    qubo: Dict[Tuple, float] = {}
    header: Optional[Tuple[int, int, int]] = None
    entries = 0

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "c":
            if len(tokens) >= 4 and tokens[1] == "var":
                names[int(tokens[2])] = " ".join(tokens[3:])
            elif len(tokens) >= 3 and tokens[1] == "offset":
                offset = float(tokens[2])
            continue
        if tokens[0] == "p":
            if header is not None:
                raise QuboFormatError(f"duplicate p line (line {line_number})")
            if len(tokens) != 6 or tokens[1] != "qubo":
                raise QuboFormatError(f"malformed p line (line {line_number})")
            header = (int(tokens[3]), int(tokens[4]), int(tokens[5]))
            continue
        if header is None:
            raise QuboFormatError(
                f"entry before p line (line {line_number})"
            )
        if len(tokens) != 3:
            raise QuboFormatError(f"malformed entry (line {line_number})")
        i, j, weight = int(tokens[0]), int(tokens[1]), float(tokens[2])
        if i > j:
            raise QuboFormatError(
                f"entries must have i <= j (line {line_number})"
            )
        key = (names.get(i, i), names.get(j, j))
        if key[0] == key[1]:
            key = (key[0], key[0])
        qubo[key] = qubo.get(key, 0.0) + weight
        entries += 1

    if header is None:
        raise QuboFormatError("missing p line")
    _, n_diagonal, n_couplers = header
    if entries != n_diagonal + n_couplers:
        raise QuboFormatError(
            f"p line promises {n_diagonal + n_couplers} entries, found {entries}"
        )
    return IsingModel.from_qubo(qubo, offset)
