"""QMASM program representation: statements, macros, assert expressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


class QmasmError(Exception):
    """Parse or assembly failure in QMASM source."""

    def __init__(self, message: str, line: Optional[int] = None):
        super().__init__(message if line is None else f"{message} (line {line})")
        self.line = line


@dataclass
class Statement:
    line: int = 0


@dataclass
class Weight(Statement):
    """``A -1`` -- a linear coefficient h_A."""

    variable: str = ""
    value: float = 0.0


@dataclass
class Coupler(Statement):
    """``A B 10`` -- a quadratic coefficient J_{A,B}."""

    variable_a: str = ""
    variable_b: str = ""
    value: float = 0.0


@dataclass
class Chain(Statement):
    """``A = B`` (same value) or ``A /= B`` (opposite value)."""

    variable_a: str = ""
    variable_b: str = ""
    same: bool = True


@dataclass
class Pin(Statement):
    """``A := true`` or ``C[7:0] := 10001111`` -- argument passing."""

    assignments: Dict[str, bool] = field(default_factory=dict)


@dataclass
class Alias(Statement):
    """``!alias NEW OLD`` -- NEW becomes another name for OLD."""

    new: str = ""
    old: str = ""


@dataclass
class Assertion(Statement):
    """``!assert expr`` -- checked on every returned sample."""

    expression: "AssertExpr" = None
    source: str = ""


@dataclass
class MacroDef(Statement):
    """``!begin_macro NAME`` ... ``!end_macro NAME``."""

    name: str = ""
    body: List[Statement] = field(default_factory=list)


@dataclass
class UseMacro(Statement):
    """``!use_macro NAME inst1 inst2 ...``."""

    macro: str = ""
    instances: List[str] = field(default_factory=list)


@dataclass
class Include(Statement):
    """``!include <file>``; resolved against a registry or directory."""

    target: str = ""


@dataclass
class Program:
    """A parsed QMASM compilation unit."""

    statements: List[Statement] = field(default_factory=list)
    macros: Dict[str, MacroDef] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Assertion expressions ("!assert Y = A|B")
# ----------------------------------------------------------------------
class AssertExpr:
    """Base class for assertion expression nodes."""

    def evaluate(self, values: Mapping[str, bool]) -> int:
        raise NotImplementedError

    def variables(self) -> List[str]:
        raise NotImplementedError


@dataclass
class AssertVar(AssertExpr):
    name: str

    def evaluate(self, values: Mapping[str, bool]) -> int:
        if self.name not in values:
            raise QmasmError(f"assertion references unknown variable {self.name!r}")
        return int(values[self.name])

    def variables(self) -> List[str]:
        return [self.name]

    def rename(self, mapping: Mapping[str, str]) -> "AssertVar":
        return AssertVar(mapping.get(self.name, self.name))


@dataclass
class AssertConst(AssertExpr):
    value: int

    def evaluate(self, values: Mapping[str, bool]) -> int:
        return self.value

    def variables(self) -> List[str]:
        return []


@dataclass
class AssertUnary(AssertExpr):
    op: str
    operand: AssertExpr

    def evaluate(self, values: Mapping[str, bool]) -> int:
        value = self.operand.evaluate(values)
        if self.op == "~":
            return int(not value)
        if self.op == "-":
            return -value
        raise QmasmError(f"unknown unary operator {self.op!r}")

    def variables(self) -> List[str]:
        return self.operand.variables()


@dataclass
class AssertBinary(AssertExpr):
    op: str
    left: AssertExpr
    right: AssertExpr

    def evaluate(self, values: Mapping[str, bool]) -> int:
        a = self.left.evaluate(values)
        b = self.right.evaluate(values)
        operations = {
            "&": lambda: a & b,
            "|": lambda: a | b,
            "^": lambda: a ^ b,
            "+": lambda: a + b,
            "-": lambda: a - b,
            "*": lambda: a * b,
            "=": lambda: int(a == b),
            "/=": lambda: int(a != b),
            "<": lambda: int(a < b),
            ">": lambda: int(a > b),
            "<=": lambda: int(a <= b),
            ">=": lambda: int(a >= b),
        }
        if self.op not in operations:
            raise QmasmError(f"unknown operator {self.op!r} in assertion")
        return operations[self.op]()

    def variables(self) -> List[str]:
        return self.left.variables() + self.right.variables()


def rename_assert(expr: AssertExpr, mapping: Mapping[str, str]) -> AssertExpr:
    """Rewrite variable names in an assertion (macro instantiation)."""
    if isinstance(expr, AssertVar):
        return AssertVar(mapping.get(expr.name, expr.name))
    if isinstance(expr, AssertConst):
        return expr
    if isinstance(expr, AssertUnary):
        return AssertUnary(expr.op, rename_assert(expr.operand, mapping))
    if isinstance(expr, AssertBinary):
        return AssertBinary(
            expr.op,
            rename_assert(expr.left, mapping),
            rename_assert(expr.right, mapping),
        )
    raise QmasmError(f"unknown assertion node {expr!r}")


def prefix_assert(expr: AssertExpr, prefix: str) -> AssertExpr:
    """Prefix every variable in an assertion with an instance name."""
    if isinstance(expr, AssertVar):
        return AssertVar(prefix + expr.name)
    if isinstance(expr, AssertConst):
        return expr
    if isinstance(expr, AssertUnary):
        return AssertUnary(expr.op, prefix_assert(expr.operand, prefix))
    if isinstance(expr, AssertBinary):
        return AssertBinary(
            expr.op,
            prefix_assert(expr.left, prefix),
            prefix_assert(expr.right, prefix),
        )
    raise QmasmError(f"unknown assertion node {expr!r}")
