"""QMASM serialization: programs and logical models back to text.

Round-trip support: anything parsed (or built programmatically) can be
re-rendered as QMASM source, and a flattened :class:`LogicalProgram`
can be dumped as the fully macro-expanded program -- the form qmasm
shows with its verbose output.
"""

from __future__ import annotations

from typing import List

from repro.qmasm.assembler import LogicalProgram
from repro.qmasm.program import (
    Alias,
    Assertion,
    Chain,
    Coupler,
    Include,
    Pin,
    Program,
    QmasmError,
    Statement,
    UseMacro,
    Weight,
)


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _render_statement(statement: Statement) -> List[str]:
    if isinstance(statement, Weight):
        return [f"{statement.variable} {_format_value(statement.value)}"]
    if isinstance(statement, Coupler):
        return [
            f"{statement.variable_a} {statement.variable_b} "
            f"{_format_value(statement.value)}"
        ]
    if isinstance(statement, Chain):
        operator = "=" if statement.same else "/="
        return [f"{statement.variable_a} {operator} {statement.variable_b}"]
    if isinstance(statement, Pin):
        return [
            f"{variable} := {'true' if value else 'false'}"
            for variable, value in statement.assignments.items()
        ]
    if isinstance(statement, Alias):
        return [f"!alias {statement.new} {statement.old}"]
    if isinstance(statement, Assertion):
        return [f"!assert {statement.source}"]
    if isinstance(statement, UseMacro):
        return [f"!use_macro {statement.macro} {' '.join(statement.instances)}"]
    if isinstance(statement, Include):
        # Contents were already inlined at parse time; keep the record
        # as a comment so round-trips stay semantically identical
        # without double-including.
        return [f"# (was: !include <{statement.target}>)"]
    raise QmasmError(f"cannot render statement {statement!r}")


def write_qmasm(program: Program) -> str:
    """Render a parsed/constructed :class:`Program` as QMASM source."""
    lines: List[str] = []
    for macro in program.macros.values():
        lines.append(f"!begin_macro {macro.name}")
        for statement in macro.body:
            lines.extend(_render_statement(statement))
        lines.append(f"!end_macro {macro.name}")
        lines.append("")
    for statement in program.statements:
        lines.extend(_render_statement(statement))
    return "\n".join(lines) + "\n"


def write_logical(logical: LogicalProgram) -> str:
    """Render an assembled program: flat weights, couplers, chains, pins.

    This is the fully macro-expanded view; parsing and re-assembling it
    reproduces the same Ising model.
    """
    lines: List[str] = ["# flattened (macro-expanded) QMASM program"]
    for variable in sorted(logical.variables, key=str):
        bias = logical.model.linear.get(variable, 0.0)
        lines.append(f"{variable} {_format_value(bias)}")
    for (u, v), coupling in sorted(
        logical.model.quadratic.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
    ):
        if coupling != 0.0:
            lines.append(f"{u} {v} {_format_value(coupling)}")
    for a, b, same in logical.chains:
        lines.append(f"{a} {'=' if same else '/='} {b}")
    for variable, value in sorted(logical.pins.items()):
        lines.append(f"{variable} := {'true' if value else 'false'}")
    # Assertion sources keep their original (pre-expansion) spelling, so
    # they are recorded as comments rather than re-parsed.
    for _expression, source in logical.assertions:
        lines.append(f"# !assert {source}")
    return "\n".join(lines) + "\n"
