"""The qmasm tool: assemble, embed, anneal, and report (Section 4.4).

Reproduces the tool behaviour the paper describes: qmasm can execute
programs on a D-Wave system (here the :class:`DWaveSimulator`) or
convert/run them classically; it accepts ``--pin`` options to bias
variables; it "can run a program arbitrarily many times and report
statistics on the results"; it reports solutions "in terms of the
program-specified symbolic names rather than as physical qubit numbers"
with ``$``-variables hidden; and it optionally uses roof duality "to
elide qubits whose final value can be determined a priori".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.hardware.embedding import (
    Embedding,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.model import IsingModel, bool_to_spin, spin_to_bool
from repro.ising.roofduality import fix_variables
from repro.qmasm.assembler import LogicalProgram, assemble
from repro.qmasm.parser import parse_pin, parse_qmasm
from repro.qmasm.program import Pin, Program, QmasmError
from repro.solvers.exact import ExactSolver
from repro.solvers.machine import DWaveSimulator
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.qbsolv import QBSolv
from repro.solvers.sampleset import SampleSet
from repro.solvers.tabu import TabuSampler


@dataclass
class Solution:
    """One distinct solution, reported over visible symbolic names."""

    values: Dict[str, bool]
    energy: float
    num_occurrences: int
    failed_assertions: List[str] = field(default_factory=list)
    pins_respected: bool = True

    @property
    def valid(self) -> bool:
        return self.pins_respected and not self.failed_assertions

    def value_of(self, base: str) -> int:
        """Assemble the integer value of a multi-bit variable.

        ``value_of("C")`` gathers ``C[0]``, ``C[1]``, ... (or the scalar
        ``C``) into an integer.
        """
        if base in self.values:
            return int(self.values[base])
        total = 0
        found = False
        for name, value in self.values.items():
            if name.startswith(f"{base}["):
                index = int(name[len(base) + 1:-1])
                total |= int(value) << index
                found = True
        if not found:
            raise KeyError(f"no variable {base!r} in solution")
        return total


@dataclass
class RunResult:
    """Everything a qmasm run produces."""

    solutions: List[Solution]
    sampleset: SampleSet
    logical: LogicalProgram
    logical_model: IsingModel
    representative: Dict[str, str]
    embedding: Optional[Embedding] = None
    physical_model: Optional[IsingModel] = None
    info: Dict = field(default_factory=dict)

    @property
    def valid_solutions(self) -> List[Solution]:
        return [s for s in self.solutions if s.valid]

    @property
    def best(self) -> Solution:
        if not self.solutions:
            raise ValueError("run produced no solutions")
        return self.solutions[0]

    def num_logical_variables(self) -> int:
        return len(self.logical_model)

    def num_physical_qubits(self) -> int:
        if self.embedding is None:
            return 0
        return self.embedding.total_qubits()


class QmasmRunner:
    """Drives QMASM programs through solvers, like the qmasm executable."""

    def __init__(
        self,
        machine: Optional[DWaveSimulator] = None,
        seed: Optional[int] = None,
    ):
        self.machine = machine
        self.seed = seed

    def _get_machine(self) -> DWaveSimulator:
        if self.machine is None:
            self.machine = DWaveSimulator(seed=self.seed)
        return self.machine

    def run(
        self,
        source: Union[str, Program, LogicalProgram],
        pins: Sequence[Union[str, Pin]] = (),
        solver: str = "dwave",
        num_reads: int = 100,
        annealing_time_us: float = 20.0,
        chain_strength: Optional[float] = None,
        pin_strength: Optional[float] = None,
        use_roof_duality: bool = False,
        embedding_tries: int = 16,
        embedding_seed: Optional[int] = None,
        postprocess: str = "optimization",
    ) -> RunResult:
        """Assemble and execute a QMASM program.

        Args:
            source: QMASM text, a parsed :class:`Program`, or an
                assembled :class:`LogicalProgram`.
            pins: extra ``--pin`` style bindings (strings like
                ``"C[7:0] := 10001111"`` or :class:`Pin` objects).
            solver: ``"dwave"`` (embed + anneal on the simulated 2000Q),
                ``"sa"`` (simulated annealing on the logical problem),
                ``"sqa"`` (path-integral simulated *quantum* annealing,
                the Hitachi-style classical annealer of Section 2),
                ``"exact"`` (exhaustive), ``"tabu"``, or ``"qbsolv"``.
            num_reads: anneals / reads to perform.
            annealing_time_us: per-anneal time for the dwave solver.
            chain_strength / pin_strength: see
                :meth:`LogicalProgram.to_ising`.
            use_roof_duality: elide a-priori-determined qubits first.
            embedding_tries: restarts for the minor embedder.
            embedding_seed: seed controlling the randomized embedder.
            postprocess: ``"optimization"`` (default) refines unembedded
                dwave samples with a short cold logical anneal -- the
                analogue of SAPI's optimization postprocessing, standing
                in for the collective chain dynamics a real annealer has
                and single-spin-flip simulation lacks; ``"none"``
                returns raw majority-vote samples.

        Returns:
            A :class:`RunResult` with aggregated, energy-sorted solutions.
        """
        logical = self._to_logical(source, pins)
        logical_model, representative = logical.to_ising(
            chain_strength=chain_strength, pin_strength=pin_strength
        )

        fixed: Dict[str, int] = {}
        solve_model = logical_model
        if use_roof_duality:
            fixed = fix_variables(logical_model)
            for variable, spin in fixed.items():
                solve_model = solve_model.fix_variable(variable, spin)

        start = time.perf_counter()
        embedding = None
        physical_model = None
        info: Dict = {"solver": solver}

        if len(solve_model) == 0:
            # Everything was determined a priori.
            sampleset = SampleSet.empty([])
        elif solver == "dwave":
            machine = self._get_machine()
            source_graph = source_graph_of(solve_model)
            embedding = find_embedding(
                source_graph,
                machine.working_graph,
                seed=self.seed if embedding_seed is None else embedding_seed,
                tries=embedding_tries,
            )
            physical_model = embed_ising(
                solve_model, embedding, machine.working_graph,
                chain_strength=None,
            )
            scaled, factor = scale_to_hardware(physical_model)
            info["scale_factor"] = factor
            raw = machine.sample_ising(
                scaled, num_reads=num_reads, annealing_time_us=annealing_time_us
            )
            info["timing"] = raw.info.get("timing", {})
            sampleset = unembed_sampleset(raw, embedding, solve_model)
            info["chain_break_fraction"] = sampleset.info.get(
                "chain_break_fraction", 0.0
            )
            if postprocess == "optimization" and len(sampleset):
                sampleset = self._refine(solve_model, sampleset)
                info["postprocess"] = "optimization"
            elif postprocess not in ("none", "optimization"):
                raise ValueError(f"unknown postprocess {postprocess!r}")
        elif solver == "sa":
            sampler = SimulatedAnnealingSampler(seed=self.seed)
            sampleset = sampler.sample(solve_model, num_reads=num_reads)
        elif solver == "sqa":
            from repro.solvers.sqa import PathIntegralAnnealer

            sampleset = PathIntegralAnnealer(seed=self.seed).sample(
                solve_model, num_reads=min(num_reads, 32)
            )
        elif solver == "exact":
            sampleset = ExactSolver().sample(solve_model, num_lowest=num_reads)
        elif solver == "tabu":
            sampleset = TabuSampler(seed=self.seed).sample(
                solve_model, num_reads=num_reads
            )
        elif solver == "qbsolv":
            sampleset = QBSolv(seed=self.seed).sample(
                solve_model, num_reads=min(num_reads, 10)
            )
        else:
            raise ValueError(f"unknown solver {solver!r}")

        info["wall_time_s"] = time.perf_counter() - start
        info["roof_duality_fixed"] = len(fixed)
        solutions = self._report(
            logical, sampleset, representative, fixed, logical_model
        )
        return RunResult(
            solutions=solutions,
            sampleset=sampleset,
            logical=logical,
            logical_model=logical_model,
            representative=representative,
            embedding=embedding,
            physical_model=physical_model,
            info=info,
        )

    # ------------------------------------------------------------------
    def _refine(self, model: IsingModel, sampleset: SampleSet) -> SampleSet:
        """Cold logical anneal seeded from unembedded samples.

        Majority-voted samples sit near (not at) logical ground states;
        a short low-temperature anneal from those states repairs the
        residual gate defects, as SAPI's optimization postprocessing did
        for the paper's runs.
        """
        from repro.solvers.neal import default_beta_range

        _, beta_cold = default_beta_range(model)
        order = list(model.variables)
        positions = [sampleset.variables.index(v) for v in order]
        initial = sampleset.records[:, positions]
        sampler = SimulatedAnnealingSampler(seed=self.seed)
        refined = sampler.sample(
            model,
            num_reads=len(initial),
            num_sweeps=200,
            beta_range=(beta_cold / 4.0, beta_cold * 4.0),
            initial_states=initial,
        )
        refined.info.update(sampleset.info)
        return refined

    def _to_logical(
        self,
        source: Union[str, Program, LogicalProgram],
        pins: Sequence[Union[str, Pin]],
    ) -> LogicalProgram:
        if isinstance(source, LogicalProgram):
            logical = source
        else:
            program = parse_qmasm(source) if isinstance(source, str) else source
            logical = assemble(program)
        extra = {}
        for pin in pins:
            parsed = parse_pin(pin) if isinstance(pin, str) else pin
            for variable, value in parsed.assignments.items():
                if variable not in logical.variables:
                    raise QmasmError(f"--pin of unknown variable {variable!r}")
                extra[variable] = value
        # Never mutate the caller's program: pins apply to this run only.
        return logical.with_pins(extra)

    def _report(
        self,
        logical: LogicalProgram,
        sampleset: SampleSet,
        representative: Dict[str, str],
        fixed: Dict[str, int],
        logical_model: IsingModel,
    ) -> List[Solution]:
        solutions: List[Solution] = []
        seen: Dict[tuple, int] = {}
        visible = logical.visible_variables()

        rows = list(sampleset.aggregate()) if len(sampleset) else [None]
        for row in rows:
            spins: Dict[str, int] = dict(fixed)
            if row is not None:
                spins.update(row.assignment)
            full = logical.expand_sample(spins, representative)
            # Roof-fixed variables also expand through representatives.
            for variable, rep in representative.items():
                if rep in fixed:
                    full[variable] = fixed[rep]
            values = {
                v: spin_to_bool(full[v]) for v in visible if v in full
            }
            key = tuple(sorted(values.items()))
            occurrences = row.num_occurrences if row is not None else 1
            if key in seen:
                solutions[seen[key]].num_occurrences += occurrences
                continue
            energy = (
                row.energy if row is not None else logical_model.energy(spins)
            )
            seen[key] = len(solutions)
            solutions.append(
                Solution(
                    values=values,
                    energy=energy,
                    num_occurrences=occurrences,
                    failed_assertions=logical.check_assertions(full),
                    pins_respected=logical.pins_satisfied(full),
                )
            )
        solutions.sort(key=lambda s: (s.energy, -s.num_occurrences))
        return solutions
