"""The qmasm tool: assemble, embed, anneal, and report (Section 4.4).

Reproduces the tool behaviour the paper describes: qmasm can execute
programs on a D-Wave system (here the :class:`DWaveSimulator`) or
convert/run them classically; it accepts ``--pin`` options to bias
variables; it "can run a program arbitrarily many times and report
statistics on the results"; it reports solutions "in terms of the
program-specified symbolic names rather than as physical qubit numbers"
with ``$``-variables hidden; and it optionally uses roof duality "to
elide qubits whose final value can be determined a priori".

Execution mirrors qmasm's own assemble/embed/anneal phase split as an
explicit pass pipeline (:mod:`repro.core.pipeline`): ``roof_duality``,
``find_embedding``, ``scale_to_hardware``, ``sample``, ``unembed``, and
``postprocess`` are first-class stages whose wall times and artifact
counters land in :attr:`RunResult.stats`.  Minor embeddings -- the
dominant execution-side cost, and a pure function of the logical
interaction graph -- are memoized in an
:class:`~repro.core.cache.EmbeddingCache`, so repeated runs of the same
compiled program (even with different pins) skip embedding entirely.

Hardware-backed execution is *fault tolerant*: a :class:`RetryPolicy`
retries transient solver failures (each retry under a fresh
spin-reversal gauge), escalates chain strength when the chain-break
rate is unhealthy, and degrades gracefully through classical solver
tiers when the machine stays unavailable --
``RunResult.info["answered_by"]`` records which tier produced the
answer, and every retry/fallback/broken-chain count lands in
:attr:`RunResult.stats`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import trace as _trace
from repro.core.cache import EmbeddingCache
from repro.core.deadline import Deadline
from repro.core.faults import TransientSolverError
from repro.core.pipeline import (
    PassManager,
    PipelineContext,
    PipelineStats,
    Stage,
    TraceCallback,
)
from repro.core.trace import MetricsRegistry, Span
from repro.hardware.embedding import (
    Embedding,
    default_chain_strength,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.model import IsingModel, spin_to_bool
from repro.ising.roofduality import fix_variables
from repro.qmasm.assembler import LogicalProgram, assemble
from repro.qmasm.certify import Certificate, certify_sampleset
from repro.qmasm.parser import parse_pin, parse_qmasm
from repro.qmasm.program import Pin, Program, QmasmError
from repro.solvers.exact import ExactSolver
from repro.solvers.machine import DWaveSimulator
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.qbsolv import QBSolv
from repro.solvers.sampleset import SampleSet
from repro.solvers.tabu import TabuSampler


def json_safe(value: Any) -> Any:
    """Coerce a value into something :mod:`json` can serialize.

    Run artifacts carry numpy scalars, tuples, and arbitrary objects in
    their ``info``/counter dicts; the service layer ships them over
    HTTP, so everything must flatten to JSON primitives.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    return str(value)


@dataclass
class Solution:
    """One distinct solution, reported over visible symbolic names."""

    values: Dict[str, bool]
    energy: float
    num_occurrences: int
    failed_assertions: List[str] = field(default_factory=list)
    pins_respected: bool = True

    @property
    def valid(self) -> bool:
        return self.pins_respected and not self.failed_assertions

    def value_of(self, base: str) -> int:
        """Assemble the integer value of a multi-bit variable.

        ``value_of("C")`` gathers ``C[0]``, ``C[1]``, ... (or the scalar
        ``C``) into an integer.
        """
        if base in self.values:
            return int(self.values[base])
        total = 0
        found = False
        for name, value in self.values.items():
            if name.startswith(f"{base}["):
                index = int(name[len(base) + 1:-1])
                total |= int(value) << index
                found = True
        if not found:
            raise KeyError(f"no variable {base!r} in solution")
        return total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe view of this solution (the service's wire format)."""
        return {
            "values": {name: bool(v) for name, v in sorted(self.values.items())},
            "energy": float(self.energy),
            "num_occurrences": int(self.num_occurrences),
            "failed_assertions": list(self.failed_assertions),
            "pins_respected": bool(self.pins_respected),
            "valid": self.valid,
        }


@dataclass
class RunResult:
    """Everything a qmasm run produces."""

    solutions: List[Solution]
    sampleset: SampleSet
    logical: LogicalProgram
    logical_model: IsingModel
    representative: Dict[str, str]
    embedding: Optional[Embedding] = None
    physical_model: Optional[IsingModel] = None
    info: Dict = field(default_factory=dict)
    #: Spins the roof-duality preprocessor proved and fixed before
    #: sampling; external re-certification
    #: (:func:`repro.qmasm.certify.certify_sampleset`) needs them to
    #: expand samples back over every variable.
    fixed_spins: Dict[str, int] = field(default_factory=dict)
    #: The per-read certification verdict when ``certify=True`` ran;
    #: None when certification was not requested.
    certificate: Optional[Certificate] = None
    #: Per-stage wall times and counters for this execution.
    stats: PipelineStats = field(default_factory=PipelineStats)
    #: The run-scoped metrics registry: every retry/fallback/escalation
    #: counter the run recorded, queryable by name
    #: (``result.metrics.value("runner.sample_retries")``).
    metrics: Optional[MetricsRegistry] = None
    #: The run's root trace span when tracing was enabled, else None.
    trace: Optional[Span] = None

    @property
    def valid_solutions(self) -> List[Solution]:
        return [s for s in self.solutions if s.valid]

    @property
    def best(self) -> Solution:
        if not self.solutions:
            raise ValueError("run produced no solutions")
        return self.solutions[0]

    def num_logical_variables(self) -> int:
        return len(self.logical_model)

    def num_physical_qubits(self) -> int:
        if self.embedding is None:
            return 0
        return self.embedding.total_qubits()

    def result_payload(
        self, max_solutions: int = 16, include_samples: bool = False
    ) -> Dict[str, Any]:
        """JSON-safe summary of the run (the service's result body).

        Solutions are capped at ``max_solutions`` (best-energy first, as
        :attr:`solutions` is already sorted); ``include_samples`` adds
        the raw energy-sorted spin reads, which is what bit-identity
        across serial and concurrent execution is asserted over.
        """
        payload: Dict[str, Any] = {
            "num_solutions": len(self.solutions),
            "num_valid_solutions": len(self.valid_solutions),
            "solutions": [s.as_dict() for s in self.solutions[:max_solutions]],
            "logical_variables": self.num_logical_variables(),
            "physical_qubits": self.num_physical_qubits(),
            "representative": dict(self.representative),
            "info": json_safe(self.info),
        }
        if len(self.solutions) > max_solutions:
            payload["solutions_truncated"] = True
        if self.fixed_spins:
            payload["fixed_spins"] = {
                str(k): int(v) for k, v in self.fixed_spins.items()
            }
        if self.certificate is not None:
            payload["certificate"] = {
                "ok": self.certificate.ok,
                "certified_reads": self.certificate.certified_reads,
                "total_reads": self.certificate.total_reads,
                "certified_fraction": self.certificate.certified_fraction,
                "summary": self.certificate.summary(),
            }
        if include_samples:
            payload["samples"] = {
                "variables": [str(v) for v in self.sampleset.variables],
                "records": json_safe(self.sampleset.records),
                "energies": json_safe(self.sampleset.energies),
                "occurrences": json_safe(self.sampleset.occurrences),
            }
        return payload


# ----------------------------------------------------------------------
# The execution pipeline
# ----------------------------------------------------------------------
@dataclass
class RetryPolicy:
    """The resilient execution policy for hardware-backed runs.

    Real fleets see transient solver failures, degraded working graphs,
    and runs whose chains break too often to trust; published practice
    answers with retries, gauge (spin-reversal) averaging, chain-
    strength tuning, and classical fallbacks.  This policy packages all
    of that:

    * **Sample retries** -- up to :attr:`max_sample_attempts` calls per
      sample, with exponential backoff.  Retried calls run under a fresh
      random gauge (:attr:`gauge_on_retry`), so retries double as
      spin-reversal averaging and decorrelate systematic analog bias.
    * **Chain-strength escalation** -- if the unembedded chain-break
      rate exceeds :attr:`chain_break_threshold`, the physical model is
      rebuilt with the chain strength multiplied by
      :attr:`chain_strength_factor` and re-sampled, up to
      :attr:`max_chain_strength_escalations` times.
    * **Graceful degradation** -- when the (simulated) hardware stays
      unavailable after all retries, the *logical* problem falls back
      through :attr:`fallback_solvers` (path-integral SQA, then tabu,
      then exact for models of at most :attr:`exact_fallback_limit`
      variables); ``RunResult.info["answered_by"]`` records which tier
      actually produced the answer.
    * **Embedding escalation** -- :attr:`embedding_max_attempts`
      escalating attempts (doubling improvement rounds, reseeded
      restarts, exponential backoff) for minor embedding on degraded
      working graphs.
    * **Self-repair** -- when certification finds uncertified reads
      (``certify=True, repair=True``), up to :attr:`max_repair_rounds`
      repair rounds run: the first polishes the offending reads with
      bounded steepest descent (:attr:`repair_polish_sweeps` sweeps),
      later rounds re-sample with :attr:`repair_read_factor` x the
      original reads (hardware rounds also escalate chain strength).

    Note :attr:`chain_break_threshold` is a *strict* bound: escalation
    fires only when the chain-break fraction strictly exceeds it, so a
    threshold of exactly ``0.0`` does **not** escalate on a clean
    unembedding (break fraction 0.0) -- it escalates on any breakage
    at all.
    """

    max_sample_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    gauge_on_retry: bool = True
    chain_break_threshold: float = 0.25
    chain_strength_factor: float = 2.0
    max_chain_strength_escalations: int = 2
    fallback_solvers: Tuple[str, ...] = ("sqa", "tabu", "exact")
    exact_fallback_limit: int = 18
    embedding_max_attempts: int = 3
    embedding_backoff_s: float = 0.0
    max_repair_rounds: int = 3
    repair_polish_sweeps: int = 64
    repair_read_factor: float = 2.0

    def __post_init__(self):
        if self.max_sample_attempts < 1:
            raise ValueError("max_sample_attempts must be >= 1")
        if self.max_repair_rounds < 0:
            raise ValueError("max_repair_rounds must be >= 0")
        if self.repair_polish_sweeps < 1:
            raise ValueError("repair_polish_sweeps must be >= 1")
        if self.repair_read_factor < 1.0:
            raise ValueError("repair_read_factor must be >= 1")
        if self.embedding_max_attempts < 1:
            raise ValueError("embedding_max_attempts must be >= 1")
        if not 0.0 <= self.chain_break_threshold <= 1.0:
            raise ValueError("chain_break_threshold must be in [0, 1]")
        if self.chain_strength_factor <= 1.0:
            raise ValueError("chain_strength_factor must be > 1")
        unknown = set(self.fallback_solvers) - {"sa", "sqa", "tabu", "exact"}
        if unknown:
            raise ValueError(f"unknown fallback solver(s): {sorted(unknown)}")


@dataclass
class RunOptions:
    """Per-run execution knobs, carried by the pipeline context."""

    solver: str = "dwave"
    num_reads: int = 100
    #: Metropolis sweeps per read for the classical solvers; None keeps
    #: each solver's default (the dwave tier derives sweeps from
    #: ``annealing_time_us`` instead).
    num_sweeps: Optional[int] = None
    #: Process-pool size for parallel gauge batches (dwave) and qbsolv
    #: reads; None/1 runs serially.  Results are bit-identical either
    #: way -- seeds are split deterministically from the parent RNG.
    max_workers: Optional[int] = None
    #: Force a sweep-kernel tier (``"dense"``/``"sparse"``/``"jit"``)
    #: in every sampling path; None auto-selects per problem.  Tiers
    #: are bit-identical, so this is purely a performance knob.
    kernel: Optional[str] = None
    #: Pack the dwave tier's spin-reversal gauge batches into one
    #: cross-problem kernel invocation (see repro.solvers.batch).
    batch_gauges: bool = False
    #: Pack each shard round's subproblems into one kernel invocation.
    batch_shards: bool = False
    annealing_time_us: float = 20.0
    chain_strength: Optional[float] = None
    pin_strength: Optional[float] = None
    use_roof_duality: bool = False
    embedding_tries: int = 16
    embedding_seed: Optional[int] = None
    postprocess: str = "optimization"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Certify every read end-to-end (energy recomputation + netlist
    #: replay + pins/assertions) and attach a Certificate to the result.
    certify: bool = False
    #: Run the self-repair loop on uncertified reads (requires certify).
    repair: bool = False
    #: The gate-level netlist to replay during certification, when the
    #: program came from the Verilog flow; None limits certification to
    #: energy/pin/assertion checks.
    netlist: object = None
    #: Relative tolerance of the certification energy comparison.
    energy_tolerance: float = 1e-6


@dataclass
class RunArtifact:
    """The artifact threaded through the execution stages."""

    logical: LogicalProgram
    logical_model: IsingModel
    representative: Dict[str, str]
    solve_model: IsingModel
    fixed: Dict[str, int] = field(default_factory=dict)
    embedding: Optional[Embedding] = None
    physical_model: Optional[IsingModel] = None
    scaled_model: Optional[IsingModel] = None
    sampleset: Optional[SampleSet] = None
    certificate: Optional[Certificate] = None
    info: Dict = field(default_factory=dict)


class RoofDualityStage(Stage):
    """Elide qubits whose final value can be determined a priori."""

    name = "roof_duality"

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        return not context.options.use_roof_duality

    def run(self, artifact: RunArtifact, context: PipelineContext):
        artifact.fixed = fix_variables(artifact.logical_model)
        for variable, spin in artifact.fixed.items():
            artifact.solve_model = artifact.solve_model.fix_variable(variable, spin)
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        return {
            "fixed": len(artifact.fixed),
            "variables": len(artifact.solve_model),
        }


def _needs_embedding(artifact: RunArtifact, context: PipelineContext) -> bool:
    return context.options.solver == "dwave" and len(artifact.solve_model) > 0


class FindEmbeddingStage(Stage):
    """Minor-embed the logical graph onto the machine's working graph.

    Consults the runner's :class:`EmbeddingCache` first: the embedding
    depends only on the interaction graph (not coefficients or pins),
    the target graph, and the embedder parameters, so any prior run of
    the same compiled program is a hit.
    """

    name = "find_embedding"

    def __init__(self, runner: "QmasmRunner"):
        self._runner = runner

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        return not _needs_embedding(artifact, context)

    def run(self, artifact: RunArtifact, context: PipelineContext):
        options: RunOptions = context.options
        policy = options.retry
        machine = self._runner._get_machine()
        context.scratch["machine"] = machine
        source_graph = source_graph_of(artifact.solve_model)
        seed = (
            self._runner.seed
            if options.embedding_seed is None
            else options.embedding_seed
        )
        cache = self._runner.embedding_cache
        # The key covers the *working* graph fingerprint, so degraded
        # machines never reuse embeddings found for healthier units,
        # plus the topology fingerprint, so families never alias.
        key = EmbeddingCache.key_for(
            source_graph,
            machine.working_graph,
            seed=seed,
            tries=options.embedding_tries,
            max_attempts=policy.embedding_max_attempts,
            topology=machine.topology.fingerprint(),
        )
        embedding = cache.get(key)
        if embedding is not None:
            context.mark_cached()
            artifact.info["embedding_cache"] = "hit"
            context.add_counters(attempts=0, restarts=0)
        else:
            estats: Dict[str, float] = {}
            embedding = find_embedding(
                source_graph,
                machine.working_graph,
                seed=seed,
                tries=options.embedding_tries,
                max_attempts=policy.embedding_max_attempts,
                backoff_s=policy.embedding_backoff_s,
                stats=estats,
            )
            cache.put(key, embedding)
            artifact.info["embedding_cache"] = "miss" if cache.enabled else "off"
            context.add_counters(**estats)
        artifact.embedding = embedding
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        return {
            "variables": len(artifact.embedding),
            "physical_qubits": artifact.embedding.total_qubits(),
            "max_chain": artifact.embedding.max_chain_length(),
        }


class ScaleToHardwareStage(Stage):
    """Build the physical Hamiltonian and scale it into machine range."""

    name = "scale_to_hardware"

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        return not _needs_embedding(artifact, context)

    def run(self, artifact: RunArtifact, context: PipelineContext):
        machine = context.scratch["machine"]
        artifact.physical_model = embed_ising(
            artifact.solve_model,
            artifact.embedding,
            machine.working_graph,
            chain_strength=None,
        )
        artifact.scaled_model, factor = scale_to_hardware(artifact.physical_model)
        artifact.info["scale_factor"] = factor
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        return {
            "physical_variables": len(artifact.physical_model),
            "physical_couplers": artifact.physical_model.num_interactions(),
        }


#: The run-wide resilience counters, all kept on the run-scoped metrics
#: registry (``context.metrics``) under ``runner.<name>`` -- the single
#: source both the stage counters and ``info["resilience"]`` read from.
_RESILIENCE_COUNTERS = (
    "sample_attempts",
    "sample_retries",
    "sample_failures",
    "fallback_depth",
    "chain_strength_escalations",
    "repair_rounds",
    "repair_polished_reads",
    "repair_resamples",
    "repair_reads_repaired",
    "repair_reads_dropped",
    "shard_fallbacks",
    "shard_redispatches",
)


class SampleStage(Stage):
    """Minimize the prepared model on the selected backend.

    Hardware-backed runs execute under the :class:`RetryPolicy`:
    transient solver failures are retried (each retry under a fresh
    random gauge, so retries double as spin-reversal averaging), and if
    the machine stays unavailable the *logical* problem degrades
    gracefully through the policy's classical fallback tiers.  Which
    tier actually answered lands in ``info["answered_by"]``.
    """

    name = "sample"

    def __init__(self, runner: "QmasmRunner"):
        self._runner = runner

    def run(self, artifact: RunArtifact, context: PipelineContext):
        options: RunOptions = context.options
        solver = options.solver
        num_reads = options.num_reads
        model = artifact.solve_model
        context.scratch.setdefault("answered_by", None)

        if len(model) == 0:
            # Everything was determined a priori.
            artifact.sampleset = SampleSet.empty([])
        elif solver == "dwave":
            machine = context.scratch["machine"]
            raw = self._runner._sample_with_retry(
                machine, artifact.scaled_model, options, context
            )
            if raw is not None:
                artifact.info["timing"] = raw.info.get("timing", {})
                artifact.sampleset = raw
                context.scratch["answered_by"] = "dwave"
            else:
                self._fall_back(artifact, context)
        else:
            artifact.sampleset = self._runner._classical_sample(
                solver,
                model,
                num_reads,
                num_sweeps=options.num_sweeps,
                max_workers=options.max_workers,
                kernel=options.kernel,
                batch_shards=options.batch_shards,
                deadline=context.deadline,
            )
            context.scratch["answered_by"] = solver
        self._lift_shard_stats(artifact, context)
        return artifact

    @staticmethod
    def _lift_shard_stats(
        artifact: RunArtifact, context: PipelineContext
    ) -> None:
        """Surface shard-fleet resilience stats on the run metrics.

        The shard solver counts tabu fallbacks and re-dispatches on the
        ambient registry under ``shard.*``/``fleet.*``; lifting them
        into the run-scoped ``runner.*`` namespace puts them in
        ``info["resilience"]`` alongside the retry/repair counters, so
        fleet dashboards see degraded shards per *run*.
        """
        if artifact.sampleset is None:
            return
        info = artifact.sampleset.info
        fallbacks = int(info.get("shard_fallbacks", 0))
        if fallbacks:
            context.metrics.counter("runner.shard_fallbacks").inc(fallbacks)
        redispatches = int(info.get("redispatches", 0))
        if redispatches:
            context.metrics.counter("runner.shard_redispatches").inc(
                redispatches
            )

    def _fall_back(self, artifact: RunArtifact, context: PipelineContext) -> None:
        """Degrade through the classical tiers after hardware gave up."""
        options: RunOptions = context.options
        policy = options.retry
        model = artifact.solve_model
        last_error: Optional[Exception] = context.scratch.get("last_error")
        for depth, tier in enumerate(policy.fallback_solvers, start=1):
            if tier == "exact" and len(model) > policy.exact_fallback_limit:
                continue
            try:
                artifact.sampleset = self._runner._classical_sample(
                    tier,
                    model,
                    options.num_reads,
                    num_sweeps=options.num_sweeps,
                    max_workers=options.max_workers,
                    kernel=options.kernel,
                    batch_shards=options.batch_shards,
                    deadline=context.deadline,
                )
            except Exception as exc:  # a broken tier just deepens the fall
                last_error = exc
                continue
            context.scratch["answered_by"] = tier
            context.metrics.gauge("runner.fallback_depth").set(depth)
            context.metrics.counter("runner.fallbacks").inc()
            _trace.event("runner.fallback", tier=tier, depth=depth)
            artifact.info["fallback_solver"] = tier
            return
        raise TransientSolverError(
            "hardware sampling failed after "
            f"{policy.max_sample_attempts} attempt(s) and no fallback "
            f"tier could answer (last error: {last_error})"
        )

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        counters = {"samples": len(artifact.sampleset)}
        # Surface the annealing-core performance counters (which sweep
        # kernel ran, and how fast) in the --time-passes report.
        info = artifact.sampleset.info if artifact.sampleset is not None else {}
        if info.get("kernel"):
            counters["kernel"] = info["kernel"]
        if "sweeps_per_s" in info:
            counters["sweeps_per_s"] = float(info["sweeps_per_s"])
        if info.get("max_workers"):
            counters["max_workers"] = info["max_workers"]
        if context.options.solver == "dwave":
            metrics = context.metrics
            counters.update(
                sample_attempts=int(metrics.value("runner.sample_attempts")),
                sample_retries=int(metrics.value("runner.sample_retries")),
                sample_failures=int(metrics.value("runner.sample_failures")),
                fallback_depth=int(metrics.value("runner.fallback_depth")),
            )
        return counters


class UnembedStage(Stage):
    """Map physical samples back to logical variables (majority vote).

    Also the chain-health guard: when the majority-vote unembedding
    reports a chain-break fraction above the policy threshold, the
    physical Hamiltonian is rebuilt with an escalated chain strength and
    re-sampled (itself under the retry policy), up to the policy's
    escalation budget -- the standard remedy when chains come apart on
    real hardware.
    """

    name = "unembed"
    #: Unembedding converts anneal work already paid for into logical
    #: results, so it runs even after the deadline expired.
    deadline_policy = "run"

    def __init__(self, runner: "QmasmRunner"):
        self._runner = runner

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        if not _needs_embedding(artifact, context):
            return True
        # A classical fallback tier answered over the *logical* model;
        # there is nothing embedded to undo.
        return context.scratch.get("answered_by") not in (None, "dwave")

    def run(self, artifact: RunArtifact, context: PipelineContext):
        options: RunOptions = context.options
        policy = options.retry
        unembedded = unembed_sampleset(
            artifact.sampleset, artifact.embedding, artifact.solve_model
        )
        break_fraction = unembedded.info.get("chain_break_fraction", 0.0)

        chain_strength = default_chain_strength(artifact.solve_model)
        escalations = 0
        while (
            break_fraction > policy.chain_break_threshold
            and escalations < policy.max_chain_strength_escalations
            # Escalation means re-sampling; an expired deadline keeps
            # whatever the majority vote already recovered.
            and not (
                context.deadline is not None and context.deadline.expired()
            )
        ):
            escalations += 1
            context.metrics.counter("runner.chain_strength_escalations").inc()
            _trace.event(
                "runner.chain_strength_escalation",
                escalation=escalations,
                break_fraction=break_fraction,
            )
            chain_strength *= policy.chain_strength_factor
            machine = context.scratch["machine"]
            physical = embed_ising(
                artifact.solve_model,
                artifact.embedding,
                machine.working_graph,
                chain_strength=chain_strength,
            )
            scaled, factor = scale_to_hardware(physical)
            raw = self._runner._sample_with_retry(
                machine, scaled, options, context
            )
            if raw is None:
                break  # machine went away mid-escalation: keep what we have
            artifact.physical_model = physical
            artifact.scaled_model = scaled
            artifact.info["scale_factor"] = factor
            artifact.info["chain_strength"] = chain_strength
            unembedded = unembed_sampleset(
                raw, artifact.embedding, artifact.solve_model
            )
            break_fraction = unembedded.info.get("chain_break_fraction", 0.0)

        context.metrics.histogram("runner.chain_break_fraction").observe(
            break_fraction
        )
        artifact.sampleset = unembedded
        artifact.info["chain_break_fraction"] = break_fraction
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        return {
            "samples": len(artifact.sampleset),
            "chain_break_fraction": artifact.info.get(
                "chain_break_fraction", 0.0
            ),
            "chain_strength_escalations": int(
                context.metrics.value("runner.chain_strength_escalations")
            ),
        }


class PostprocessStage(Stage):
    """SAPI-style optimization postprocessing of unembedded samples."""

    name = "postprocess"
    #: Optional refinement: an expired deadline skips it outright.
    deadline_policy = "skip"

    def __init__(self, runner: "QmasmRunner"):
        self._runner = runner

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        options: RunOptions = context.options
        return (
            options.solver != "dwave"
            # Fallback tiers already sample the logical model directly;
            # there are no unembedding artifacts to repair.
            or context.scratch.get("answered_by") not in (None, "dwave")
            or options.postprocess != "optimization"
            or len(artifact.solve_model) == 0
            or not len(artifact.sampleset)
        )

    def run(self, artifact: RunArtifact, context: PipelineContext):
        artifact.sampleset = self._runner._refine(
            artifact.solve_model, artifact.sampleset
        )
        artifact.info["postprocess"] = "optimization"
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        return {"samples": len(artifact.sampleset)}


class CorruptReadsStage(Stage):
    """Fault injection on *logical* reads: the certifier's adversary.

    The PR-2 fault harness corrupts physical reads before unembedding;
    majority-vote unembedding absorbs much of that.  This stage applies
    the ``read_corruption`` fault *after* unembedding and postprocessing
    -- flipping one meaningful variable per hit row while leaving the
    row's reported energy stale -- producing exactly the failure the
    energy-recomputation check exists to catch: reads that *look*
    low-energy but are wrong.

    Corruption columns are restricted per row to variables whose *local
    field* is nonzero in that row, so every injected flip provably
    changes the row's true energy -- flipping a zero-field variable
    would hop between exactly degenerate states (e.g. two valid truth-
    table rows of the same gate at the same energy), an in-principle
    undetectable "corruption" no certifier could or should flag.
    """

    name = "corrupt_reads"
    #: Fault injection costs nothing; run it even past the deadline so
    #: deadline-shortened runs exercise the same adversary.
    deadline_policy = "run"

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        machine = context.scratch.get("machine")
        faults = machine.faults if machine is not None else None
        return (
            faults is None
            or not faults.spec.read_corruption_rate
            or artifact.sampleset is None
            or not len(artifact.sampleset)
            or context.scratch.get("answered_by") not in (None, "dwave")
        )

    def run(self, artifact: RunArtifact, context: PipelineContext):
        from repro.solvers import kernels

        faults = context.scratch["machine"].faults
        sampleset = artifact.sampleset
        model = artifact.solve_model
        meaningful = np.array(
            [
                i
                for i, v in enumerate(sampleset.variables)
                if model.linear.get(v, 0.0) != 0.0 or model.degree(v) > 0
            ],
            dtype=int,
        )
        # Flipping spin i of row r changes the true energy by
        # -2 s_ri f_ri, so columns with a nonzero local field are
        # exactly the observable ones.
        order = list(model.variables)
        col_of = {v: i for i, v in enumerate(sampleset.variables)}
        perm = np.array([col_of[v] for v in order], dtype=int)
        _, h_vec, indptr, indices, data = model.to_csr()
        local_model = kernels.init_local_fields(
            h_vec, indptr, indices, data,
            sampleset.records[:, perm].astype(float),
        )
        local = np.empty_like(local_model)
        local[:, perm] = local_model
        observable = np.abs(local) > 1e-12
        records, rows = faults.corrupt_logical(
            sampleset.records, columns=meaningful, observable=observable
        )
        if len(rows):
            # Energies are deliberately left stale: a corrupted read
            # still *reports* its pre-corruption energy, which only the
            # certifier's recomputation can expose.  The stable sort
            # keeps row order (energies unchanged), so ``rows`` keeps
            # naming the corrupted rows.
            artifact.sampleset = SampleSet(
                sampleset.variables,
                records,
                sampleset.energies,
                sampleset.occurrences,
                dict(sampleset.info),
            )
            artifact.info["read_corruption_rows"] = [int(r) for r in rows]
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        return {
            "corrupted": len(artifact.info.get("read_corruption_rows", ()))
        }


class CertifyStage(Stage):
    """Recompute energies and replay the netlist for every read."""

    name = "certify"
    #: Certification is the cheap classical check that makes partial
    #: results trustworthy -- always run it, deadline or not.
    deadline_policy = "run"

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        return not context.options.certify or artifact.sampleset is None

    def run(self, artifact: RunArtifact, context: PipelineContext):
        options: RunOptions = context.options
        certificate = certify_sampleset(
            artifact.sampleset,
            artifact.logical,
            artifact.representative,
            artifact.solve_model,
            fixed=artifact.fixed,
            netlist=options.netlist,
            energy_tolerance=options.energy_tolerance,
        )
        artifact.certificate = certificate
        metrics = context.metrics
        metrics.counter("certify.reads_total").inc(certificate.total_reads)
        metrics.counter("certify.reads_certified").inc(
            certificate.certified_reads
        )
        uncertified = certificate.total_reads - certificate.certified_reads
        if uncertified:
            metrics.counter("certify.reads_uncertified").inc(uncertified)
        metrics.gauge("certify.certified_fraction").set(
            certificate.certified_fraction
        )
        return artifact

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        certificate = artifact.certificate
        return {
            "certified": certificate.certified_reads,
            "uncertified": (
                certificate.total_reads - certificate.certified_reads
            ),
            "certified_fraction": certificate.certified_fraction,
        }


class RepairStage(Stage):
    """Self-repair uncertified reads: polish, then budgeted re-sample.

    Every round runs bounded steepest descent (shared
    :mod:`repro.solvers.kernels` updaters) *in place* on the offending
    rows only -- a read corrupted away from a minimum descends right
    back.  Rounds after the first additionally re-sample first, with
    escalated reads (and, on hardware, escalated chain strength),
    replacing whatever rows are still uncertified before the polish.
    When the budget runs out with some reads still uncertified, those
    rows are *dropped* (provided at least one certified read survives):
    repair's contract is that the returned sample set is certified, and
    an unrepairable read is reported -- ``reads_dropped`` in the repair
    summary, ``runner.repair_reads_dropped`` counter -- rather than
    silently returned.  Every round re-certifies, so the attached
    certificate always describes the *final* sample set; the repair
    summary (rounds, polished/resampled/repaired/dropped reads, the
    fraction before repair) lands on ``certificate.repair`` and the
    ``runner.repair_*`` resilience counters.
    """

    name = "repair"
    #: Repair is best-effort refinement: skipped outright once the
    #: deadline has expired.
    deadline_policy = "skip"

    def __init__(self, runner: "QmasmRunner"):
        self._runner = runner

    def skip(self, artifact: RunArtifact, context: PipelineContext) -> bool:
        options: RunOptions = context.options
        return (
            not (options.certify and options.repair)
            or artifact.certificate is None
            or artifact.certificate.ok
            or options.retry.max_repair_rounds < 1
        )

    def run(self, artifact: RunArtifact, context: PipelineContext):
        options: RunOptions = context.options
        policy = options.retry
        metrics = context.metrics
        deadline = context.deadline
        certificate = artifact.certificate
        fraction_before = certificate.certified_fraction
        reads_before = certificate.certified_reads
        rounds = polished = resamples = dropped = 0

        def recertify() -> Certificate:
            fresh = certify_sampleset(
                artifact.sampleset,
                artifact.logical,
                artifact.representative,
                artifact.solve_model,
                fixed=artifact.fixed,
                netlist=options.netlist,
                energy_tolerance=options.energy_tolerance,
            )
            # Later rounds (and _resample) must see *this* round's
            # verdict, not the pre-repair one.
            artifact.certificate = fresh
            return fresh

        with _trace.span(
            "certify.repair", uncertified=len(certificate.uncertified_rows())
        ):
            while (
                not certificate.ok
                and rounds < policy.max_repair_rounds
                and not (deadline is not None and deadline.expired())
            ):
                rounds += 1
                metrics.counter("runner.repair_rounds").inc()
                if rounds > 1:
                    resamples += 1
                    metrics.counter("runner.repair_resamples").inc()
                    if not self._resample(artifact, context, round_index=rounds):
                        break  # backend gave nothing new: stop burning budget
                    certificate = recertify()
                    if certificate.ok:
                        break
                bad_rows = certificate.uncertified_rows()
                polished += len(bad_rows)
                metrics.counter("runner.repair_polished_reads").inc(
                    len(bad_rows)
                )
                artifact.sampleset = self._runner._polish_rows(
                    artifact.solve_model,
                    artifact.sampleset,
                    bad_rows,
                    max_sweeps=policy.repair_polish_sweeps,
                    deadline=deadline,
                )
                certificate = recertify()
                _trace.event(
                    "certify.repair_round",
                    round=rounds,
                    certified_fraction=certificate.certified_fraction,
                )

            # Budget exhausted with stubborn reads left: drop them
            # rather than hand back reads we know are wrong -- unless
            # that would leave nothing at all.
            if not certificate.ok and certificate.certified_reads > 0:
                bad_rows = certificate.uncertified_rows()
                dropped = len(bad_rows)
                metrics.counter("runner.repair_reads_dropped").inc(dropped)
                sampleset = artifact.sampleset
                keep = np.ones(len(sampleset), dtype=bool)
                keep[bad_rows] = False
                artifact.sampleset = SampleSet(
                    sampleset.variables,
                    sampleset.records[keep],
                    sampleset.energies[keep],
                    sampleset.occurrences[keep],
                    dict(sampleset.info),
                )
                certificate = recertify()

        repaired = max(0, certificate.certified_reads - reads_before)
        if repaired:
            metrics.counter("runner.repair_reads_repaired").inc(repaired)
        certificate.repair = {
            "rounds": rounds,
            "polished_reads": polished,
            "resample_rounds": resamples,
            "reads_repaired": repaired,
            "reads_dropped": dropped,
            "certified_fraction_before": fraction_before,
        }
        artifact.certificate = certificate
        context.metrics.gauge("certify.certified_fraction").set(
            certificate.certified_fraction
        )
        return artifact

    def _resample(
        self,
        artifact: RunArtifact,
        context: PipelineContext,
        round_index: int,
    ) -> bool:
        """Replace still-uncertified rows with freshly sampled reads."""
        options: RunOptions = context.options
        policy = options.retry
        num_reads = max(1, int(options.num_reads * policy.repair_read_factor))
        answered_by = context.scratch.get("answered_by")

        if answered_by == "dwave" and artifact.embedding is not None:
            machine = context.scratch["machine"]
            chain_strength = default_chain_strength(artifact.solve_model) * (
                policy.chain_strength_factor ** (round_index - 1)
            )
            physical = embed_ising(
                artifact.solve_model,
                artifact.embedding,
                machine.working_graph,
                chain_strength=chain_strength,
            )
            scaled, _factor = scale_to_hardware(physical)
            escalated = dataclasses.replace(options, num_reads=num_reads)
            raw = self._runner._sample_with_retry(
                machine, scaled, escalated, context
            )
            if raw is None:
                return False
            fresh = unembed_sampleset(
                raw, artifact.embedding, artifact.solve_model
            )
        else:
            solver = answered_by or options.solver
            if solver == "dwave":  # nothing embedded to resample against
                return False
            fresh = self._runner._classical_sample(
                solver,
                artifact.solve_model,
                num_reads,
                num_sweeps=options.num_sweeps,
                max_workers=options.max_workers,
                kernel=options.kernel,
                batch_shards=options.batch_shards,
                seed_offset=round_index,
                deadline=context.deadline,
            )
        if not len(fresh):
            return False

        # Keep the rows that already certified; append the fresh reads.
        sampleset = artifact.sampleset
        certificate = artifact.certificate
        keep = np.ones(len(sampleset), dtype=bool)
        for index in certificate.uncertified_rows():
            keep[index] = False
        positions = [fresh.variables.index(v) for v in sampleset.variables]
        records = np.vstack(
            [sampleset.records[keep], fresh.records[:, positions]]
        )
        energies = np.concatenate(
            [sampleset.energies[keep], fresh.energies]
        )
        occurrences = np.concatenate(
            [sampleset.occurrences[keep], fresh.occurrences]
        )
        artifact.sampleset = SampleSet(
            sampleset.variables,
            records,
            energies,
            occurrences,
            dict(sampleset.info),
        )
        return True

    def counters(self, artifact: RunArtifact, context: PipelineContext):
        repair = artifact.certificate.repair if artifact.certificate else {}
        return {
            "rounds": int(repair.get("rounds", 0)),
            "reads_repaired": int(repair.get("reads_repaired", 0)),
            "certified_fraction": artifact.certificate.certified_fraction
            if artifact.certificate
            else 1.0,
        }


#: Stages whose time the legacy ``info["wall_time_s"]`` figure covers
#: (embedding through postprocessing, matching the pre-pipeline timer).
_WALL_TIME_STAGES = (
    "find_embedding",
    "scale_to_hardware",
    "sample",
    "unembed",
    "postprocess",
)


class QmasmRunner:
    """Drives QMASM programs through solvers, like the qmasm executable.

    Args:
        machine: the simulated 2000Q backend; created lazily so
            classical-solver runs never pay for the C16 graph.
        seed: RNG seed for solvers and the embedder.
        embedding_cache: cache for minor embeddings; defaults to a fresh
            in-memory :class:`EmbeddingCache`.  Pass one with
            ``enabled=False`` to always re-embed.
        trace: optional per-stage trace-event callback.
        machines: simulated fleet size for the ``"shard"`` solver (how
            many chips sharded subproblems are dispatched across).
        fleet: optional heterogeneous fleet spec for the ``"shard"``
            solver (``"C16,P8,Z6"`` -- see
            :func:`repro.solvers.fleet.parse_fleet_spec`); overrides
            ``machines``.
        checkpoint_dir: directory for shard-solver checkpoints (one
            entry per run, persisted after every stitch round); ``None``
            disables checkpointing.
        resume: resume the shard solve from a matching checkpoint.
    """

    def __init__(
        self,
        machine: Optional[DWaveSimulator] = None,
        seed: Optional[int] = None,
        embedding_cache: Optional[EmbeddingCache] = None,
        trace: Optional[TraceCallback] = None,
        machines: int = 4,
        fleet: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ):
        self.machine = machine
        self.seed = seed
        self.trace = trace
        self.machines = machines
        self.fleet = fleet
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.embedding_cache = (
            embedding_cache if embedding_cache is not None else EmbeddingCache()
        )
        #: The execution pipeline; callers may reorder/extend/replace.
        self.run_stages: List[Stage] = [
            RoofDualityStage(),
            FindEmbeddingStage(self),
            ScaleToHardwareStage(),
            SampleStage(self),
            UnembedStage(self),
            PostprocessStage(self),
            CorruptReadsStage(),
            CertifyStage(),
            RepairStage(self),
        ]

    def _get_machine(self) -> DWaveSimulator:
        if self.machine is None:
            self.machine = DWaveSimulator(seed=self.seed)
        return self.machine

    # ------------------------------------------------------------------
    # Resilient sampling primitives
    # ------------------------------------------------------------------
    def _sample_with_retry(
        self,
        machine: DWaveSimulator,
        model: IsingModel,
        options: "RunOptions",
        context: PipelineContext,
    ) -> Optional[SampleSet]:
        """Sample on the machine under the retry policy.

        Returns ``None`` when every attempt failed transiently (the
        caller decides whether to fall back); permanent errors (range
        violations, topology mismatches) propagate immediately.  Each
        retry runs under one fresh random spin-reversal gauge, so a
        flaky machine's successful retries also decorrelate its analog
        bias -- retries double as gauge averaging.  Every attempt,
        retry, failure, and gauge lands on ``context.metrics`` under
        ``runner.*`` -- the single source the stage counters and
        ``info["resilience"]`` read from.
        """
        policy = options.retry
        metrics = context.metrics
        delay = policy.backoff_s
        last_error: Optional[Exception] = None
        for attempt in range(policy.max_sample_attempts):
            metrics.counter("runner.sample_attempts").inc()
            if attempt > 0:
                metrics.counter("runner.sample_retries").inc()
                if policy.gauge_on_retry:
                    metrics.counter("runner.gauge_retries").inc()
                _trace.event("runner.retry", attempt=attempt)
            try:
                return machine.sample_ising(
                    model,
                    num_reads=options.num_reads,
                    annealing_time_us=options.annealing_time_us,
                    num_spin_reversal_transforms=(
                        1 if attempt > 0 and policy.gauge_on_retry else 0
                    ),
                    kernel=options.kernel,
                    max_workers=options.max_workers,
                    batch_gauges=options.batch_gauges,
                    deadline=context.deadline,
                )
            except TransientSolverError as exc:
                last_error = exc
                metrics.counter("runner.sample_failures").inc()
                if delay > 0.0 and attempt + 1 < policy.max_sample_attempts:
                    time.sleep(delay)
                    delay *= policy.backoff_factor
        context.scratch["last_error"] = last_error
        return None

    def _classical_sample(
        self,
        solver: str,
        model: IsingModel,
        num_reads: int,
        num_sweeps: Optional[int] = None,
        max_workers: Optional[int] = None,
        kernel: Optional[str] = None,
        batch_shards: bool = False,
        seed_offset: int = 0,
        deadline: Optional[Deadline] = None,
    ) -> SampleSet:
        """One classical tier: the logical model on a software solver.

        ``seed_offset`` perturbs the sampler seed deterministically --
        repair re-sample rounds must draw *fresh* reads, not replay the
        round that produced the uncertified ones.
        """
        seed = self.seed
        if seed is not None and seed_offset:
            seed = seed + seed_offset
        if solver == "sa":
            kwargs = {} if num_sweeps is None else {"num_sweeps": num_sweeps}
            return SimulatedAnnealingSampler(seed=seed).sample(
                model, num_reads=num_reads, kernel=kernel,
                deadline=deadline, **kwargs
            )
        if solver == "sqa":
            from repro.solvers.sqa import PathIntegralAnnealer

            kwargs = {} if num_sweeps is None else {"num_sweeps": num_sweeps}
            return PathIntegralAnnealer(seed=seed).sample(
                model, num_reads=min(num_reads, 32), kernel=kernel,
                deadline=deadline, **kwargs
            )
        if solver == "exact":
            return ExactSolver().sample(model, num_lowest=num_reads)
        if solver == "tabu":
            kwargs = {} if num_sweeps is None else {"max_iter": num_sweeps}
            return TabuSampler(seed=seed).sample(
                model, num_reads=num_reads, kernel=kernel,
                deadline=deadline, **kwargs
            )
        if solver == "qbsolv":
            return QBSolv(seed=seed, max_workers=max_workers).sample(
                model, num_reads=min(num_reads, 10)
            )
        if solver == "shard":
            from repro.solvers.shard import ShardSolver

            machine = self._get_machine()
            # The machine-level clauses of the machine's fault spec
            # (machine_crash / machine_straggler / machine_flaky) drive
            # the shard fleet's chaos plan; single-machine clauses keep
            # acting inside DWaveSimulator itself.
            injector = getattr(machine, "faults", None)
            return ShardSolver(
                properties=machine.properties,
                machines=self.machines,
                seed=seed,
                max_workers=max_workers,
                fleet=self.fleet,
                faults=injector.spec if injector is not None else None,
                checkpoint=self.checkpoint_dir,
                resume=self.resume,
                kernel=kernel,
                batch_rounds=batch_shards,
            ).sample(
                model, num_reads=min(num_reads, 5), deadline=deadline
            )
        raise ValueError(f"unknown solver {solver!r}")

    def _polish_rows(
        self,
        model: IsingModel,
        sampleset: SampleSet,
        rows: Sequence[int],
        max_sweeps: int = 64,
        deadline: Optional[Deadline] = None,
    ) -> SampleSet:
        """Bounded steepest descent on *selected* rows, in place.

        Unlike :class:`~repro.solvers.greedy.SteepestDescentSolver`,
        this keeps untouched rows (and their energies) bit-identical and
        only descends the requested rows through the shared sweep
        kernels -- the repair loop's "polish the offenders" primitive.
        Polished rows get their energies recomputed; the returned set
        re-sorts by the usual stable energy order.
        """
        if not len(rows):
            return sampleset
        order = list(model.variables)
        positions = [sampleset.variables.index(v) for v in order]
        row_index = np.asarray(list(rows), dtype=int)
        spins = sampleset.records[row_index][:, positions].astype(float)

        _, h_vec, indptr, indices, data = model.to_csr()
        from repro.solvers import kernels

        chosen = kernels.choose_kernel(
            len(order), len(indices), None, num_reads=len(row_index)
        )
        fields = kernels.init_local_fields(h_vec, indptr, indices, data, spins)
        flip = kernels.make_mixed_flip_updater(chosen, indptr, indices, data)
        for _ in range(max_sweeps):
            if deadline is not None and deadline.expired():
                break
            gains = 2.0 * spins * fields
            best = np.argmax(gains, axis=1)
            descending = np.arange(len(spins))
            improving = gains[descending, best] > 1e-12
            if not improving.any():
                break
            flip(spins, fields, descending[improving], best[improving])

        # Scatter the polished spins back into sample-set column order.
        inverse = [order.index(v) for v in sampleset.variables]
        records = sampleset.records.copy()
        records[row_index] = spins[:, inverse].astype(records.dtype)
        energies = sampleset.energies.copy()
        energies[row_index] = model.energies(
            records[row_index].astype(float), order=list(sampleset.variables)
        )
        return SampleSet(
            sampleset.variables,
            records,
            energies,
            sampleset.occurrences.copy(),
            dict(sampleset.info),
        )

    def run(
        self,
        source: Union[str, Program, LogicalProgram],
        pins: Sequence[Union[str, Pin]] = (),
        solver: str = "dwave",
        num_reads: int = 100,
        num_sweeps: Optional[int] = None,
        max_workers: Optional[int] = None,
        kernel: Optional[str] = None,
        batch_gauges: bool = False,
        batch_shards: bool = False,
        annealing_time_us: float = 20.0,
        chain_strength: Optional[float] = None,
        pin_strength: Optional[float] = None,
        use_roof_duality: bool = False,
        embedding_tries: int = 16,
        embedding_seed: Optional[int] = None,
        postprocess: str = "optimization",
        retry_policy: Optional[RetryPolicy] = None,
        certify: bool = False,
        repair: bool = False,
        netlist: object = None,
        deadline: Optional[Union[float, Deadline]] = None,
        energy_tolerance: float = 1e-6,
    ) -> RunResult:
        """Assemble and execute a QMASM program.

        Args:
            source: QMASM text, a parsed :class:`Program`, or an
                assembled :class:`LogicalProgram`.
            pins: extra ``--pin`` style bindings (strings like
                ``"C[7:0] := 10001111"`` or :class:`Pin` objects).
            solver: ``"dwave"`` (embed + anneal on the simulated 2000Q),
                ``"sa"`` (simulated annealing on the logical problem),
                ``"sqa"`` (path-integral simulated *quantum* annealing,
                the Hitachi-style classical annealer of Section 2),
                ``"exact"`` (exhaustive), ``"tabu"``, ``"qbsolv"``, or
                ``"shard"`` (decompose across the runner's simulated
                fleet of ``machines`` chips -- the path for programs too
                large for any single working graph).
            num_reads: anneals / reads to perform.
            num_sweeps: Metropolis sweeps per read for the classical
                solvers (``sa``/``sqa``; ``tabu`` treats it as its
                iteration budget); None keeps each solver's default.
                The dwave tier derives sweeps from ``annealing_time_us``.
            max_workers: process-pool size for parallel spin-reversal
                gauge batches (dwave), qbsolv reads, and shard dispatch;
                results are bit-identical to serial runs.
            kernel: force a Metropolis sweep-kernel tier --
                ``"dense"``, ``"sparse"``, or ``"jit"`` (numba; falls
                back to sparse with a warning when numba is absent);
                None auto-selects per problem.  All tiers produce
                bit-identical samples, so this only affects speed.
            batch_gauges: pack the dwave tier's spin-reversal gauge
                batch into one cross-problem kernel invocation instead
                of annealing gauges one-by-one (or via a process pool).
                Deterministic under a fixed seed, but the shared RNG
                stream means samples differ from the serial schedule.
            batch_shards: likewise pack each shard round's embedded
                subproblems into one kernel invocation.
            annealing_time_us: per-anneal time for the dwave solver.
            chain_strength / pin_strength: see
                :meth:`LogicalProgram.to_ising`.
            use_roof_duality: elide a-priori-determined qubits first.
            embedding_tries: restarts for the minor embedder.
            embedding_seed: seed controlling the randomized embedder.
            postprocess: ``"optimization"`` (default) refines unembedded
                dwave samples with a short cold logical anneal -- the
                analogue of SAPI's optimization postprocessing, standing
                in for the collective chain dynamics a real annealer has
                and single-spin-flip simulation lacks; ``"none"``
                returns raw majority-vote samples.
            retry_policy: the resilient-execution policy for hardware
                runs (sample retries with gauge re-randomization,
                chain-strength escalation, classical fallback tiers);
                defaults to :class:`RetryPolicy`'s defaults.
            certify: recompute every read's energy from the logical
                model, replay the gate netlist (when given), and check
                pins/assertions; the verdict lands on
                :attr:`RunResult.certificate`.
            repair: with ``certify``, run the self-repair loop on
                uncertified reads (steepest-descent polish, then
                budgeted escalated re-sampling) under the retry
                policy's ``max_repair_rounds`` budget.
            netlist: the gate-level netlist to replay during
                certification (the compiler passes its own).
            deadline: wall-clock budget in seconds (or a prearmed
                :class:`~repro.core.deadline.Deadline`).  Samplers stop
                cooperatively at sweep-batch granularity; optional
                stages (postprocess, repair) are skipped once expired;
                required stages that cannot start raise
                :class:`~repro.core.deadline.DeadlineExceeded` carrying
                the partial artifact and the interrupted stage name.
            energy_tolerance: relative tolerance of the certification
                energy comparison.

        Returns:
            A :class:`RunResult` with aggregated, energy-sorted
            solutions and per-stage :attr:`RunResult.stats`.
        """
        if solver == "dwave" and postprocess not in ("none", "optimization"):
            raise ValueError(f"unknown postprocess {postprocess!r}")

        logical = self._to_logical(source, pins)
        logical_model, representative = logical.to_ising(
            chain_strength=chain_strength, pin_strength=pin_strength
        )

        options = RunOptions(
            solver=solver,
            num_reads=num_reads,
            num_sweeps=num_sweeps,
            max_workers=max_workers,
            kernel=kernel,
            batch_gauges=batch_gauges,
            batch_shards=batch_shards,
            annealing_time_us=annealing_time_us,
            chain_strength=chain_strength,
            pin_strength=pin_strength,
            use_roof_duality=use_roof_duality,
            embedding_tries=embedding_tries,
            embedding_seed=embedding_seed,
            postprocess=postprocess,
            retry=retry_policy if retry_policy is not None else RetryPolicy(),
            certify=certify,
            repair=repair,
            netlist=netlist,
            energy_tolerance=energy_tolerance,
        )
        run_deadline: Optional[Deadline] = (
            deadline
            if deadline is None or isinstance(deadline, Deadline)
            else Deadline(float(deadline))
        )
        context = PipelineContext(
            options=options,
            seed=self.seed,
            trace=self.trace,
            deadline=run_deadline,
        )
        artifact = RunArtifact(
            logical=logical,
            logical_model=logical_model,
            representative=representative,
            solve_model=logical_model,
            info={"solver": solver},
        )
        with _trace.span("run", solver=solver) as run_span:
            artifact = PassManager(self.run_stages, name="run").run(
                artifact, context
            )

        info = artifact.info
        if run_deadline is not None:
            sampler_interrupted = bool(
                artifact.sampleset is not None
                and artifact.sampleset.info.get("deadline_interrupted", False)
            )
            info["deadline"] = {
                "budget_s": run_deadline.budget_s,
                "elapsed_s": run_deadline.elapsed(),
                "expired": run_deadline.expired(),
                "sampler_interrupted": sampler_interrupted,
            }
            context.metrics.gauge("deadline.remaining_s").set(
                run_deadline.remaining()
            )
            if sampler_interrupted:
                context.metrics.counter("deadline.sampler_interrupts").inc()
        if artifact.certificate is not None:
            info["certificate"] = artifact.certificate.summary()
        info["wall_time_s"] = sum(
            record.wall_time_s
            for record in context.stats
            if record.name in _WALL_TIME_STAGES
        )
        info["roof_duality_fixed"] = len(artifact.fixed)
        if "answered_by" in context.scratch:
            info["answered_by"] = context.scratch["answered_by"] or solver
            summary = {}
            for key in _RESILIENCE_COUNTERS:
                value = int(context.metrics.value(f"runner.{key}"))
                if value:  # zeros are omitted: quiet runs stay quiet
                    summary[key] = value
            last_error = context.scratch.get("last_error")
            if last_error is not None:
                summary["last_error"] = str(last_error)
            info["resilience"] = summary
        machine = context.scratch.get("machine")
        if machine is not None and machine.faults is not None:
            info["fault_injection"] = machine.faults.counters()
        solutions = self._report(
            logical, artifact.sampleset, representative, artifact.fixed,
            logical_model,
        )
        return RunResult(
            solutions=solutions,
            sampleset=artifact.sampleset,
            logical=logical,
            logical_model=logical_model,
            representative=representative,
            embedding=artifact.embedding,
            physical_model=artifact.physical_model,
            info=info,
            fixed_spins=dict(artifact.fixed),
            certificate=artifact.certificate,
            stats=context.stats,
            metrics=context.metrics,
            trace=run_span if run_span.is_recording else None,
        )

    # ------------------------------------------------------------------
    def _refine(self, model: IsingModel, sampleset: SampleSet) -> SampleSet:
        """Cold logical anneal seeded from unembedded samples.

        Majority-voted samples sit near (not at) logical ground states;
        a short low-temperature anneal from those states repairs the
        residual gate defects, as SAPI's optimization postprocessing did
        for the paper's runs.
        """
        from repro.solvers.neal import default_beta_range

        _, beta_cold = default_beta_range(model)
        order = list(model.variables)
        positions = [sampleset.variables.index(v) for v in order]
        initial = sampleset.records[:, positions]
        sampler = SimulatedAnnealingSampler(seed=self.seed)
        refined = sampler.sample(
            model,
            num_reads=len(initial),
            num_sweeps=200,
            beta_range=(beta_cold / 4.0, beta_cold * 4.0),
            initial_states=initial,
        )
        refined.info.update(sampleset.info)
        return refined

    def _to_logical(
        self,
        source: Union[str, Program, LogicalProgram],
        pins: Sequence[Union[str, Pin]],
    ) -> LogicalProgram:
        if isinstance(source, LogicalProgram):
            logical = source
        else:
            program = parse_qmasm(source) if isinstance(source, str) else source
            logical = assemble(program)
        extra = {}
        for pin in pins:
            parsed = parse_pin(pin) if isinstance(pin, str) else pin
            for variable, value in parsed.assignments.items():
                if variable not in logical.variables:
                    raise QmasmError(f"--pin of unknown variable {variable!r}")
                extra[variable] = value
        # Never mutate the caller's program: pins apply to this run only.
        return logical.with_pins(extra)

    def _report(
        self,
        logical: LogicalProgram,
        sampleset: SampleSet,
        representative: Dict[str, str],
        fixed: Dict[str, int],
        logical_model: IsingModel,
    ) -> List[Solution]:
        solutions: List[Solution] = []
        seen: Dict[tuple, int] = {}
        visible = logical.visible_variables()

        rows = list(sampleset.aggregate()) if len(sampleset) else [None]
        for row in rows:
            spins: Dict[str, int] = dict(fixed)
            if row is not None:
                spins.update(row.assignment)
            full = logical.expand_sample(spins, representative)
            # Roof-fixed variables also expand through representatives.
            for variable, rep in representative.items():
                if rep in fixed:
                    full[variable] = fixed[rep]
            values = {
                v: spin_to_bool(full[v]) for v in visible if v in full
            }
            key = tuple(sorted(values.items()))
            occurrences = row.num_occurrences if row is not None else 1
            if key in seen:
                solutions[seen[key]].num_occurrences += occurrences
                continue
            energy = (
                row.energy if row is not None else logical_model.energy(spins)
            )
            seen[key] = len(solutions)
            solutions.append(
                Solution(
                    values=values,
                    energy=energy,
                    num_occurrences=occurrences,
                    failed_assertions=logical.check_assertions(full),
                    pins_respected=logical.pins_satisfied(full),
                )
            )
        solutions.sort(key=lambda s: (s.energy, -s.num_occurrences))
        return solutions
