"""QMASM source parser.

QMASM is line-oriented: comments start with ``#``; each line is a
weight, coupler, chain, pin, or ``!``-directive.  ``!include`` targets
are resolved through a pluggable resolver so the standard-cell library
can live in memory (see :mod:`repro.qmasm.stdcell`) or on disk.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Dict, List, Optional

from repro.qmasm.program import (
    Alias,
    AssertBinary,
    AssertConst,
    AssertExpr,
    AssertUnary,
    AssertVar,
    Assertion,
    Chain,
    Coupler,
    Include,
    MacroDef,
    Pin,
    Program,
    QmasmError,
    UseMacro,
    Weight,
)

#: A QMASM variable: letters/digits/_/$/. plus an optional [index].
_VAR_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$.@]*(?:\[\d+\])?")
_PIN_LHS_RE = re.compile(
    r"^([A-Za-z_$][A-Za-z0-9_$.@]*)(?:\[(\d+)(?::(\d+))?\])?$"
)

IncludeResolver = Callable[[str], str]


def default_include_resolver(target: str) -> str:
    """Resolve ``!include`` against the built-in registry, then disk."""
    from repro.qmasm.stdcell import STDCELL_NAME, stdcell_source

    if target in (STDCELL_NAME, f"{STDCELL_NAME}.qmasm"):
        return stdcell_source()
    for candidate in (target, f"{target}.qmasm"):
        if os.path.exists(candidate):
            with open(candidate, "r", encoding="utf-8") as handle:
                return handle.read()
    raise QmasmError(f"cannot resolve !include target {target!r}")


def parse_qmasm(
    source: str,
    include_resolver: Optional[IncludeResolver] = None,
    _depth: int = 0,
) -> Program:
    """Parse QMASM source into a :class:`Program` (includes expanded)."""
    if _depth > 16:
        raise QmasmError("include nesting too deep (cycle?)")
    resolver = include_resolver or default_include_resolver
    result = Program()
    macro_stack: List[MacroDef] = []

    def emit(statement) -> None:
        if macro_stack:
            macro_stack[-1].body.append(statement)
        else:
            result.statements.append(statement)

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("!"):
            _parse_directive(
                line, line_number, emit, macro_stack, result, resolver, _depth
            )
            continue
        emit(_parse_plain(line, line_number))

    if macro_stack:
        raise QmasmError(f"unterminated macro {macro_stack[-1].name!r}")
    return result


def _parse_directive(
    line: str,
    line_number: int,
    emit,
    macro_stack: List[MacroDef],
    result: Program,
    resolver: IncludeResolver,
    depth: int,
) -> None:
    tokens = line.split()
    directive = tokens[0]

    if directive == "!begin_macro":
        if len(tokens) != 2:
            raise QmasmError("!begin_macro needs a name", line_number)
        macro_stack.append(MacroDef(line=line_number, name=tokens[1]))
    elif directive == "!end_macro":
        if not macro_stack:
            raise QmasmError("!end_macro without !begin_macro", line_number)
        macro = macro_stack.pop()
        if len(tokens) > 1 and tokens[1] != macro.name:
            raise QmasmError(
                f"!end_macro {tokens[1]} does not match {macro.name!r}", line_number
            )
        if macro.name in result.macros:
            raise QmasmError(f"duplicate macro {macro.name!r}", line_number)
        result.macros[macro.name] = macro
    elif directive == "!use_macro":
        if len(tokens) < 3:
            raise QmasmError(
                "!use_macro needs a macro name and at least one instance",
                line_number,
            )
        emit(UseMacro(line=line_number, macro=tokens[1], instances=tokens[2:]))
    elif directive == "!include":
        if len(tokens) < 2:
            raise QmasmError("!include needs a target", line_number)
        target = " ".join(tokens[1:]).strip("\"'<>")
        included = parse_qmasm(resolver(target), resolver, depth + 1)
        # Included macros become available; included statements inline.
        for name, macro in included.macros.items():
            if name in result.macros:
                raise QmasmError(
                    f"macro {name!r} redefined by include {target!r}", line_number
                )
            result.macros[name] = macro
        for statement in included.statements:
            emit(statement)
        emit(Include(line=line_number, target=target))
    elif directive == "!alias":
        if len(tokens) != 3:
            raise QmasmError("!alias needs two names", line_number)
        emit(Alias(line=line_number, new=tokens[1], old=tokens[2]))
    elif directive == "!assert":
        expression_text = line[len("!assert"):].strip()
        expression = _parse_assert(expression_text, line_number)
        emit(Assertion(line=line_number, expression=expression, source=expression_text))
    else:
        raise QmasmError(f"unknown directive {directive!r}", line_number)


def _parse_plain(line: str, line_number: int):
    if ":=" in line:
        return _parse_pin_line(line, line_number)
    tokens = line.split()
    if len(tokens) == 3 and tokens[1] in ("=", "/="):
        _check_var(tokens[0], line_number)
        _check_var(tokens[2], line_number)
        return Chain(
            line=line_number,
            variable_a=tokens[0],
            variable_b=tokens[2],
            same=tokens[1] == "=",
        )
    if len(tokens) == 2:
        _check_var(tokens[0], line_number)
        return Weight(
            line=line_number, variable=tokens[0], value=_number(tokens[1], line_number)
        )
    if len(tokens) == 3:
        _check_var(tokens[0], line_number)
        _check_var(tokens[1], line_number)
        return Coupler(
            line=line_number,
            variable_a=tokens[0],
            variable_b=tokens[1],
            value=_number(tokens[2], line_number),
        )
    raise QmasmError(f"cannot parse statement {line!r}", line_number)


def _check_var(token: str, line_number: int) -> None:
    if not _VAR_RE.fullmatch(token):
        raise QmasmError(f"invalid variable name {token!r}", line_number)


def _number(token: str, line_number: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise QmasmError(f"invalid number {token!r}", line_number) from None


# ----------------------------------------------------------------------
# Pins
# ----------------------------------------------------------------------
_TRUE_WORDS = {"true", "t", "1", "+1"}
_FALSE_WORDS = {"false", "f", "0", "-1"}


def _parse_pin_line(line: str, line_number: int) -> Pin:
    lhs_text, rhs_text = (part.strip() for part in line.split(":=", 1))
    return Pin(line=line_number, assignments=_pin_assignments(lhs_text, rhs_text, line_number))


def parse_pin(text: str) -> Pin:
    """Parse a ``--pin`` option value such as ``"C[7:0] := 10001111"``."""
    if ":=" not in text:
        raise QmasmError(f"pin {text!r} needs ':='")
    lhs, rhs = (part.strip() for part in text.split(":=", 1))
    return Pin(assignments=_pin_assignments(lhs, rhs, None))


def _pin_assignments(lhs: str, rhs: str, line_number) -> Dict[str, bool]:
    match = _PIN_LHS_RE.match(lhs)
    if not match:
        raise QmasmError(f"invalid pin target {lhs!r}", line_number)
    base, first, second = match.groups()

    if first is None:
        # Scalar pin: NAME := true/false/0/1
        word = rhs.lower()
        if word in _TRUE_WORDS:
            return {base: True}
        if word in _FALSE_WORDS:
            return {base: False}
        raise QmasmError(f"invalid scalar pin value {rhs!r}", line_number)

    if second is None:
        # Single bit: NAME[i] := 0/1/true/false
        word = rhs.lower()
        if word in _TRUE_WORDS:
            return {f"{base}[{first}]": True}
        if word in _FALSE_WORDS:
            return {f"{base}[{first}]": False}
        raise QmasmError(f"invalid bit pin value {rhs!r}", line_number)

    msb, lsb = int(first), int(second)
    indices = (
        list(range(msb, lsb - 1, -1)) if msb >= lsb else list(range(msb, lsb + 1))
    )
    width = len(indices)
    bits = rhs.strip()
    if re.fullmatch(r"[01]+", bits) and len(bits) == width:
        values = [bit == "1" for bit in bits]  # MSB first, like the paper
    else:
        try:
            integer = int(bits, 0)
        except ValueError:
            raise QmasmError(f"invalid pin value {rhs!r}", line_number) from None
        if integer < 0 or integer >= (1 << width):
            raise QmasmError(
                f"pin value {integer} does not fit {width} bits", line_number
            )
        values = [bool((integer >> (width - 1 - i)) & 1) for i in range(width)]
    return {
        f"{base}[{index}]": value for index, value in zip(indices, values)
    }


# ----------------------------------------------------------------------
# Assertion expressions
# ----------------------------------------------------------------------
_ASSERT_TOKEN_RE = re.compile(
    r"\s*(/=|<=|>=|[()&|^~+\-*=<>]|\d+|[A-Za-z_$][A-Za-z0-9_$.@]*(?:\[\d+\])?)"
)

_PRECEDENCE = {
    "=": 1, "/=": 1, "<": 1, "<=": 1, ">": 1, ">=": 1,
    "|": 2,
    "^": 3,
    "&": 4,
    "+": 5, "-": 5,
    "*": 6,
}


def _parse_assert(text: str, line_number: int) -> AssertExpr:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _ASSERT_TOKEN_RE.match(text, position)
        if not match:
            raise QmasmError(
                f"cannot tokenize assertion at {text[position:]!r}", line_number
            )
        tokens.append(match.group(1))
        position = match.end()

    def parse_expression(index: int, min_precedence: int):
        index, left = parse_unary(index)
        while index < len(tokens):
            op = tokens[index]
            precedence = _PRECEDENCE.get(op, 0)
            if precedence < min_precedence or precedence == 0:
                break
            index, right = parse_expression(index + 1, precedence + 1)
            left = AssertBinary(op, left, right)
        return index, left

    def parse_unary(index: int):
        if index >= len(tokens):
            raise QmasmError("assertion ends unexpectedly", line_number)
        token = tokens[index]
        if token in ("~", "-"):
            index, operand = parse_unary(index + 1)
            return index, AssertUnary(token, operand)
        if token == "(":
            index, inner = parse_expression(index + 1, 1)
            if index >= len(tokens) or tokens[index] != ")":
                raise QmasmError("missing ')' in assertion", line_number)
            return index + 1, inner
        if token.isdigit():
            return index + 1, AssertConst(int(token))
        if _VAR_RE.fullmatch(token):
            return index + 1, AssertVar(token)
        raise QmasmError(f"unexpected token {token!r} in assertion", line_number)

    index, expression = parse_expression(0, 1)
    if index != len(tokens):
        raise QmasmError(
            f"trailing tokens in assertion: {tokens[index:]!r}", line_number
        )
    return expression
