"""QMASM assembly: macro expansion down to a logical Ising model.

``assemble`` flattens a parsed :class:`Program` -- expanding
``!use_macro`` instantiations with dotted instance prefixes
(``my_and.A``), applying ``!alias``, and collecting weights, couplers,
chains, pins, and assertions -- into a :class:`LogicalProgram`.

``LogicalProgram.to_ising`` then produces the logical quadratic
pseudo-Boolean function: explicit ``A = B`` chains are contracted into a
single variable (the qmasm optimization of Section 4.4), ``A /= B``
anti-chains become positive couplers, and pins become strong H_VCC /
H_GND biases (Section 4.3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.ising.model import IsingModel, bool_to_spin, spin_to_bool
from repro.qmasm.program import (
    Alias,
    AssertExpr,
    Assertion,
    Chain,
    Coupler,
    Include,
    MacroDef,
    Pin,
    Program,
    QmasmError,
    UseMacro,
    Weight,
    prefix_assert,
    rename_assert,
)


@dataclass
class _Flattened:
    weights: List[Tuple[str, float]] = field(default_factory=list)
    couplers: List[Tuple[str, str, float]] = field(default_factory=list)
    chains: List[Tuple[str, str, bool]] = field(default_factory=list)
    pins: Dict[str, bool] = field(default_factory=dict)
    assertions: List[Tuple[AssertExpr, str]] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)


def _expand(
    statements,
    macros: Mapping[str, MacroDef],
    prefix: str,
    out: _Flattened,
    depth: int = 0,
) -> None:
    if depth > 32:
        raise QmasmError("macro expansion too deep (recursive macro?)")
    for statement in statements:
        if isinstance(statement, Weight):
            out.weights.append((prefix + statement.variable, statement.value))
        elif isinstance(statement, Coupler):
            out.couplers.append(
                (prefix + statement.variable_a, prefix + statement.variable_b,
                 statement.value)
            )
        elif isinstance(statement, Chain):
            out.chains.append(
                (prefix + statement.variable_a, prefix + statement.variable_b,
                 statement.same)
            )
        elif isinstance(statement, Pin):
            for variable, value in statement.assignments.items():
                out.pins[prefix + variable] = value
        elif isinstance(statement, Assertion):
            expression = (
                prefix_assert(statement.expression, prefix) if prefix
                else statement.expression
            )
            out.assertions.append((expression, statement.source))
        elif isinstance(statement, Alias):
            out.aliases[prefix + statement.new] = prefix + statement.old
        elif isinstance(statement, UseMacro):
            macro = macros.get(statement.macro)
            if macro is None:
                raise QmasmError(
                    f"!use_macro of undefined macro {statement.macro!r}",
                    statement.line,
                )
            for instance in statement.instances:
                _expand(
                    macro.body, macros, f"{prefix}{instance}.", out, depth + 1
                )
        elif isinstance(statement, Include):
            pass  # contents were inlined at parse time
        else:
            raise QmasmError(f"unexpected statement {statement!r}")


class _UnionFind:
    def __init__(self):
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        root = item
        while root in self._parent:
            root = self._parent[root]
        while item in self._parent:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, keep: str, merge: str) -> None:
        keep_root, merge_root = self.find(keep), self.find(merge)
        if keep_root != merge_root:
            self._parent[merge_root] = keep_root


def _preference(name: str) -> Tuple:
    """Chain-contraction representative choice: visible, shallow names win."""
    return ("$" in name, name.count("."), len(name), name)


@dataclass
class LogicalProgram:
    """An assembled QMASM program, pre-embedding.

    Attributes:
        model: the raw Ising model from weights and couplers (chains and
            pins not yet applied).
        chains: ``(a, b, same)`` equality/inequality biases.
        pins: variable -> Boolean argument bindings.
        assertions: ``(expression, source_text)`` debug checks.
        variables: every variable name mentioned anywhere.
    """

    model: IsingModel
    chains: List[Tuple[str, str, bool]]
    pins: Dict[str, bool]
    assertions: List[Tuple[AssertExpr, str]]
    variables: Set[str]

    def with_pins(self, pins: Mapping[str, bool]) -> "LogicalProgram":
        """A copy with extra pins added (the original is untouched, so
        one compiled program can be run many times with different
        arguments -- forward, backward, or partially pinned)."""
        merged = dict(self.pins)
        merged.update(pins)
        return LogicalProgram(
            model=self.model,
            chains=self.chains,
            pins=merged,
            assertions=self.assertions,
            variables=self.variables,
        )

    # -- derived properties -------------------------------------------------
    def visible_variables(self) -> List[str]:
        """Variables reported to the user ('$' marks internal ones)."""
        return sorted(v for v in self.variables if "$" not in v)

    def literal_max_coupler(self) -> float:
        """Largest |J| appearing literally (sets the default chain strength)."""
        return max(
            (abs(c) for c in self.model.quadratic.values()), default=1.0
        )

    def default_chain_strength(self) -> float:
        """QMASM's default: twice the largest-in-magnitude literal J."""
        return 2.0 * self.literal_max_coupler()

    # -- lowering ------------------------------------------------------------
    def to_ising(
        self,
        contract_chains: bool = True,
        chain_strength: Optional[float] = None,
        pin_strength: Optional[float] = None,
        apply_pins: bool = True,
    ) -> Tuple[IsingModel, Dict[str, str]]:
        """Lower to a logical Ising model.

        Args:
            contract_chains: merge ``A = B`` chains into one variable
                (the paper's explicit-chain optimization); if False they
                become ferromagnetic couplers instead.
            chain_strength: coupling magnitude for non-contracted chains
                and anti-chains; defaults to twice the largest literal J.
            pin_strength: bias magnitude for pins; defaults to the chain
                strength.
            apply_pins: include pin biases (disable to get the bare
                program relation).

        Returns:
            ``(model, representative_map)`` where ``representative_map``
            maps every original variable to the variable that now stands
            for it in the model.
        """
        if chain_strength is None:
            chain_strength = self.default_chain_strength()
        if pin_strength is None:
            pin_strength = chain_strength

        union = _UnionFind()
        if contract_chains:
            for a, b, same in self.chains:
                if same:
                    union.union(a, b)
        # Choose preferred representatives deterministically.
        groups: Dict[str, List[str]] = {}
        for variable in self.variables:
            groups.setdefault(union.find(variable), []).append(variable)
        representative: Dict[str, str] = {}
        for members in groups.values():
            best = min(members, key=_preference)
            for member in members:
                representative[member] = best

        model = self.model.relabel(representative)
        for variable in self.variables:
            model.add_variable(representative[variable], 0.0)

        for a, b, same in self.chains:
            rep_a, rep_b = representative[a], representative[b]
            if same:
                if rep_a != rep_b:  # contract_chains False
                    model.add_interaction(rep_a, rep_b, -abs(chain_strength))
            else:
                if rep_a == rep_b:
                    raise QmasmError(
                        f"variables {a!r} and {b!r} are chained both equal "
                        "and opposite"
                    )
                model.add_interaction(rep_a, rep_b, abs(chain_strength))

        if apply_pins:
            for variable, value in self.pins.items():
                rep = representative.get(variable)
                if rep is None:
                    raise QmasmError(f"pin of unknown variable {variable!r}")
                bias = -abs(pin_strength) if value else abs(pin_strength)
                model.add_variable(rep, bias)
        return model, representative

    # -- sample handling ---------------------------------------------------
    def expand_sample(
        self, sample: Mapping[str, int], representative: Mapping[str, str]
    ) -> Dict[str, int]:
        """Spread representative spins back over all original variables."""
        return {
            variable: sample[rep]
            for variable, rep in representative.items()
            if rep in sample
        }

    def check_assertions(self, sample: Mapping[str, int]) -> List[str]:
        """Return the source text of every failed ``!assert``."""
        values = {v: spin_to_bool(s) for v, s in sample.items()}
        failures = []
        for expression, source in self.assertions:
            try:
                passed = bool(expression.evaluate(values))
            except QmasmError:
                passed = False  # references a variable that was optimized out
            if not passed:
                failures.append(source)
        return failures

    def pins_satisfied(self, sample: Mapping[str, int]) -> bool:
        return all(
            variable not in sample
            or sample[variable] == bool_to_spin(value)
            for variable, value in self.pins.items()
        )


def assemble(program: Program) -> LogicalProgram:
    """Flatten a parsed QMASM program into a :class:`LogicalProgram`."""
    flat = _Flattened()
    _expand(program.statements, program.macros, "", flat)

    # Apply aliases (new name -> existing variable).
    def resolve_alias(name: str) -> str:
        seen = set()
        while name in flat.aliases:
            if name in seen:
                raise QmasmError(f"alias cycle through {name!r}")
            seen.add(name)
            name = flat.aliases[name]
        return name

    model = IsingModel()
    variables: Set[str] = set()
    for variable, value in flat.weights:
        variable = resolve_alias(variable)
        model.add_variable(variable, value)
        variables.add(variable)
    for a, b, value in flat.couplers:
        a, b = resolve_alias(a), resolve_alias(b)
        if a == b:
            raise QmasmError(f"self-coupler on {a!r}")
        model.add_interaction(a, b, value)
        variables.update((a, b))
    chains = []
    for a, b, same in flat.chains:
        a, b = resolve_alias(a), resolve_alias(b)
        chains.append((a, b, same))
        variables.update((a, b))
    pins = {resolve_alias(v): value for v, value in flat.pins.items()}
    variables.update(pins)
    alias_map = {
        name: resolve_alias(name)
        for expression, _src in flat.assertions
        for name in expression.variables()
    }
    assertions = [
        (rename_assert(expression, alias_map), source)
        for expression, source in flat.assertions
    ]
    for expression, _source in assertions:
        variables.update(expression.variables())

    return LogicalProgram(
        model=model,
        chains=chains,
        pins=pins,
        assertions=assertions,
        variables=variables,
    )
