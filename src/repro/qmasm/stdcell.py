"""Generation of ``stdcell.qmasm``: the QMASM standard-cell library.

The paper stores the Table 5 gate Hamiltonians as QMASM macros "in a
'standard cell library', stdcell.qmasm, that can be incorporated (with
QMASM's !include directive) into the code our compiler framework
generates" -- see the paper's Listing 2 for the NOT/OR excerpt.  This
module renders exactly that file from the verified
:data:`repro.ising.cells.CELL_LIBRARY`, including the ``!assert``
debugging niceties and ``#`` comments the paper shows.
"""

from __future__ import annotations

from typing import Dict

from repro.ising.cells import CELL_LIBRARY, CellSpec

#: The ``!include`` target name that resolves to this library.
STDCELL_NAME = "stdcell"

#: Human-readable descriptions and assertion text per cell.
_CELL_DOCS: Dict[str, str] = {
    "NOT": "inverter",
    "AND": "2-input AND",
    "OR": "2-input OR",
    "NAND": "2-input NAND",
    "NOR": "2-input NOR",
    "XOR": "2-input exclusive OR",
    "XNOR": "2-input exclusive NOR",
    "MUX": "2:1 multiplexer",
    "AOI3": "3-bit AND-OR-INVERT",
    "OAI3": "3-bit OR-AND-INVERT",
    "AOI4": "4-bit AND-OR-INVERT",
    "OAI4": "4-bit OR-AND-INVERT",
    "DFF_P": "positive edge-triggered D flip-flop",
    "DFF_N": "negative edge-triggered D flip-flop",
}

_CELL_ASSERTS: Dict[str, str] = {
    "NOT": "Y = ~A",
    "AND": "Y = A&B",
    "OR": "Y = A|B",
    "NAND": "Y = ~(A&B)",
    "NOR": "Y = ~(A|B)",
    "XOR": "Y = A^B",
    "XNOR": "Y = ~(A^B)",
    "MUX": "Y = (S&B)|(~S&A)",
    "AOI3": "Y = ~((A&B)|C)",
    "OAI3": "Y = ~((A|B)&C)",
    "AOI4": "Y = ~((A&B)|(C&D))",
    "OAI4": "Y = ~((A|B)&(C|D))",
    "DFF_P": "Q = D",
    "DFF_N": "Q = D",
}


def _format_number(value: float) -> str:
    # repr() is the shortest string that round-trips the float exactly,
    # so assembling the rendered library reproduces the verified
    # Hamiltonians bit for bit.
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_cell(spec: CellSpec) -> str:
    """Render one cell as a QMASM macro definition."""
    lines = [
        f"# {spec.name}: {_CELL_DOCS.get(spec.name, spec.name)}",
        f"!begin_macro {spec.name}",
    ]
    assertion = _CELL_ASSERTS.get(spec.name)
    if assertion:
        lines.append(f"!assert {assertion}")
    model = spec.hamiltonian()
    for variable in spec.ports + spec.ancillas:
        bias = model.linear.get(variable, 0.0)
        if bias != 0.0:
            lines.append(f"{variable} {_format_number(bias)}")
    for (u, v), coupling in sorted(model.quadratic.items(), key=lambda kv: repr(kv[0])):
        if coupling != 0.0:
            lines.append(f"{u} {v} {_format_number(coupling)}")
    lines.append(f"!end_macro {spec.name}")
    return "\n".join(lines)


def stdcell_source() -> str:
    """The full stdcell.qmasm text (every Table 5 cell as a macro)."""
    header = (
        "# stdcell.qmasm - standard-cell library of gate Hamiltonians\n"
        "# Generated from the verified Table 5 cell library; each macro's\n"
        "# quadratic pseudo-Boolean function is minimized exactly on the\n"
        "# valid rows of the cell's truth table.\n"
    )
    sections = [render_cell(CELL_LIBRARY[name]) for name in CELL_LIBRARY]
    return header + "\n" + "\n\n".join(sections) + "\n"
