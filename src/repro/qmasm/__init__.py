"""QMASM: the quantum macro assembler (Section 4.3).

QMASM sits between netlists and the raw Hamiltonian: "just as it is more
convenient to express an x86 addition instruction symbolically ... QMASM
lets programmers write functions symbolically".  This package implements
the language features the paper relies on:

- symbolic variable names with weight (``A -1``) and coupler
  (``A B -5``) statements,
- shortcut syntax biasing two variables equal (``A = B``) or opposite
  (``A /= B``),
- pins (``A := true``, ``C[7:0] := 10001111``) for passing arguments
  (Section 4.3.6),
- macros (``!begin_macro`` / ``!end_macro`` / ``!use_macro``) and
  ``!include`` for the standard-cell library,
- ``!assert`` for debugging, checked against every returned sample,
- and the qmasm tool behaviour: assemble, optionally elide qubits via
  roof duality, minor-embed, scale, run many anneals, and report
  statistics over symbolic names with ``$``-variables hidden.
"""

from repro.qmasm.program import (
    QmasmError,
    Statement,
    Weight,
    Coupler,
    Chain,
    Pin,
    Alias,
    Assertion,
    MacroDef,
    UseMacro,
    Include,
    Program,
)
from repro.qmasm.parser import parse_qmasm, parse_pin
from repro.qmasm.assembler import assemble, LogicalProgram
from repro.qmasm.stdcell import stdcell_source, STDCELL_NAME
from repro.qmasm.runner import QmasmRunner, RetryPolicy, RunResult

__all__ = [
    "QmasmError",
    "Statement",
    "Weight",
    "Coupler",
    "Chain",
    "Pin",
    "Alias",
    "Assertion",
    "MacroDef",
    "UseMacro",
    "Include",
    "Program",
    "parse_qmasm",
    "parse_pin",
    "assemble",
    "LogicalProgram",
    "stdcell_source",
    "STDCELL_NAME",
    "QmasmRunner",
    "RetryPolicy",
    "RunResult",
]
