"""Result certification: classical end-to-end checks of annealer reads.

The compiled artifact is a *relation*: by the definition of NP, any spin
assignment the annealer returns can be verified in polynomial time by
replaying the gate-level netlist forward (Section 5.2 of the paper; Bian
et al. lean on the same verify-the-answer-classically loop for SAT).
This module is that verifier, applied per read:

1. **Energy recomputation** -- the read's reported energy is recomputed
   from the logical Ising model; disagreement means the read was
   corrupted somewhere between sampling and reporting (a
   low-energy-*looking* but wrong read).
2. **Netlist replay** -- every combinational cell's truth function
   (:data:`repro.ising.cells.CELL_LIBRARY`, the same tables
   :mod:`repro.synth.simulate` evaluates) is checked against the net
   values the read assigns, using the net->variable naming rule shared
   with :func:`repro.edif2qmasm.translate.net_variable_names`.  A cell
   whose output disagrees with its inputs is a gate violation.
3. **Pins and assertions** -- the read must respect every ``--pin`` and
   pass every ``!assert``.

Each read is classified as one of:

* ``certified`` -- energy matches and every constraint holds;
* ``energy_mismatch`` -- constraints hold but the reported energy is
  not the model's energy of the reported state;
* ``constraint_violation`` -- a gate, pin, or assertion fails (this
  dominates ``energy_mismatch`` when both apply).

The per-run :class:`Certificate` aggregates occurrence-weighted counts,
the certified fraction, per-cell violation counts, and the worst
offending cells; :class:`~repro.qmasm.runner.QmasmRunner` attaches it to
:class:`~repro.qmasm.runner.RunResult` and drives the self-repair loop
from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core import trace as _trace
from repro.ising.cells import CELL_LIBRARY
from repro.ising.model import IsingModel, spin_to_bool
from repro.qmasm.assembler import LogicalProgram
from repro.solvers.sampleset import SampleSet

#: Read classification states, from best to worst.
CERTIFIED = "certified"
ENERGY_MISMATCH = "energy_mismatch"
CONSTRAINT_VIOLATION = "constraint_violation"
STATES = (CERTIFIED, ENERGY_MISMATCH, CONSTRAINT_VIOLATION)


@dataclass
class ReadCheck:
    """The certification verdict for one sample-set row.

    Attributes:
        index: the row's index in the certified sample set.
        state: one of :data:`STATES`.
        energy_reported: the energy the sample set carried.
        energy_recomputed: the model's energy of the reported state.
        gate_violations: names of cells whose output contradicts their
            inputs under this read.
        failed_assertions: source text of every failed ``!assert``.
        pins_respected: whether every pinned variable holds its value.
        num_occurrences: the row's occurrence count (weights the
            certificate's aggregate counts).
    """

    index: int
    state: str
    energy_reported: float
    energy_recomputed: float
    gate_violations: Tuple[str, ...] = ()
    failed_assertions: Tuple[str, ...] = ()
    pins_respected: bool = True
    num_occurrences: int = 1

    @property
    def certified(self) -> bool:
        return self.state == CERTIFIED


@dataclass
class Certificate:
    """The aggregated certification verdict for one run.

    Attributes:
        reads: per-row verdicts, aligned with the sample set's rows.
        counts: occurrence-weighted read counts per state.
        gate_violation_counts: occurrence-weighted violation counts per
            cell name.
        gates_checked: how many netlist cells were replayed per read
            (0 when no netlist was available -- energy/pin/assertion
            checks still ran).
        unchecked_cells: cells that could not be replayed (sequential
            cells, or cells whose nets were optimized out).
        energy_tolerance: relative tolerance of the energy comparison.
        repair: summary of the self-repair loop, when it ran
            (``rounds``, ``polished_reads``, ``resample_rounds``,
            ``reads_repaired``, ``certified_fraction_before``).
    """

    reads: List[ReadCheck] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    gate_violation_counts: Dict[str, int] = field(default_factory=dict)
    gates_checked: int = 0
    unchecked_cells: Tuple[str, ...] = ()
    energy_tolerance: float = 1e-6
    repair: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return sum(self.counts.values())

    @property
    def certified_reads(self) -> int:
        return self.counts.get(CERTIFIED, 0)

    @property
    def certified_fraction(self) -> float:
        total = self.total_reads
        return self.certified_reads / total if total else 1.0

    @property
    def ok(self) -> bool:
        """True when every read certified (the CLI's exit-code gate)."""
        return self.certified_fraction == 1.0

    def states(self) -> List[str]:
        """Per-row states, aligned with the sample set's row order."""
        return [read.state for read in self.reads]

    def uncertified_rows(self) -> List[int]:
        return [read.index for read in self.reads if not read.certified]

    def worst_cells(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` cells with the most violations, worst first."""
        ranked = sorted(
            self.gate_violation_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:n]

    def summary(self) -> str:
        """One line for reports: state counts and the worst offenders."""
        parts = [
            f"certified {self.certified_reads}/{self.total_reads} reads "
            f"({self.certified_fraction:.1%})"
        ]
        for state in (ENERGY_MISMATCH, CONSTRAINT_VIOLATION):
            if self.counts.get(state):
                parts.append(f"{state}={self.counts[state]}")
        worst = self.worst_cells(3)
        if worst:
            cells = ", ".join(f"{name} x{count}" for name, count in worst)
            parts.append(f"worst cells: {cells}")
        if self.repair:
            parts.append(
                f"repaired in {int(self.repair.get('rounds', 0))} round(s)"
            )
            if self.repair.get("reads_dropped"):
                parts.append(
                    f"dropped {int(self.repair['reads_dropped'])} "
                    "unrepairable read(s)"
                )
        return "; ".join(parts)


#: One replayable gate: (cell name, input variables, output variable,
#: truth function).  Constants get ``()`` inputs and a constant lambda.
_GateCheck = Tuple[str, Tuple[str, ...], str, object]


def _netlist_gate_checks(netlist) -> Tuple[List[_GateCheck], List[str]]:
    """Compile the netlist into per-read gate checks over QMASM names."""
    from repro.edif2qmasm.translate import net_variable_names
    from repro.synth.netlist import CONSTANT_CELLS

    net_vars = net_variable_names(netlist)
    checks: List[_GateCheck] = []
    unchecked: List[str] = []
    for cell in netlist.cells.values():
        if cell.is_sequential:
            # Flip-flops relate two *time steps*; unrolled designs have
            # none, and un-unrolled ones cannot be checked statically.
            unchecked.append(cell.name)
            continue
        output = net_vars[cell.output_net]
        if cell.kind in CONSTANT_CELLS:
            value = bool(CONSTANT_CELLS[cell.kind])
            checks.append((cell.name, (), output, lambda v=value: v))
            continue
        spec = CELL_LIBRARY[cell.kind]
        inputs = tuple(net_vars[cell.connections[p]] for p in spec.inputs)
        checks.append((cell.name, inputs, output, spec.function))
    return checks, unchecked


def expand_read(
    assignment: Mapping[str, int],
    logical: LogicalProgram,
    representative: Mapping[str, str],
    fixed: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """One read's spins over *every* QMASM variable.

    Combines roof-duality-fixed spins with the sampled representative
    spins and spreads them back across chain-contracted variables --
    the same expansion the runner's solution report performs.
    """
    fixed = fixed or {}
    spins: Dict[str, int] = dict(fixed)
    spins.update(assignment)
    full = logical.expand_sample(spins, representative)
    for variable, rep in representative.items():
        if rep in fixed:
            full[variable] = fixed[rep]
    return full


def certify_sampleset(
    sampleset: SampleSet,
    logical: LogicalProgram,
    representative: Mapping[str, str],
    model: IsingModel,
    fixed: Optional[Mapping[str, int]] = None,
    netlist=None,
    energy_tolerance: float = 1e-6,
) -> Certificate:
    """Certify every read of a logical sample set.

    Args:
        sampleset: logical samples (post-unembedding for hardware runs).
        logical: the assembled program (pins, assertions, chains).
        representative: the chain-contraction map from
            :meth:`LogicalProgram.to_ising`.
        model: the Ising model the sample energies were reported
            against (the roof-duality-reduced model for reduced runs).
        fixed: roof-duality-fixed spins, if any.
        netlist: the gate-level :class:`~repro.synth.netlist.Netlist`
            to replay, when available; None limits certification to
            energy, pin, and assertion checks.
        energy_tolerance: relative tolerance for the energy comparison
            (scaled by ``max(1, |E_reported|)``).

    Returns:
        A :class:`Certificate` whose ``reads`` align with the sample
        set's rows.
    """
    checks: List[_GateCheck] = []
    unchecked: List[str] = []
    if netlist is not None:
        checks, unchecked = _netlist_gate_checks(netlist)

    certificate = Certificate(
        counts={state: 0 for state in STATES},
        gates_checked=len(checks),
        unchecked_cells=tuple(unchecked),
        energy_tolerance=energy_tolerance,
    )
    with _trace.span(
        "certify.check", reads=len(sampleset), gates=len(checks)
    ):
        # Recompute every row's energy in one vectorized pass.
        if len(sampleset):
            recomputed_all = model.energies(
                sampleset.records.astype(float), order=list(sampleset.variables)
            )
        else:
            recomputed_all = []
        for index, sample in enumerate(sampleset):
            full = expand_read(
                sample.assignment, logical, representative, fixed
            )
            recomputed = float(recomputed_all[index])
            tolerance = energy_tolerance * max(
                1.0, abs(sample.energy)
            )
            energy_ok = abs(recomputed - sample.energy) <= tolerance

            values = {v: spin_to_bool(s) for v, s in full.items()}
            violations: List[str] = []
            for name, inputs, output, function in checks:
                if output not in values or any(
                    v not in values for v in inputs
                ):
                    continue  # net optimized out of the logical program
                expected = bool(function(*(values[v] for v in inputs)))
                if values[output] != expected:
                    violations.append(name)
            pins_ok = logical.pins_satisfied(full)
            failed = tuple(logical.check_assertions(full))

            if violations or failed or not pins_ok:
                state = CONSTRAINT_VIOLATION
            elif not energy_ok:
                state = ENERGY_MISMATCH
            else:
                state = CERTIFIED
            read = ReadCheck(
                index=index,
                state=state,
                energy_reported=float(sample.energy),
                energy_recomputed=float(recomputed),
                gate_violations=tuple(violations),
                failed_assertions=failed,
                pins_respected=pins_ok,
                num_occurrences=sample.num_occurrences,
            )
            certificate.reads.append(read)
            certificate.counts[state] += read.num_occurrences
            for name in violations:
                certificate.gate_violation_counts[name] = (
                    certificate.gate_violation_counts.get(name, 0)
                    + read.num_occurrences
                )
    _trace.event(
        "certify.result",
        reads=certificate.total_reads,
        certified_fraction=certificate.certified_fraction,
    )
    return certificate
